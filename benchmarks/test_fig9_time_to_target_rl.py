"""Figure 9: time to reach target reward (LunarLander).

Paper (15 machines, 100 configs, solved = mean reward 200 over 100
trials, 5 repeats): POP's median time is 2.07x faster than Bandit and
1.26x faster than EarlyTerm; POP's variance is 9.7x smaller than
Bandit's and 3.5x smaller than EarlyTerm's.
"""

from __future__ import annotations


from repro.analysis.figures import time_to_target_stats
from .conftest import RL_REPEATS, emit, minutes, once


def test_fig9_time_to_target_rl(benchmark, store, results_dir):
    def compute():
        return {
            policy: store.rl_suite(policy)
            for policy in ("pop", "bandit", "earlyterm", "default")
        }

    suites = once(benchmark, compute)
    for policy in ("pop", "bandit", "earlyterm"):
        assert all(
            r.reached_target for r in suites[policy]
        ), f"{policy} failed to solve LunarLander"

    stats = {p: time_to_target_stats(suites[p]) for p in suites}
    lines = [
        f"=== Figure 9: time to reach reward 200, {RL_REPEATS} repeats ===",
        "policy    |   min   med   max  mean  spread  (minutes)",
    ]
    for policy, s in stats.items():
        lines.append(
            f"{policy:9s} | {minutes(s.minimum):5.0f} {minutes(s.median):5.0f}"
            f" {minutes(s.maximum):5.0f} {minutes(s.mean):5.0f}"
            f" {minutes(s.spread):7.1f}"
        )
    bandit_ratio = stats["bandit"].median / stats["pop"].median
    earlyterm_ratio = stats["earlyterm"].median / stats["pop"].median
    lines += [
        "",
        f"POP vs Bandit   (median): {bandit_ratio:.2f}x faster   (paper: 2.07x)",
        f"POP vs EarlyTerm(median): {earlyterm_ratio:.2f}x faster   (paper: 1.26x)",
        f"spread ratio Bandit/POP   : "
        f"{stats['bandit'].spread / max(stats['pop'].spread, 1e-9):.1f}"
        "   (paper: 9.7x)",
        f"spread ratio EarlyTerm/POP: "
        f"{stats['earlyterm'].spread / max(stats['pop'].spread, 1e-9):.1f}"
        "   (paper: 3.5x)",
    ]
    emit(results_dir, "fig9_time_to_target_rl", lines)

    assert bandit_ratio > 1.5
    assert earlyterm_ratio > 1.1
    assert stats["pop"].median < stats["earlyterm"].median < stats["bandit"].median
