"""Shared infrastructure for the figure-reproduction benches.

Each bench regenerates one table or figure from the paper's evaluation:
it runs the relevant experiments, prints the figure's rows/series
(paper value alongside measured value), asserts the *shape* claims
(who wins, by roughly what factor), and persists the table under
``benchmarks/results/``.

Expensive experiment sets (the Fig 7 / Fig 9 repeat suites) are shared
across benches through the session-scoped :class:`ResultsStore`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

import pytest

from repro.analysis.experiments import (
    run_standard_experiment,
    standard_rl_workload,
    standard_sl_workload,
)
from repro.core.pop import POPPolicy
from repro.framework.experiment import ExperimentResult
from repro.policies.bandit import BanditPolicy
from repro.policies.default import DefaultPolicy
from repro.policies.earlyterm import EarlyTermPolicy

RESULTS_DIR = Path(__file__).parent / "results"

#: Repeats per policy (paper: 10 supervised / 5 RL; reduced to keep the
#: full bench suite under an hour — the spread statistics stabilise by
#: then and the orderings are unambiguous).
SL_REPEATS = 5
RL_REPEATS = 3

POLICY_FACTORIES: Dict[str, Callable[[], object]] = {
    "pop": POPPolicy,
    "bandit": BanditPolicy,
    "earlyterm": EarlyTermPolicy,
    "default": DefaultPolicy,
}


class ResultsStore:
    """Lazily computed, session-cached experiment results."""

    def __init__(self) -> None:
        self._sl_workload = None
        self._rl_workload = None
        self._cache: Dict[Tuple, List[ExperimentResult]] = {}

    @property
    def sl_workload(self):
        if self._sl_workload is None:
            self._sl_workload = standard_sl_workload()
        return self._sl_workload

    @property
    def rl_workload(self):
        if self._rl_workload is None:
            self._rl_workload = standard_rl_workload()
        return self._rl_workload

    def experiments(
        self, domain: str, policy: str, repeats: int, **overrides
    ) -> List[ExperimentResult]:
        """Results for ``repeats`` seeds of one policy in one domain."""
        key = (domain, policy, repeats, tuple(sorted(overrides.items())))
        if key not in self._cache:
            workload = self.sl_workload if domain == "sl" else self.rl_workload
            results = [
                run_standard_experiment(
                    workload,
                    POLICY_FACTORIES[policy](),
                    seed=seed,
                    **overrides,
                )
                for seed in range(repeats)
            ]
            self._cache[key] = results
        return self._cache[key]

    def sl_suite(self, policy: str) -> List[ExperimentResult]:
        return self.experiments("sl", policy, SL_REPEATS)

    def rl_suite(self, policy: str) -> List[ExperimentResult]:
        return self.experiments("rl", policy, RL_REPEATS)


@pytest.fixture(scope="session")
def store() -> ResultsStore:
    return ResultsStore()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, lines: Sequence[str]) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print(f"\n{text}")
    (results_dir / f"{name}.txt").write_text(text + "\n")


def minutes(seconds: float) -> float:
    return seconds / 60.0


def study_contexts(spec, results_dir: Path):
    """Run (or resume) a sweep-lab study and return its context tables.

    The study's cell store lives under ``benchmarks/results/studies/``,
    keyed on the spec digest, so a re-run of the bench suite resumes
    from the archived cells instead of recomputing them.

    Returns:
        ``[(context_dict, {level: [values in replicate order]}), ...]``
        — one entry per analysis context.
    """
    import hashlib
    import json

    from repro.lab import CellStore, StudyRunner, analyze

    digest = hashlib.blake2b(
        json.dumps(spec.to_dict(), sort_keys=True).encode(), digest_size=6
    ).hexdigest()
    study_dir = results_dir / "studies" / f"{spec.name}-{digest}"
    store = CellStore(study_dir)
    StudyRunner(spec, store).run()
    analysis = analyze(spec, store)
    return [
        (
            context.context,
            {row.level: row.values for row in context.levels},
        )
        for context in analysis.contexts
    ]


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are far too heavy for statistical timing rounds;
    the bench exists to *regenerate figures*, with the timing as a
    by-product.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
