"""Extension bench: the full policy zoo on the standard setup.

Not a paper figure — a one-table comparison of every SAP in the
repository (the paper's four plus successive halving and HyperBand)
under the fixed supervised configuration set.  Budget-bounded policies
(SH/HyperBand) do not chase the 0.77 target; they are compared on the
best accuracy found per epoch spent.
"""

from __future__ import annotations


from repro.analysis.experiments import run_standard_experiment
from repro.core.pop import POPPolicy
from repro.policies.bandit import BanditPolicy
from repro.policies.default import DefaultPolicy
from repro.policies.earlyterm import EarlyTermPolicy
from repro.policies.hyperband import HyperBandPolicy, SuccessiveHalvingPolicy
from .conftest import emit, minutes, once

POLICIES = {
    "pop": POPPolicy,
    "bandit": BanditPolicy,
    "earlyterm": EarlyTermPolicy,
    "default": DefaultPolicy,
    "succ-halving": lambda: SuccessiveHalvingPolicy(eta=3.0, initial_budget=4),
    "hyperband": HyperBandPolicy,
}


def test_ext_policy_zoo(benchmark, store, results_dir):
    workload = store.sl_workload

    def compute():
        rows = {}
        for name, factory in POLICIES.items():
            result = run_standard_experiment(
                workload, factory(), seed=0, stop_on_target=False,
                tmax=24 * 3600.0,
            )
            rows[name] = result
        return rows

    rows = once(benchmark, compute)
    lines = [
        "=== Extension: policy zoo (CIFAR-10, 4 machines, run to budget) ===",
        "policy       | best acc | epochs | terminated | suspends | makespan(min)",
    ]
    for name, result in rows.items():
        lines.append(
            f"{name:12s} | {result.best_metric:8.3f} | {result.epochs_trained:6d}"
            f" | {result.terminated_count:10d} | {len(result.snapshots):8d}"
            f" | {minutes(result.finished_at):10.0f}"
        )
    lines += [
        "",
        "(early-terminating policies trade a little peak accuracy for a",
        "fraction of the epoch budget; POP keeps the peak)",
    ]
    emit(results_dir, "ext_policy_zoo", lines)

    default = rows["default"]
    # Exhaustive search needs 100 x 120 epochs (Default only gets as
    # far as Tmax allows); every pruning policy spends a fraction.
    exhaustive = 100 * workload.domain.max_epochs
    for name, result in rows.items():
        if name == "default":
            continue
        assert result.epochs_trained < 0.45 * exhaustive
    # POP's best accuracy stays within noise of exhaustive search's.
    assert rows["pop"].best_metric >= default.best_metric - 0.02
    # The bandit-style eliminators still find something decent.
    for name in ("bandit", "earlyterm", "succ-halving", "hyperband"):
        assert rows[name].best_metric >= 0.6
