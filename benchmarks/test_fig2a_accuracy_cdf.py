"""Figure 2a: final-accuracy CDF of 90 random CIFAR-10 configurations.

Paper: 32% of configurations sit at or below the 10% random-accuracy
mark (the red circle on the CDF).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import final_metric_cdf
from .conftest import emit, once


def test_fig2a_final_accuracy_cdf(benchmark, store, results_dir):
    values, fractions = once(
        benchmark, lambda: final_metric_cdf(store.sl_workload, n_configs=90, seed=0)
    )
    at_or_below_random = float(fractions[np.searchsorted(values, 0.115, "right") - 1])

    lines = [
        "=== Figure 2a: final validation accuracy CDF (90 configs) ===",
        "accuracy : cumulative fraction",
    ]
    for acc in (0.08, 0.10, 0.12, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8):
        idx = np.searchsorted(values, acc, side="right")
        frac = fractions[idx - 1] if idx > 0 else 0.0
        lines.append(f"  {acc:4.2f}   : {frac:5.2f}")
    lines += [
        "",
        f"fraction at/below random accuracy : {at_or_below_random:.2f}"
        "   (paper: 0.32)",
    ]
    emit(results_dir, "fig2a_accuracy_cdf", lines)

    assert 0.22 <= at_or_below_random <= 0.45
    assert values.max() <= 0.81
