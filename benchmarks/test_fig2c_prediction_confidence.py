"""Figure 2c: predicted accuracy with confidence intervals at epoch 10.

Paper: A's expected final accuracy is higher than B's at epoch 10, but
with much larger variance / lower confidence; B actually wins — so
expected value alone is misleading and prediction quality must be
assessed (via the confidence p).
"""

from __future__ import annotations


from repro.analysis.figures import prediction_with_confidence
from repro.analysis.experiments import standard_configs
from repro.core.ert import estimate_remaining_time
from repro.sim.runner import default_predictor
from .conftest import emit, once


def test_fig2c_prediction_confidence(benchmark, store, results_dir):
    workload = store.sl_workload
    predictor = default_predictor()
    configs = standard_configs(workload, 100)
    finals = [
        workload.create_run(c, seed=0).true_final_accuracy for c in configs
    ]

    def compute():
        # A: fast riser with mediocre final; B: slower with higher final.
        ranked = sorted(range(len(configs)), key=lambda i: finals[i])
        config_b = configs[ranked[-1]]
        config_a = next(
            configs[i]
            for i in ranked
            if 0.45 < finals[i] < finals[ranked[-1]] - 0.05
        )
        out = {}
        for tag, config in (("A", config_a), ("B", config_b)):
            data = prediction_with_confidence(
                workload, config, predictor, observe_epochs=10, seed=0
            )
            prediction = predictor.predict(
                [workload.domain.normalize(v) for v in data["observed"]],
                workload.domain.max_epochs - 10,
            )
            est = estimate_remaining_time(
                prediction,
                target=workload.domain.normalized_target,
                epoch_duration=60.0,
                time_remaining=48 * 3600.0,
            )
            out[tag] = (data, est)
        return out

    out = once(benchmark, compute)
    lines = ["=== Figure 2c: prediction mean ± std at epoch 10 ==="]
    for tag, (data, est) in out.items():
        lines += [
            f"config {tag}: observed@10={data['observed'][-1]:.3f}  "
            f"predicted final={data['mean'][-1]:.3f} ± {data['std'][-1]:.3f}  "
            f"true final={data['true_future'][-1]:.3f}  "
            f"confidence p={est.confidence:.3f}",
        ]
    lines.append(
        "(paper: the config with higher expected accuracy had larger "
        "variance; the confidence p captures that)"
    )
    emit(results_dir, "fig2c_prediction_confidence", lines)

    # Shape: predictions carry a non-trivial uncertainty band at n=10.
    for tag, (data, _) in out.items():
        assert data["std"][-1] > 0.02
