"""Ablation (§5.2): overlapped vs blocking curve prediction.

The paper overlaps prediction with training on the Node Agents,
accepting a small contention slowdown, because blocking the machine for
the prediction's duration costs more end-to-end.  This bench runs POP
both ways with an expensive modelled prediction cost.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import run_standard_experiment
from repro.core.pop import POPPolicy
from .conftest import emit, minutes, once

PREDICTION_SECONDS = 90.0  # unoptimised model: more than one epoch


def test_ablation_overlap_prediction(benchmark, store, results_dir):
    workload = store.sl_workload
    seeds = (0, 1)

    def compute():
        table = {"overlapped": [], "blocking": []}
        for seed in seeds:
            for name, overlap in (("overlapped", True), ("blocking", False)):
                result = run_standard_experiment(
                    workload,
                    POPPolicy(),
                    seed=seed,
                    overlap_prediction=overlap,
                    prediction_seconds=PREDICTION_SECONDS,
                    prediction_contention=0.05,
                )
                table[name].append(
                    result.time_to_target
                    if result.reached_target
                    else result.finished_at
                )
        return table

    table = once(benchmark, compute)
    means = {k: float(np.mean(v)) for k, v in table.items()}
    lines = [
        "=== Ablation: overlapped vs blocking prediction (§5.2) ===",
        f"modelled prediction cost: {PREDICTION_SECONDS:.0f} s "
        "(unoptimised model), contention 5%",
        f"overlapped mean t2t : {minutes(means['overlapped']):6.0f} min",
        f"blocking mean t2t   : {minutes(means['blocking']):6.0f} min",
        f"end-to-end gain from overlapping: "
        f"{means['blocking']/means['overlapped']:.2f}x",
        "(paper: the gains outweigh the contention slowdown)",
    ]
    emit(results_dir, "ablation_overlap", lines)

    assert means["overlapped"] < means["blocking"]
