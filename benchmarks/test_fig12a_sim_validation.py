"""Figure 12a: simulator validation against live runs (LunarLander).

Paper: simulated time-to-target matches live-system runs with a max
error of 13%, well within the live runs' own error bars.  Here the
"live" side is the threaded runtime: real concurrency, scaled
wall-clock sleeps, lock contention, genuine Node-Agent prediction
cost — the same class of perturbations a cluster adds.
"""

from __future__ import annotations


from repro.analysis.experiments import standard_configs
from repro.curves.predictor import LeastSquaresCurvePredictor
from repro.framework.experiment import ExperimentSpec
from repro.policies.bandit import BanditPolicy
from repro.policies.earlyterm import EarlyTermPolicy
from repro.core.pop import POPPolicy
from repro.runtime.local import run_live
from repro.sim.runner import run_simulation
from .conftest import emit, minutes, once

POLICIES = {
    "pop": POPPolicy,
    "bandit": BanditPolicy,
    "earlyterm": EarlyTermPolicy,
}


def _predictor():
    # Cheap predictor so live prediction wall-cost stays proportional
    # to its simulated charge (§5.2's overlap accounting); the live
    # runtime additionally runs predictions outside the scheduler lock
    # (the distributed-prediction optimisation).
    return LeastSquaresCurvePredictor(
        n_sample_curves=20,
        restarts=1,
        model_names=("pow3", "weibull", "ilog2"),
        max_nfev=25,
    )


def test_fig12a_sim_validation(benchmark, store, results_dir):
    workload = store.rl_workload
    configs = standard_configs(workload, 100)
    spec = ExperimentSpec(num_machines=15, num_configs=100, seed=0)

    def compute():
        rows = {}
        for name, factory in POLICIES.items():
            sim = run_simulation(
                workload,
                factory(),
                configs=configs,
                spec=spec,
                predictor=_predictor(),
            )
            live = run_live(
                workload,
                factory(),
                configs=configs,
                spec=spec,
                predictor=_predictor(),
                time_scale=6e-3,
            )
            rows[name] = (sim, live)
        return rows

    rows = once(benchmark, compute)
    lines = [
        "=== Figure 12a: simulation vs live runtime (LunarLander, 15 machines) ===",
        "policy    | sim t2t (min) | live t2t (min) | error",
    ]
    errors = {}
    for name, (sim, live) in rows.items():
        sim_t = sim.time_to_target if sim.reached_target else sim.finished_at
        live_t = live.time_to_target if live.reached_target else live.finished_at
        error = abs(live_t - sim_t) / sim_t
        errors[name] = error
        lines.append(
            f"{name:9s} | {minutes(sim_t):13.1f} | {minutes(live_t):14.1f}"
            f" | {error*100:4.1f}%"
        )
    lines += [
        "",
        f"max simulation error: {max(errors.values())*100:.1f}%"
        "   (paper: 13%)",
    ]
    emit(results_dir, "fig12a_sim_validation", lines)

    assert max(errors.values()) <= 0.20
