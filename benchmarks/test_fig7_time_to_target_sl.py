"""Figure 7: time to reach target validation accuracy (CIFAR-10).

Paper (4 machines, 100 configs, target 0.77, 10 repeats):
POP 2.8 h average; Bandit 4.5 h (POP 1.6x faster); EarlyTerm 6.1 h
(POP 2.1x faster).  POP's min-max spread is ~2x smaller, and even
POP's worst run beats the best run of Bandit and EarlyTerm.
"""

from __future__ import annotations


from repro.analysis.figures import time_to_target_stats
from repro.metrics.stats import speedup
from .conftest import SL_REPEATS, emit, minutes, once


def test_fig7_time_to_target_supervised(benchmark, store, results_dir):
    def compute():
        return {
            policy: store.sl_suite(policy)
            for policy in ("pop", "bandit", "earlyterm")
        }

    suites = once(benchmark, compute)
    times = {
        policy: [r.time_to_target for r in results]
        for policy, results in suites.items()
    }
    for policy, values in times.items():
        assert all(v is not None for v in values), f"{policy} failed a run"

    stats = {p: time_to_target_stats(suites[p]) for p in suites}
    lines = [
        f"=== Figure 7: time to reach 77% accuracy, {SL_REPEATS} repeats ===",
        "policy    |   min    q1   med    q3   max  mean  (minutes)",
    ]
    for policy, s in stats.items():
        lines.append(
            f"{policy:9s} | {minutes(s.minimum):5.0f} {minutes(s.q1):5.0f}"
            f" {minutes(s.median):5.0f} {minutes(s.q3):5.0f}"
            f" {minutes(s.maximum):5.0f} {minutes(s.mean):5.0f}"
        )
    bandit_speedup = speedup(times["bandit"], times["pop"])
    earlyterm_speedup = speedup(times["earlyterm"], times["pop"])
    lines += [
        "",
        f"POP vs Bandit   : {bandit_speedup:.2f}x faster   (paper: 1.6x)",
        f"POP vs EarlyTerm: {earlyterm_speedup:.2f}x faster   (paper: 2.1x)",
        f"POP spread {minutes(stats['pop'].spread):.0f} min vs Bandit "
        f"{minutes(stats['bandit'].spread):.0f} min, EarlyTerm "
        f"{minutes(stats['earlyterm'].spread):.0f} min",
    ]
    emit(results_dir, "fig7_time_to_target_sl", lines)

    # Shape claims.
    assert bandit_speedup > 1.2
    assert earlyterm_speedup > 1.5
    assert stats["pop"].mean < stats["bandit"].mean < stats["earlyterm"].mean
    # "Even the worst run of POP is faster than the best case of the
    # Bandit and EarlyTerm."
    assert stats["pop"].maximum < stats["bandit"].minimum
    assert stats["pop"].maximum < stats["earlyterm"].minimum
    # POP is the most stable.
    assert stats["pop"].spread < stats["bandit"].spread
    assert stats["pop"].spread < stats["earlyterm"].spread
