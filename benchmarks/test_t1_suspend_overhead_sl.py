"""§6.2.3 (supervised suspend overhead; an in-text table).

Paper: suspend latency averages 157.69 ms (std 72 ms, p95 219 ms,
max 1.12 s); snapshot sizes average 357.67 KB (std 122.46 KB,
p95 685.26 KB, max 686.06 KB) — negligible against one-minute epochs.
"""

from __future__ import annotations

from repro.analysis.figures import suspend_overhead_stats
from .conftest import emit, once


def test_suspend_overhead_supervised(benchmark, store, results_dir):
    stats = once(
        benchmark, lambda: suspend_overhead_stats(store.sl_suite("pop"))
    )
    lines = [
        "=== §6.2.3: suspend/resume overhead (supervised) ===",
        f"suspends observed : {stats.count}",
        f"latency mean/std  : {stats.latency_mean*1000:.1f} ms / "
        f"{stats.latency_std*1000:.1f} ms   (paper: 157.69 / 72 ms)",
        f"latency p95/max   : {stats.latency_p95*1000:.1f} ms / "
        f"{stats.latency_max*1000:.0f} ms   (paper: 219 ms / 1120 ms)",
        f"size mean/std     : {stats.size_mean/1e3:.1f} KB / "
        f"{stats.size_std/1e3:.1f} KB   (paper: 357.67 / 122.46 KB)",
        f"size p95/max      : {stats.size_p95/1e3:.1f} KB / "
        f"{stats.size_max/1e3:.1f} KB   (paper: 685.26 / 686.06 KB)",
        "",
        f"mean latency / mean epoch = {stats.latency_mean/60.0*100:.2f}%"
        "   (negligible, as the paper reports)",
    ]
    emit(results_dir, "t1_suspend_overhead_sl", lines)

    assert stats.count > 10
    assert 0.08 <= stats.latency_mean <= 0.30
    assert stats.latency_max <= 1.12
    assert 200e3 <= stats.size_mean <= 500e3
    assert stats.size_max <= 686.06e3
    # Negligible against one-minute epochs.
    assert stats.latency_mean < 0.01 * 60.0
