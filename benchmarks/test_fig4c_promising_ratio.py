"""Figure 4c: the ratio of promising to active jobs rises over an
experiment's lifetime.

Paper: exploration dominates early (ratio ~0); as predictions gain
confidence, the exploitation share grows substantially.
"""

from __future__ import annotations


from repro.analysis.figures import promising_ratio_timeline
from .conftest import emit, once


def test_fig4c_promising_ratio(benchmark, store, results_dir):
    result = once(benchmark, lambda: store.sl_suite("pop")[0])
    times, ratios = promising_ratio_timeline(result, bucket_seconds=600.0)
    assert times.size >= 4

    lines = [
        "=== Figure 4c: promising / active jobs over time ===",
        "time(min) : ratio",
    ]
    for t, r in zip(times, ratios):
        lines.append(f"{t/60.0:9.0f} : {r:.3f}")
    first_quarter = ratios[: max(1, len(ratios) // 4)].mean()
    last_quarter = ratios[-max(1, len(ratios) // 4):].mean()
    lines += [
        "",
        f"mean ratio, first quarter : {first_quarter:.3f}",
        f"mean ratio, last quarter  : {last_quarter:.3f}",
        "(paper: ratio starts near 0 and grows as confidence accrues)",
    ]
    emit(results_dir, "fig4c_promising_ratio", lines)

    assert first_quarter < 0.25
    assert last_quarter > first_quarter
