"""Prediction-engine throughput bench (§5.2's overlap, measured).

A POP scheduler re-evaluates its whole job pool after every reported
epoch, so steady-state prediction traffic looks like: ONE job has a new
curve prefix, every other job's prefix is unchanged since the last
round.  This bench replays that access pattern over calibrated cifar10
curves and measures batch-prediction throughput in four configurations:

* ``serial``  — the legacy inline predictor (the workers=1 path).
* ``cached``  — single process + prefix-fit cache.
* ``pooled``  — 4-worker process pool, cache disabled.
* ``engine``  — 4-worker pool + per-worker caches (the full engine).

Gates (the PR's acceptance bar):

* ``engine`` throughput >= 4x ``serial`` at 4 workers.
* steady-state fit-cache hit rate > 0.8.

Writes ``BENCH_prediction.json`` at the repo root.  CI compares the
*speedup ratios* (machine-relative, so a slower runner does not fail
the gate) against ``benchmarks/baselines/prediction.json`` via
``benchmarks/check_prediction_regression.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.curves.engine import ParallelPredictionService
from repro.curves.predictor import LeastSquaresCurvePredictor
from repro.generators.random_gen import RandomGenerator
from repro.workloads.cifar10 import Cifar10Workload

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_prediction.json"

N_JOBS = 8
WARM_EPOCHS = 10  # observed prefix length at steady state
ROUNDS = 10       # measured scheduler rounds per mode
WORKERS = 4

SPEEDUP_GATE = 4.0
HIT_RATE_GATE = 0.8


def _make_predictor() -> LeastSquaresCurvePredictor:
    """The simulation benches' predictor configuration."""
    return LeastSquaresCurvePredictor(
        n_sample_curves=100,
        restarts=2,
        model_names=LeastSquaresCurvePredictor.FAST_MODEL_SUBSET,
        max_nfev=60,
    )


def _calibrated_curves() -> List[List[float]]:
    """Normalised learning curves from the calibrated cifar10 surrogate."""
    workload = Cifar10Workload()
    generator = RandomGenerator(workload.space, seed=17, max_configs=N_JOBS)
    curves = []
    for _ in range(N_JOBS):
        _, config = generator.create_job()
        run = workload.create_run(config, seed=3)
        curve = []
        for _ in range(workload.domain.max_epochs):
            result = run.step()
            curve.append(workload.domain.normalize(result.metric))
            if result.done:
                break
        curves.append(curve)
    return curves


def _round_requests(
    curves: List[List[float]], lengths: List[int], advance: int
) -> List[Tuple[Tuple[float, ...], int]]:
    """One scheduler round: job ``advance`` gains an epoch, then every
    job's curve is predicted out to its full horizon."""
    lengths[advance] = min(lengths[advance] + 1, len(curves[advance]))
    requests = []
    for curve, n in zip(curves, lengths):
        horizon = max(len(curve) - n, 1)
        requests.append((tuple(curve[:n]), horizon))
    return requests


def _drive(service: ParallelPredictionService, curves: List[List[float]]):
    """Run warm-up + measured rounds; returns (seconds, predictions,
    steady-state cache stats delta)."""
    lengths = [WARM_EPOCHS] * N_JOBS
    # Warm-up round: populates caches; excluded from timing and from
    # the steady-state hit rate.
    service.predict_batch(_round_requests(curves, lengths, 0))
    before = service.cache_stats()
    predictions = 0
    started = time.perf_counter()
    for round_index in range(1, ROUNDS + 1):
        requests = _round_requests(curves, lengths, round_index % N_JOBS)
        predictions += len(service.predict_batch(requests))
    elapsed = time.perf_counter() - started
    after = service.cache_stats()
    delta = {k: after.get(k, 0) - before.get(k, 0) for k in after}
    return elapsed, predictions, delta


def _run_mode(name: str, curves: List[List[float]]) -> Dict[str, float]:
    if name == "serial":
        service = ParallelPredictionService(_make_predictor(), workers=1)
    elif name == "cached":
        service = ParallelPredictionService(
            _make_predictor(), workers=1, use_cache=True
        )
    elif name == "pooled":
        service = ParallelPredictionService(
            _make_predictor(), workers=WORKERS, use_cache=False
        )
    elif name == "engine":
        service = ParallelPredictionService(_make_predictor(), workers=WORKERS)
    else:  # pragma: no cover
        raise ValueError(name)
    with service:
        elapsed, predictions, delta = _drive(service, curves)
    demand = delta.get("hits", 0) + delta.get("misses", 0)
    return {
        "seconds": elapsed,
        "predictions": predictions,
        "throughput_per_s": predictions / elapsed,
        "cache_hit_rate": (delta.get("hits", 0) / demand) if demand else 0.0,
        "warm_starts": delta.get("warm_starts", 0),
    }


def test_prediction_engine_throughput():
    curves = _calibrated_curves()
    modes = {
        name: _run_mode(name, curves)
        for name in ("serial", "cached", "pooled", "engine")
    }
    serial_tp = modes["serial"]["throughput_per_s"]
    report = {
        "bench": "prediction_engine",
        "workload": "cifar10",
        "jobs": N_JOBS,
        "rounds": ROUNDS,
        "workers": WORKERS,
        "modes": modes,
        "speedups_vs_serial": {
            name: modes[name]["throughput_per_s"] / serial_tp
            for name in modes
        },
        "gates": {
            "engine_speedup_min": SPEEDUP_GATE,
            "cache_hit_rate_min": HIT_RATE_GATE,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print("\nprediction throughput (curves/s):")
    for name, row in modes.items():
        print(
            f"  {name:<8} {row['throughput_per_s']:8.1f}/s  "
            f"speedup {report['speedups_vs_serial'][name]:5.2f}x  "
            f"hit-rate {row['cache_hit_rate']:.3f}"
        )

    engine_speedup = report["speedups_vs_serial"]["engine"]
    assert engine_speedup >= SPEEDUP_GATE, (
        f"engine speedup {engine_speedup:.2f}x below the "
        f"{SPEEDUP_GATE}x gate (see {OUTPUT_PATH.name})"
    )
    hit_rate = modes["engine"]["cache_hit_rate"]
    assert hit_rate > HIT_RATE_GATE, (
        f"steady-state cache hit rate {hit_rate:.3f} below "
        f"{HIT_RATE_GATE} (see {OUTPUT_PATH.name})"
    )
    # The cached single-process mode must also beat serial: the cache
    # is the part of the win that survives a single-core machine.
    assert report["speedups_vs_serial"]["cached"] > 1.5
