"""Figure 8: reward of 15 random LunarLander configurations over 20,000
episode trials.

Paper: many configurations learn for a while then suffer a
"learning-crash" to at/below the −100 non-learning value; over 50% of
configurations are non-learning.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import config_curves
from .conftest import emit, once


def test_fig8_rl_reward_curves(benchmark, store, results_dir):
    curves = once(
        benchmark,
        lambda: config_curves(store.rl_workload, n_configs=15, seed=0),
    )
    arr = np.asarray(curves)
    finals = arr[:, -1]
    non_learning = int((finals <= -70.0).sum())
    crashes = 0
    for curve in arr:
        peak_at = int(np.argmax(curve))
        if curve[peak_at] > 0 and curve[-1] <= -70.0:
            crashes += 1

    lines = [
        "=== Figure 8: 15 LunarLander configurations over 20k trials ===",
        f"trials per configuration : {arr.shape[1] * 100}",
        f"reward range observed    : [{arr.min():.0f}, {arr.max():.0f}]"
        "   (paper: roughly [-500, 300])",
        f"non-learning finals (<= -70) : {non_learning}/15   (paper: >50%)",
        f"learning-crash configurations: {crashes}",
        "",
        "reward series (every 25 epochs = 2.5k trials):",
    ]
    epochs = list(range(0, arr.shape[1], 25))
    lines.append("config | " + " ".join(f"t{(e+1)*100//1000:>3d}k" for e in epochs))
    for i, curve in enumerate(arr):
        lines.append(
            f"{i:6d} | " + " ".join(f"{curve[e]:4.0f}" for e in epochs)
        )
    emit(results_dir, "fig8_rl_curves", lines)

    assert non_learning >= 8, "over half the configs should be non-learning"
    assert crashes >= 1, "the learning-crash shape must appear"
    assert arr.min() >= -500.0 and arr.max() <= 300.0
