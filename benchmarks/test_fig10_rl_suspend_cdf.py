"""Figure 10: suspend-latency and snapshot-size CDFs (LunarLander).

Paper: CRIU whole-process snapshots; latency never exceeds 22.36 s and
snapshot size never exceeds 43.75 MB — small against job training time.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.stats import ecdf
from .conftest import emit, once


def test_fig10_rl_suspend_cdfs(benchmark, store, results_dir):
    def compute():
        snapshots = [
            snapshot
            for result in store.rl_suite("pop")
            for snapshot in result.snapshots
        ]
        return snapshots

    snapshots = once(benchmark, compute)
    assert snapshots, "the RL runs must suspend jobs"
    latencies = np.array([s.latency for s in snapshots])
    sizes = np.array([s.size_bytes for s in snapshots])

    lat_vals, lat_frac = ecdf(latencies)
    size_vals, size_frac = ecdf(sizes / 1e6)
    lines = [
        "=== Figure 10: RL suspend latency and snapshot size CDFs ===",
        f"suspends observed: {latencies.size}",
        "",
        "latency CDF (seconds : fraction):",
    ]
    for q in (0.25, 0.5, 0.75, 0.95, 1.0):
        idx = min(int(q * lat_vals.size), lat_vals.size - 1)
        lines.append(f"  {lat_vals[idx]:6.2f} s : {lat_frac[idx]:.2f}")
    lines.append("")
    lines.append("snapshot size CDF (MB : fraction):")
    for q in (0.25, 0.5, 0.75, 0.95, 1.0):
        idx = min(int(q * size_vals.size), size_vals.size - 1)
        lines.append(f"  {size_vals[idx]:6.2f} MB : {size_frac[idx]:.2f}")
    lines += [
        "",
        f"max latency {latencies.max():.2f} s (paper: <= 22.36 s); "
        f"max size {sizes.max()/1e6:.2f} MB (paper: <= 43.75 MB)",
    ]
    emit(results_dir, "fig10_rl_suspend_cdf", lines)

    assert latencies.max() <= 22.36
    assert sizes.max() <= 43.75e6
    # CRIU snapshots are much heavier than the supervised native ones.
    assert latencies.mean() > 1.0
    assert sizes.mean() > 5e6
