"""Figure 1: accuracy of 50 random CIFAR-10 configurations over training.

Paper: each line is one configuration over ~120 one-minute iterations;
most configurations never learn (stay near 10% random accuracy) and
only three of the fifty exceed 75%.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import config_curves
from .conftest import emit, once


def test_fig1_config_curves(benchmark, store, results_dir):
    curves = once(
        benchmark, lambda: config_curves(store.sl_workload, n_configs=50, seed=0)
    )
    finals = np.array([c[-1] for c in curves])
    non_learners = int((finals <= 0.12).sum())
    over_75 = int((finals > 0.75).sum())

    lines = [
        "=== Figure 1: 50 random CIFAR-10 configurations ===",
        f"epochs per configuration : {len(curves[0])}",
        f"final accuracy min/median/max : "
        f"{finals.min():.3f} / {np.median(finals):.3f} / {finals.max():.3f}",
        f"configs at/below random (<=0.12) : {non_learners}/50   (paper: majority never exceed 20%)",
        f"configs exceeding 0.75           : {over_75}/50   (paper: 3/50)",
        "",
        "accuracy-vs-epoch series (every 20th epoch, first 10 configs):",
    ]
    epochs = list(range(0, len(curves[0]), 20))
    header = "config | " + " ".join(f"e{e+1:>4d}" for e in epochs)
    lines.append(header)
    for i, curve in enumerate(curves[:10]):
        row = " ".join(f"{curve[e]:5.2f}" for e in epochs)
        lines.append(f"{i:6d} | {row}")
    emit(results_dir, "fig1_config_curves", lines)

    # Shape assertions from the paper's narrative.
    assert non_learners >= 10, "a large share must never learn"
    assert 1 <= over_75 <= 8, "only a few configs exceed 75%"
    assert len(curves) == 50 and len(curves[0]) == 120
