"""Figure 3: predicted vs measured curves at the 10th / 30th epoch and
at the end of training.

Paper: early predictions are low-confidence and barely differentiate
configurations (3a); by epoch 30 promising configurations emerge (3b);
the final curves (3c) confirm them.  The reproduction quantifies this
as the rank correlation between predicted final accuracy and true final
accuracy improving with the observation prefix.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.analysis.experiments import standard_configs
from repro.sim.runner import default_predictor
from .conftest import emit, once


def test_fig3_prediction_over_time(benchmark, store, results_dir):
    workload = store.sl_workload
    predictor = default_predictor()
    configs = standard_configs(workload, 100)
    # Learner configurations only (non-learners are killed by domain
    # knowledge before prediction matters, §5.3).
    pool = []
    for config in configs:
        run = workload.create_run(config, seed=0)
        if run.true_final_accuracy > 0.2:
            curve = [run.step().metric for _ in range(workload.domain.max_epochs)]
            pool.append((curve, run.true_final_accuracy))
        if len(pool) == 25:
            break

    def compute():
        rows = {}
        for observe in (10, 30, 60):
            predicted, spreads = [], []
            for curve, _ in pool:
                prediction = predictor.predict(
                    curve[:observe], workload.domain.max_epochs - observe
                )
                predicted.append(float(prediction.mean[-1]))
                spreads.append(float(prediction.std[-1]))
            rows[observe] = (predicted, spreads)
        return rows

    rows = once(benchmark, compute)
    true_finals = [final for _, final in pool]
    lines = [
        "=== Figure 3: prediction quality at epochs 10 / 30 / 60 ===",
        f"configurations (learners): {len(pool)}",
        "prefix | spearman(pred, true) | mean predicted std",
    ]
    correlations = {}
    for observe, (predicted, spreads) in rows.items():
        rho = float(scipy_stats.spearmanr(predicted, true_finals).statistic)
        correlations[observe] = rho
        lines.append(
            f"  {observe:4d} | {rho:20.3f} | {np.mean(spreads):18.3f}"
        )
    lines.append(
        "(paper: little differentiation at epoch 10; promising configs "
        "emerge by epoch 30; confidence grows over time)"
    )
    emit(results_dir, "fig3_prediction_over_time", lines)

    assert correlations[30] > correlations[10] - 0.05
    assert correlations[60] > 0.6
    # Uncertainty shrinks as training progresses.
    assert np.mean(rows[60][1]) < np.mean(rows[10][1])
