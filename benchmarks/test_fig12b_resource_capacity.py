"""Figure 12b: sensitivity to resource capacity (CIFAR-10).

Paper: time-to-target improves with more machines for every policy;
POP always outperforms the others, with a growing edge at larger
capacities.

The bench drives the built-in ``capacity-sensitivity`` sweep-lab study
(``repro sweep run --study capacity-sensitivity``): the lab fans the
policy × machines grid out over a process pool, journals every cell
under ``benchmarks/results/studies/``, and a rerun resumes from the
archived cells instead of recomputing them.
"""

from __future__ import annotations

import numpy as np

from repro.lab import builtin_study
from .conftest import emit, minutes, once, study_contexts

CAPACITIES = (2, 4, 8, 16)
POLICIES = ("pop", "bandit", "earlyterm", "default")


def test_fig12b_resource_capacity(benchmark, results_dir):
    spec = builtin_study("capacity-sensitivity").with_overrides(seeds=(0,))

    def compute():
        by_machines = {
            context["machines"]: rows
            for context, rows in study_contexts(spec, results_dir)
        }
        return {
            policy: [
                float(np.mean(by_machines[machines][policy]))
                for machines in CAPACITIES
            ]
            for policy in POLICIES
        }

    table = once(benchmark, compute)
    lines = [
        "=== Figure 12b: time to target vs number of machines ===",
        "policy    | " + " ".join(f"{m:>7d}m" for m in CAPACITIES) + "  (minutes)",
    ]
    for policy, row in table.items():
        lines.append(
            f"{policy:9s} | " + " ".join(f"{minutes(v):8.0f}" for v in row)
        )
    lines += [
        "",
        "(paper: all policies improve with capacity; POP best everywhere)",
    ]
    emit(results_dir, "fig12b_resource_capacity", lines)

    for policy, row in table.items():
        # More machines help: the largest capacity beats the smallest.
        assert row[-1] < row[0]
    # POP wins outright at the scarce-resource capacities (where
    # scheduling matters most) and is never meaningfully worse than
    # the best policy anywhere.  (Deviation from the paper, recorded
    # in EXPERIMENTS.md: at 8-16 machines every policy approaches the
    # first-achiever floor, so Bandit ties or marginally beats POP
    # there instead of falling further behind.)
    for i, machines in enumerate(CAPACITIES):
        best = min(table[p][i] for p in POLICIES)
        if machines <= 4:
            assert table["pop"][i] == best
        assert table["pop"][i] <= 1.15 * best
    pop_mean = np.mean(table["pop"])
    for policy in ("bandit", "earlyterm", "default"):
        assert pop_mean < np.mean(table[policy])
