"""Figure 2b: the overtake phenomenon.

Paper: configuration A leads configuration B before epoch ~50, yet B's
final accuracy is higher — so instantaneous accuracy alone (TuPAQ's
signal) misidentifies the better configuration.
"""

from __future__ import annotations


from repro.analysis.figures import find_overtake_pair
from .conftest import emit, once


def test_fig2b_overtake_pair(benchmark, store, results_dir):
    pair = once(
        benchmark,
        lambda: find_overtake_pair(store.sl_workload, pool_size=100, seed=0),
    )
    assert pair is not None, "the workload must exhibit overtaking"
    early_leader, late_winner = pair
    third = len(early_leader) // 3

    lines = [
        "=== Figure 2b: learning curves of configurations A and B ===",
        "epoch :    A(early leader)    B(late winner)",
    ]
    for epoch in range(0, len(early_leader), 12):
        lines.append(
            f"{epoch+1:5d} : {early_leader[epoch]:10.3f} {late_winner[epoch]:15.3f}"
        )
    lines += [
        "",
        f"A at epoch {third}: {early_leader[third]:.3f}  B: {late_winner[third]:.3f}"
        "   (A ahead)",
        f"A final: {early_leader[-1]:.3f}  B final: {late_winner[-1]:.3f}"
        "   (B overtakes)",
    ]
    emit(results_dir, "fig2b_overtake", lines)

    assert early_leader[third] > late_winner[third]
    assert late_winner[-1] > early_leader[-1]
