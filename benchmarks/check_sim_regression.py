#!/usr/bin/env python
"""Compare a fresh BENCH_sim.json against the committed baseline.

Usage:
    python benchmarks/check_sim_regression.py \
        [--bench BENCH_sim.json] \
        [--baseline benchmarks/baselines/sim.json] \
        [--tolerance 0.4]

The comparison is on *speedup ratios* (each cell's scalar seconds
divided by its vectorized seconds from the same run), which cancels
out absolute machine speed: CI runners of different generations
produce the same ratios to within noise.  The gate fails when any
tracked ratio drops more than ``--tolerance`` (default 40% — the
default cell's closed-form replay runs in milliseconds, so its ratio
is noisier than a throughput measurement) below its committed
baseline value.

Exit status: 0 = within tolerance, 1 = regression, 2 = bad inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench", default=str(REPO_ROOT / "BENCH_sim.json"),
        help="fresh benchmark report (written by test_perf_sim.py)",
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "benchmarks" / "baselines" / "sim.json"),
        help="committed reference ratios",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.4,
        help="allowed fractional drop in each speedup ratio",
    )
    args = parser.parse_args(argv)

    try:
        bench = json.loads(Path(args.bench).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load inputs: {exc}", file=sys.stderr)
        return 2
    if not 0.0 <= args.tolerance < 1.0:
        print("error: tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    failures = []
    measured_ratios = bench.get("speedups_vs_scalar", {})
    for cell, reference in baseline.get("speedups_vs_scalar", {}).items():
        measured = measured_ratios.get(cell)
        floor = reference * (1.0 - args.tolerance)
        if measured is None:
            failures.append(f"cell {cell!r} missing from benchmark report")
            continue
        status = "ok" if measured >= floor else "REGRESSION"
        print(
            f"{cell:<8} speedup {measured:6.2f}x  "
            f"(baseline {reference:.2f}x, floor {floor:.2f}x)  {status}"
        )
        if measured < floor:
            failures.append(
                f"{cell} speedup {measured:.2f}x < floor {floor:.2f}x"
            )

    if failures:
        print(
            "\nperf gate FAILED (commit an updated baseline via the "
            "perf-baseline-update label if this change is intentional):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
