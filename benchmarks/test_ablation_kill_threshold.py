"""Ablation: kill-threshold sensitivity (§2.1 domain knowledge).

The paper sets the supervised kill threshold "slightly over random
accuracy at 15%".  This bench sweeps the threshold: too low (10%, i.e.
exactly random) barely prunes, too high risks killing slow learners.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import run_standard_experiment, standard_configs
from repro.core.pop import POPPolicy
from repro.workloads.base import DomainSpec
from repro.workloads.cifar10 import Cifar10Workload
from .conftest import emit, minutes, once

THRESHOLDS = (0.105, 0.15, 0.30)


class _RethresholdedCifar10(Cifar10Workload):
    """The standard workload with a different owner-declared kill
    threshold (everything else identical)."""

    def __init__(self, base: Cifar10Workload, kill_threshold: float):
        # Reuse the base's calibrator to avoid re-sampling the space.
        self._space = base.space
        self._calibrator = base._calibrator
        original = base.domain
        self._domain = DomainSpec(
            kind=original.kind,
            metric_name=original.metric_name,
            target=original.target,
            kill_threshold=kill_threshold,
            random_performance=original.random_performance,
            max_epochs=original.max_epochs,
            eval_boundary=original.eval_boundary,
        )


def test_ablation_kill_threshold(benchmark, store, results_dir):
    base = store.sl_workload
    configs = standard_configs(base, 100)

    def compute():
        table = {}
        for threshold in THRESHOLDS:
            workload = _RethresholdedCifar10(base, threshold)
            times, killed = [], []
            for seed in (0, 1):
                result = run_standard_experiment(
                    workload, POPPolicy(), seed=seed, configs=configs
                )
                times.append(
                    result.time_to_target
                    if result.reached_target
                    else result.finished_at
                )
                killed.append(result.terminated_count)
            table[threshold] = (float(np.mean(times)), float(np.mean(killed)))
        return table

    table = once(benchmark, compute)
    lines = [
        "=== Ablation: supervised kill-threshold sweep ===",
        "threshold | mean t2t (min) | mean jobs terminated",
    ]
    for threshold, (mean_time, mean_killed) in table.items():
        lines.append(
            f"{threshold:9.3f} | {minutes(mean_time):14.0f} | {mean_killed:10.1f}"
        )
    lines.append(
        "(paper sets 0.15, 'slightly over random': enough pruning "
        "without killing slow learners)"
    )
    emit(results_dir, "ablation_kill_threshold", lines)

    # A threshold barely above random prunes less aggressively early.
    assert table[0.105][1] <= table[0.30][1]
    # The paper's 0.15 must be at least as good as the extremes.
    assert table[0.15][0] <= 1.1 * min(t for t, _ in table.values())
