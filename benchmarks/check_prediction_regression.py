#!/usr/bin/env python
"""Compare a fresh BENCH_prediction.json against the committed baseline.

Usage:
    python benchmarks/check_prediction_regression.py \
        [--bench BENCH_prediction.json] \
        [--baseline benchmarks/baselines/prediction.json] \
        [--tolerance 0.25]

The comparison is on *speedup ratios* (each mode's throughput divided
by the serial mode's throughput from the same run), which cancels out
absolute machine speed: CI runners of different generations produce
the same ratios to within noise.  The gate fails when any tracked
ratio drops more than ``--tolerance`` (default 25%) below its
committed baseline value, or when the steady-state cache hit rate
falls below the baseline by more than an absolute 0.05.

Exit status: 0 = within tolerance, 1 = regression, 2 = bad inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HIT_RATE_SLACK = 0.05


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench", default=str(REPO_ROOT / "BENCH_prediction.json"),
        help="fresh benchmark report (written by test_perf_prediction.py)",
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "benchmarks" / "baselines" / "prediction.json"),
        help="committed reference ratios",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop in each speedup ratio",
    )
    args = parser.parse_args(argv)

    try:
        bench = json.loads(Path(args.bench).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load inputs: {exc}", file=sys.stderr)
        return 2
    if not 0.0 <= args.tolerance < 1.0:
        print("error: tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    failures = []
    measured_ratios = bench.get("speedups_vs_serial", {})
    for mode, reference in baseline.get("speedups_vs_serial", {}).items():
        measured = measured_ratios.get(mode)
        floor = reference * (1.0 - args.tolerance)
        if measured is None:
            failures.append(f"mode {mode!r} missing from benchmark report")
            continue
        status = "ok" if measured >= floor else "REGRESSION"
        print(
            f"{mode:<8} speedup {measured:6.2f}x  "
            f"(baseline {reference:.2f}x, floor {floor:.2f}x)  {status}"
        )
        if measured < floor:
            failures.append(
                f"{mode} speedup {measured:.2f}x < floor {floor:.2f}x"
            )

    reference_hit_rate = baseline.get("cache_hit_rate")
    if reference_hit_rate is not None:
        measured_hit_rate = (
            bench.get("modes", {}).get("engine", {}).get("cache_hit_rate")
        )
        floor = reference_hit_rate - HIT_RATE_SLACK
        if measured_hit_rate is None:
            failures.append("engine cache_hit_rate missing from report")
        else:
            status = "ok" if measured_hit_rate >= floor else "REGRESSION"
            print(
                f"engine   hit-rate {measured_hit_rate:.3f}   "
                f"(baseline {reference_hit_rate:.3f}, floor {floor:.3f})  "
                f"{status}"
            )
            if measured_hit_rate < floor:
                failures.append(
                    f"cache hit rate {measured_hit_rate:.3f} < {floor:.3f}"
                )

    if failures:
        print(
            "\nperf gate FAILED (commit an updated baseline via the "
            "perf-baseline-update label if this change is intentional):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
