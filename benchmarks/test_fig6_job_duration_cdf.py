"""Figure 6: job-execution-duration CDF per policy (supervised).

Paper: POP spends considerably less time per job than Bandit and
EarlyTerm — Bandit/EarlyTerm spend >=30 min on ~15% of jobs where POP
does so on only ~5%.
"""

from __future__ import annotations

import numpy as np

from .conftest import emit, once


def _fraction_over(durations_minutes, threshold):
    arr = np.asarray(durations_minutes)
    return float((arr >= threshold).mean())


def test_fig6_job_duration_cdf(benchmark, store, results_dir):
    def compute():
        out = {}
        for policy in ("pop", "bandit", "earlyterm"):
            result = store.sl_suite(policy)[0]
            durations = [
                job.total_training_time / 60.0
                for job in result.jobs
                if job.history
            ]
            out[policy] = durations
        return out

    durations = once(benchmark, compute)
    lines = [
        "=== Figure 6: job execution duration distribution (CIFAR-10) ===",
        "minutes : cumulative fraction of jobs",
        "        " + "".join(f"{p:>11s}" for p in durations),
    ]
    for minute_mark in (5, 10, 20, 30, 60, 90):
        row = f"{minute_mark:7d} :"
        for policy, values in durations.items():
            arr = np.sort(values)
            frac = float((arr <= minute_mark).mean())
            row += f"{frac:11.2f}"
        lines.append(row)
    over30 = {
        policy: _fraction_over(values, 30.0)
        for policy, values in durations.items()
    }
    lines += [
        "",
        "fraction of jobs running >= 30 min:",
    ] + [
        f"  {policy:10s}: {frac:.2f}"
        + ("   (paper: ~0.05)" if policy == "pop" else "   (paper: ~0.15)")
        for policy, frac in over30.items()
    ]
    emit(results_dir, "fig6_job_duration_cdf", lines)

    # Shape: POP's long-job tail is the smallest.
    assert over30["pop"] <= over30["bandit"]
    assert over30["pop"] <= over30["earlyterm"]
    # POP's total per-job time is smallest on average too.
    means = {p: np.mean(v) for p, v in durations.items()}
    assert means["pop"] <= min(means["bandit"], means["earlyterm"]) * 1.05
