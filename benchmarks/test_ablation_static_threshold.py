"""Ablation (§2.2c): dynamic threshold vs static promising thresholds.

The paper argues a static threshold is insufficient: too high and
promising configurations are identified late; too low and the pool
floods.  This bench runs POP with the dynamic desired/deserved crossing
against static thresholds at 0.25 and 0.90.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import run_standard_experiment
from repro.core.pop import POPPolicy
from .conftest import emit, minutes, once


class StaticThresholdPOP(POPPolicy):
    """POP with a fixed classification threshold instead of §3.2's
    dynamic crossing."""

    def __init__(self, threshold: float, **kwargs):
        super().__init__(**kwargs)
        self._static_threshold = threshold
        self.name = f"pop-static-{threshold:.2f}"

    def _reclassify_all(self) -> None:
        ctx = self.ctx
        self.threshold = self._static_threshold
        active = ctx.job_manager.active_jobs()
        promising = [
            job
            for job in active
            if job.confidence is not None
            and job.confidence >= self._static_threshold
        ]
        self.promising_slots = min(
            len(promising), ctx.resource_manager.num_machines
        )
        for job in active:
            is_promising = (
                job.confidence is not None
                and job.confidence >= self._static_threshold
            )
            job.promising = is_promising
            if is_promising and job.confidence is not None:
                ctx.job_manager.label_job(job.job_id, job.confidence)
            elif job.priority is not None and not is_promising:
                job.priority = None


def test_ablation_static_threshold(benchmark, store, results_dir):
    workload = store.sl_workload
    seeds = (0, 1, 2)

    def compute():
        variants = {
            "dynamic": lambda: POPPolicy(),
            "static-0.25": lambda: StaticThresholdPOP(0.25),
            "static-0.90": lambda: StaticThresholdPOP(0.90),
        }
        table = {}
        for name, factory in variants.items():
            times = []
            for seed in seeds:
                result = run_standard_experiment(workload, factory(), seed=seed)
                times.append(
                    result.time_to_target
                    if result.reached_target
                    else result.finished_at
                )
            table[name] = times
        return table

    table = once(benchmark, compute)
    lines = [
        "=== Ablation: dynamic vs static promising threshold ===",
        "variant      | mean t2t (min) over seeds " + str(list(seeds)),
    ]
    means = {}
    for name, times in table.items():
        means[name] = float(np.mean(times))
        lines.append(f"{name:12s} | {minutes(means[name]):8.0f}"
                     f"   ({[round(minutes(t)) for t in times]})")
    lines.append(
        "(§2.2c: the dynamic crossing should be at least competitive "
        "with the best static choice, without needing tuning)"
    )
    emit(results_dir, "ablation_static_threshold", lines)

    # The dynamic threshold must beat the worse static extreme and be
    # within 15% of the better one.
    worst_static = max(means["static-0.25"], means["static-0.90"])
    best_static = min(means["static-0.25"], means["static-0.90"])
    assert means["dynamic"] < worst_static
    assert means["dynamic"] <= 1.15 * best_static
