"""Extension bench: exploration under machine failures.

Not a paper figure — an extension exercising the recovery value of
HyperDrive's suspend/resume snapshots (§5.1): cloud machines get
preempted, and periodic checkpoints bound the work each failure
destroys.  The bench sweeps failure rates and reports time-to-target
and epochs lost with and without checkpointing.
"""

from __future__ import annotations


from repro.analysis.experiments import run_standard_experiment
from repro.core.pop import POPPolicy
from .conftest import emit, minutes, once

MTBFS = (None, 7200.0, 2400.0)  # none, 2 h, 40 min per machine


def test_ext_fault_tolerance(benchmark, store, results_dir):
    workload = store.sl_workload

    def compute():
        table = {}
        for mtbf in MTBFS:
            for checkpoint in ((None, 10) if mtbf else (None,)):
                result = run_standard_experiment(
                    workload,
                    POPPolicy(),
                    seed=0,
                    machine_mtbf=mtbf,
                    machine_recovery_seconds=600.0,
                    checkpoint_interval=checkpoint,
                )
                key = (mtbf, checkpoint)
                table[key] = (
                    result.time_to_target
                    if result.reached_target
                    else result.finished_at,
                    result.machine_failures,
                    result.epochs_lost_to_failures,
                )
        return table

    table = once(benchmark, compute)
    lines = [
        "=== Extension: POP under machine failures (CIFAR-10, 4 machines) ===",
        "MTBF      ckpt | t2t (min) | failures | epochs lost",
    ]
    for (mtbf, checkpoint), (t2t, failures, lost) in table.items():
        mtbf_label = "none" if mtbf is None else f"{mtbf/60:.0f}min"
        ckpt_label = "-" if checkpoint is None else str(checkpoint)
        lines.append(
            f"{mtbf_label:>9s} {ckpt_label:>4s} | {minutes(t2t):9.0f}"
            f" | {failures:8d} | {lost:11d}"
        )
    lines.append(
        "(checkpoints bound per-failure loss; failures slow but never "
        "break the search)"
    )
    emit(results_dir, "ext_fault_tolerance", lines)

    baseline = table[(None, None)][0]
    # Failures cost time but the search still concludes.
    for (mtbf, checkpoint), (t2t, failures, lost) in table.items():
        if mtbf is not None:
            assert failures > 0
            assert t2t >= baseline * 0.9
    # Checkpointing strictly reduces lost work at the same failure rate.
    for mtbf in (7200.0, 2400.0):
        assert table[(mtbf, 10)][2] <= table[(mtbf, None)][2]
