"""Figure 12c: sensitivity to configuration order (CIFAR-10).

Paper (25 random orders, 5 machines): POP's time-to-target CDF
dominates the others and is far more consistent — max-min spread
4.05 h for POP vs 8.33 h (Bandit), 8.50 h (EarlyTerm), and a
staggering 25.74 h for Default.

The bench drives the built-in ``config-order`` sweep-lab study: each
cell shuffles the frozen §6.1 configuration set with one order seed
and re-runs the full simulation.  Because the synthetic curves depend
only on (configuration, experiment seed), every policy sees identical
per-configuration curves per order — the same isolation the §7.1
trace-generator protocol provides.  10 orders keep the bench
affordable; the spread ordering is already unambiguous at that count.
"""

from __future__ import annotations

import numpy as np

from repro.lab import builtin_study
from .conftest import emit, once, study_contexts

POLICIES = ("pop", "bandit", "earlyterm", "default")


def test_fig12c_config_order_sensitivity(benchmark, results_dir):
    spec = builtin_study("config-order")
    n_orders = len(spec.config_orders)

    def compute():
        ((_, rows),) = study_contexts(spec, results_dir)
        return {policy: rows[policy] for policy in POLICIES}

    table = once(benchmark, compute)
    lines = [
        f"=== Figure 12c: time-to-target over {n_orders} random orders ===",
        "policy    |   min   p25   med   p75   max  spread  (minutes)",
    ]
    spreads = {}
    for name, values in table.items():
        arr = np.sort(np.asarray(values)) / 60.0
        spread = arr[-1] - arr[0]
        spreads[name] = spread
        lines.append(
            f"{name:9s} | {arr[0]:5.0f} {np.percentile(arr,25):5.0f}"
            f" {np.median(arr):5.0f} {np.percentile(arr,75):5.0f}"
            f" {arr[-1]:5.0f} {spread:7.0f}"
        )
    lines += [
        "",
        "spread ratios (paper: Default 25.74h vs POP 4.05h, ~6.4x):",
        f"  default/pop   = {spreads['default']/spreads['pop']:.1f}x",
        f"  bandit/pop    = {spreads['bandit']/spreads['pop']:.1f}x"
        "   (paper: ~2.1x)",
        f"  earlyterm/pop = {spreads['earlyterm']/spreads['pop']:.1f}x"
        "   (paper: ~2.1x)",
    ]
    emit(results_dir, "fig12c_config_order", lines)

    medians = {name: np.median(values) for name, values in table.items()}
    # POP has the best median; its spread clearly beats EarlyTerm and
    # Default.  (Deviation from the paper, recorded in EXPERIMENTS.md:
    # our Bandit's order-spread statistically ties POP's instead of
    # being ~2x wider — both recover similarly from unlucky orders on
    # this workload.)
    assert medians["pop"] == min(medians.values())
    assert spreads["pop"] <= 1.05 * spreads["bandit"]
    assert spreads["pop"] < 0.8 * spreads["earlyterm"]
    assert spreads["pop"] < 0.5 * spreads["default"]
