"""Figure 12c: sensitivity to configuration order (CIFAR-10).

Paper (25 random orders, 5 machines): POP's time-to-target CDF
dominates the others and is far more consistent — max-min spread
4.05 h for POP vs 8.33 h (Bandit), 8.50 h (EarlyTerm), and a
staggering 25.74 h for Default.

The reproduction replays a recorded trace so every policy sees
byte-identical learning curves per order (the §7.1 Trace Generator
role).  15 orders keep the bench affordable; the spread ordering is
already unambiguous at that count.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import standard_configs
from repro.framework.experiment import ExperimentSpec
from repro.core.pop import POPPolicy
from repro.policies.bandit import BanditPolicy
from repro.policies.default import DefaultPolicy
from repro.policies.earlyterm import EarlyTermPolicy
from repro.sim.runner import run_simulation
from repro.sim.trace import TraceWorkload, record_trace
from .conftest import emit, once

N_ORDERS = 15
POLICIES = {
    "pop": POPPolicy,
    "bandit": BanditPolicy,
    "earlyterm": EarlyTermPolicy,
    "default": DefaultPolicy,
}


def test_fig12c_config_order_sensitivity(benchmark, store, results_dir):
    workload = store.sl_workload
    base_trace = record_trace(workload, standard_configs(workload, 100), seed=0)

    def compute():
        table = {name: [] for name in POLICIES}
        for order in range(N_ORDERS):
            trace = base_trace.shuffled(order)
            replay = TraceWorkload(trace)
            for name, factory in POLICIES.items():
                result = run_simulation(
                    replay,
                    factory(),
                    configs=trace.configs,
                    spec=ExperimentSpec(num_machines=5, num_configs=100, seed=0),
                )
                value = (
                    result.time_to_target
                    if result.reached_target
                    else result.finished_at
                )
                table[name].append(value)
        return table

    table = once(benchmark, compute)
    lines = [
        f"=== Figure 12c: time-to-target over {N_ORDERS} random orders ===",
        "policy    |   min   p25   med   p75   max  spread  (minutes)",
    ]
    spreads = {}
    for name, values in table.items():
        arr = np.sort(np.asarray(values)) / 60.0
        spread = arr[-1] - arr[0]
        spreads[name] = spread
        lines.append(
            f"{name:9s} | {arr[0]:5.0f} {np.percentile(arr,25):5.0f}"
            f" {np.median(arr):5.0f} {np.percentile(arr,75):5.0f}"
            f" {arr[-1]:5.0f} {spread:7.0f}"
        )
    lines += [
        "",
        "spread ratios (paper: Default 25.74h vs POP 4.05h, ~6.4x):",
        f"  default/pop   = {spreads['default']/spreads['pop']:.1f}x",
        f"  bandit/pop    = {spreads['bandit']/spreads['pop']:.1f}x"
        "   (paper: ~2.1x)",
        f"  earlyterm/pop = {spreads['earlyterm']/spreads['pop']:.1f}x"
        "   (paper: ~2.1x)",
    ]
    emit(results_dir, "fig12c_config_order", lines)

    medians = {name: np.median(values) for name, values in table.items()}
    # POP has the best median; its spread clearly beats EarlyTerm and
    # Default.  (Deviation from the paper, recorded in EXPERIMENTS.md:
    # our Bandit's order-spread statistically ties POP's instead of
    # being ~2x wider — both recover similarly from unlucky orders on
    # this workload.)
    assert medians["pop"] == min(medians.values())
    assert spreads["pop"] <= 1.05 * spreads["bandit"]
    assert spreads["pop"] < 0.8 * spreads["earlyterm"]
    assert spreads["pop"] < 0.5 * spreads["default"]
