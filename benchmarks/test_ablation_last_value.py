"""Ablation (§2.2a): full-curve prediction vs instantaneous accuracy.

The paper's argument against prior work (TuPAQ): the most recent
performance alone misses overtakers.  POP driven by the last-value
predictor should be slower to the target (or less reliable) than POP
with the learning-curve ensemble.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import run_standard_experiment
from repro.core.pop import POPPolicy
from repro.curves.predictor import LastValuePredictor
from .conftest import emit, minutes, once


def test_ablation_last_value_predictor(benchmark, store, results_dir):
    workload = store.sl_workload
    seeds = (0, 1, 2)

    def compute():
        table = {"curve-ensemble": [], "last-value": []}
        for seed in seeds:
            full = run_standard_experiment(workload, POPPolicy(), seed=seed)
            table["curve-ensemble"].append(
                full.time_to_target if full.reached_target else full.finished_at
            )
            naive = run_standard_experiment(
                workload,
                POPPolicy(),
                seed=seed,
                predictor=LastValuePredictor(noise=0.01, n_sample_curves=100),
            )
            table["last-value"].append(
                naive.time_to_target if naive.reached_target else naive.finished_at
            )
        return table

    table = once(benchmark, compute)
    means = {k: float(np.mean(v)) for k, v in table.items()}
    lines = [
        "=== Ablation: curve-ensemble vs last-value prediction in POP ===",
        f"curve-ensemble mean t2t : {minutes(means['curve-ensemble']):6.0f} min",
        f"last-value mean t2t     : {minutes(means['last-value']):6.0f} min",
        f"penalty of instantaneous-only prediction: "
        f"{means['last-value']/means['curve-ensemble']:.2f}x",
        "(§2.2a: relying on the most recent performance alone wastes "
        "resources on fast-but-mediocre configurations)",
    ]
    emit(results_dir, "ablation_last_value", lines)

    assert means["last-value"] > means["curve-ensemble"]
