"""Ablation (§5.2): MCMC sample-budget reduction.

The paper cut the learning-curve model's MCMC budget from 250k samples
(100 walkers x 2500) to 70k (100 walkers x 700), reporting >2x faster
prediction "without significant degradation in our policy's
performance".  This bench reproduces the trade-off at proportionally
scaled-down budgets and compares prediction quality (rank correlation
of predicted final value with the truth over a pool of curves).
"""

from __future__ import annotations

import time

from scipy import stats as scipy_stats

from repro.analysis.experiments import standard_configs
from repro.curves.predictor import MCMCCurvePredictor
from .conftest import emit, once

MODELS = ("pow3", "weibull", "mmf", "ilog2")
OBSERVE = 30


def _quality_and_time(predictor, curves, true_finals):
    start = time.perf_counter()
    predicted = [
        float(predictor.predict(curve[:OBSERVE], 120 - OBSERVE).mean[-1])
        for curve in curves
    ]
    elapsed = time.perf_counter() - start
    rho = float(scipy_stats.spearmanr(predicted, true_finals).statistic)
    return rho, elapsed / len(curves)


def test_ablation_mcmc_sample_budget(benchmark, store, results_dir):
    workload = store.sl_workload
    configs = standard_configs(workload, 60)
    curves, finals = [], []
    for config in configs:
        run = workload.create_run(config, seed=0)
        if run.true_final_accuracy > 0.2:
            curves.append([run.step().metric for _ in range(120)])
            finals.append(run.true_final_accuracy)
        if len(curves) == 8:
            break

    def compute():
        # 2500:700 sample ratio preserved at 1/10 scale for bench time.
        full = MCMCCurvePredictor(
            n_walkers=40, n_samples=250, thin=5, model_names=MODELS, seed=0
        )
        reduced = MCMCCurvePredictor(
            n_walkers=40, n_samples=70, thin=2, model_names=MODELS, seed=0
        )
        return {
            "full (2500-sample scale)": _quality_and_time(full, curves, finals),
            "reduced (700-sample scale)": _quality_and_time(
                reduced, curves, finals
            ),
        }

    rows = once(benchmark, compute)
    lines = [
        "=== Ablation: MCMC sample budget (§5.2) ===",
        "budget                     | spearman(pred, true) | s/prediction",
    ]
    for name, (rho, seconds) in rows.items():
        lines.append(f"{name:26s} | {rho:20.3f} | {seconds:10.2f}")
    full_rho, full_time = rows["full (2500-sample scale)"]
    red_rho, red_time = rows["reduced (700-sample scale)"]
    lines += [
        "",
        f"speedup from reduction: {full_time/red_time:.1f}x   (paper: >2x)",
        f"quality degradation   : {full_rho - red_rho:+.3f} rank correlation",
    ]
    emit(results_dir, "ablation_mcmc_samples", lines)

    # Uncontended this measures ~3.7x; the bound is relaxed so CPU
    # contention from parallel work cannot flake a wall-clock ratio.
    assert full_time / red_time > 1.5
    assert red_rho > full_rho - 0.25  # no significant degradation
