"""Simulator fast-path bench: vectorized streams vs the scalar DES.

The discrete-event simulator is the inner loop of every lab study and
the training substrate of the learned scheduler
(:mod:`repro.sim.env`), so its throughput bounds everything
comparative this repo does.  This bench measures the two fast-path
tiers against the scalar path on identical inputs — and asserts
**exact result parity** while doing so, which is what makes the
speedup numbers trustworthy:

* ``default`` — :func:`repro.sim.fastpath.simulate_default_fast`
  (closed-form per-machine queue replay, no event loop) against the
  full DES running the Default SAP.  Same start order, same epoch
  finish times, so ``time_to_target`` / ``epochs_trained`` /
  ``best_metric`` must match exactly.
* ``pop`` — :class:`repro.sim.fastpath.FastBatchWorkload` (stream
  replay through the **unchanged** scheduler) against the scalar
  workload under the POP SAP.  Identical decisions, identical result;
  the win is bounded by predictor cost, hence the modest gate.

Gates:

* ``default`` speedup >= 10x (the closed-form replay skips the event
  loop entirely).
* ``pop`` speedup >= 0.5x (replay must never make the DES slower;
  predictor time dominates, so anything near 1x is healthy).

Writes ``BENCH_sim.json`` at the repo root.  CI compares the *speedup
ratios* (machine-relative, so a slower runner does not fail the gate)
against ``benchmarks/baselines/sim.json`` via
``benchmarks/check_sim_regression.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict

from repro.core.pop import POPPolicy
from repro.framework.experiment import ExperimentSpec
from repro.generators.random_gen import RandomGenerator
from repro.policies.default import DefaultPolicy
from repro.sim.fastpath import (
    FastBatchWorkload,
    precompute_streams,
    simulate_default_fast,
)
from repro.sim.runner import run_simulation
from repro.workloads.cifar10 import Cifar10Workload

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_sim.json"

N_CONFIGS = 24
MACHINES = 4
TMAX = 24 * 3600.0
SEED = 3           # experiment seed (training-noise streams)
GEN_SEED = 17      # configuration-set seed
DEFAULT_TRIALS = 3
POP_TRIALS = 1

DEFAULT_SPEEDUP_GATE = 10.0
POP_SPEEDUP_GATE = 0.5


def _configs(workload):
    generator = RandomGenerator(
        workload.space, seed=GEN_SEED, max_configs=N_CONFIGS
    )
    configs = []
    for _ in range(N_CONFIGS):
        _, config = generator.create_job()
        configs.append(config)
    return configs


def _spec() -> ExperimentSpec:
    return ExperimentSpec(
        num_machines=MACHINES,
        num_configs=N_CONFIGS,
        tmax=TMAX,
        seed=SEED,
    )


def _timed(fn, trials: int):
    """Best-of-``trials`` wall time plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(trials):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _bench_default(workload, configs) -> Dict[str, float]:
    """Closed-form Default-SAP replay vs the full DES."""
    scalar_seconds, scalar = _timed(
        lambda: run_simulation(
            workload, DefaultPolicy(), configs=configs, spec=_spec()
        ),
        DEFAULT_TRIALS,
    )
    vector_seconds, fast = _timed(
        lambda: simulate_default_fast(
            precompute_streams(workload, configs, seed=SEED),
            machines=MACHINES,
            tmax=TMAX,
        ),
        DEFAULT_TRIALS,
    )
    # Exact parity: the closed form IS the DES for this policy.
    assert fast["reached_target"] == scalar.reached_target
    if scalar.time_to_target is not None:
        assert abs(fast["time_to_target"] - scalar.time_to_target) < 1e-6
    assert fast["epochs_trained"] == scalar.epochs_trained
    if scalar.best_metric is not None:
        assert abs(fast["best_metric"] - scalar.best_metric) < 1e-9
    return {
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "trials": DEFAULT_TRIALS,
    }


def _bench_pop(workload, configs) -> Dict[str, float]:
    """Stream replay through the unchanged scheduler vs scalar runs."""
    scalar_seconds, scalar = _timed(
        lambda: run_simulation(
            workload, POPPolicy(), configs=configs, spec=_spec()
        ),
        POP_TRIALS,
    )
    fast_workload = FastBatchWorkload(workload, configs, seed=SEED)
    vector_seconds, fast = _timed(
        lambda: run_simulation(
            fast_workload, POPPolicy(), configs=configs, spec=_spec()
        ),
        POP_TRIALS,
    )
    # Replay parity: identical streams => identical decisions => the
    # same experiment outcome, field for field.
    assert fast.reached_target == scalar.reached_target
    if scalar.time_to_target is not None:
        assert abs(fast.time_to_target - scalar.time_to_target) < 1e-6
    assert fast.epochs_trained == scalar.epochs_trained
    if scalar.best_metric is not None:
        assert abs(fast.best_metric - scalar.best_metric) < 1e-9
    return {
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "trials": POP_TRIALS,
    }


def test_sim_fastpath_speedup():
    workload = Cifar10Workload()
    configs = _configs(workload)
    cells = {
        "default": _bench_default(workload, configs),
        "pop": _bench_pop(workload, configs),
    }
    report = {
        "bench": "sim_fastpath",
        "workload": "cifar10",
        "cells": cells,
        "speedups_vs_scalar": {
            name: cells[name]["speedup"] for name in cells
        },
        "gates": {
            "default_speedup_min": DEFAULT_SPEEDUP_GATE,
            "pop_speedup_min": POP_SPEEDUP_GATE,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print("\nsim fast-path speedups (vs scalar DES):")
    for name, row in cells.items():
        print(
            f"  {name:<8} scalar {row['scalar_seconds']:7.3f}s  "
            f"vectorized {row['vectorized_seconds']:7.3f}s  "
            f"speedup {row['speedup']:6.2f}x"
        )

    assert cells["default"]["speedup"] >= DEFAULT_SPEEDUP_GATE, (
        f"default fast path {cells['default']['speedup']:.2f}x below the "
        f"{DEFAULT_SPEEDUP_GATE}x gate (see {OUTPUT_PATH.name})"
    )
    assert cells["pop"]["speedup"] >= POP_SPEEDUP_GATE, (
        f"pop replay {cells['pop']['speedup']:.2f}x below the "
        f"{POP_SPEEDUP_GATE}x gate (see {OUTPUT_PATH.name})"
    )
