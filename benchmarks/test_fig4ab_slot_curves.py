"""Figures 4a/4b: desired vs deserved slot curves early and late.

Paper: early in an experiment confidences are small, so the desired
curve collapses near p=0 and few slots are promising (4a); later on the
curves cross at a high threshold with more effective slots (4b).
S_desired(p) is non-increasing, S_deserved(p) = S·p increasing; the
crossing maximises S_effective.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import standard_configs, standard_spec
from repro.analysis.figures import InstrumentedPOPPolicy
from repro.sim.runner import run_simulation
from .conftest import emit, once


def test_fig4ab_slot_curves(benchmark, store, results_dir):
    workload = store.sl_workload
    configs = standard_configs(workload, 100)
    policy = InstrumentedPOPPolicy()

    def run():
        run_simulation(
            workload,
            policy,
            configs=configs,
            spec=standard_spec(workload, seed=0),
        )
        return policy

    instrumented = once(benchmark, run)
    log = instrumented.allocation_log
    assert log, "POP must have reclassified at least once"
    early_time = log[max(0, len(log) // 10)][0]
    late_time = log[-1][0]

    lines = ["=== Figures 4a/4b: desired vs deserved slots ==="]
    for tag, timestamp in (("4a early", early_time), ("4b late", late_time)):
        curves = instrumented.slot_curves_at(timestamp, grid_points=11)
        assert curves is not None
        p_grid, desired, deserved = curves
        lines += [
            f"-- {tag} (t = {timestamp/60:.0f} min) --",
            "p      : " + " ".join(f"{p:5.2f}" for p in p_grid),
            "desired: " + " ".join(f"{d:5.1f}" for d in desired),
            "deserved:" + " ".join(f"{d:5.1f}" for d in deserved),
        ]
        # Monotonicity claims from §3.2.
        assert np.all(np.diff(desired) <= 1e-9)
        assert np.all(np.diff(deserved) >= -1e-9)

    early_eff = np.minimum(*_curves_at(instrumented, early_time))
    late_eff = np.minimum(*_curves_at(instrumented, late_time))
    lines += [
        "",
        f"max effective slots early: {early_eff.max():.2f}",
        f"max effective slots late : {late_eff.max():.2f}",
        "(paper: effective slots grow as prediction confidence rises)",
    ]
    emit(results_dir, "fig4ab_slot_curves", lines)
    assert late_eff.max() >= early_eff.max()


def _curves_at(policy, timestamp):
    _, desired, deserved = policy.slot_curves_at(timestamp, grid_points=101)
    return desired, deserved
