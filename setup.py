"""Setup shim: enables legacy editable installs in offline environments
(where pip's PEP-517 editable path needs the `wheel` package)."""
from setuptools import setup

setup()
