"""Fleet surface between the daemon and one cluster run.

:class:`FleetOptions` packages everything the cluster runtime needs to
run an elastic, metered fleet: worker-count bounds for its autoscale
loop, the fraction of the fleet provisioned as revocable spot
capacity, the revocation grace window, and the cost model/budget the
:class:`~repro.autoscale.costs.CostMeter` charges against.

:class:`FleetControl` is the live handle.  The daemon keeps one per
running cluster experiment; ``POST /fleet/revoke`` turns into
:meth:`request_revocation`, the runtime drains the queue from its
monitor loop, and :meth:`publish` flows fleet/cost status back for
``/broker`` and ``repro top``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .costs import CostModel

__all__ = ["FleetOptions", "FleetControl", "RevocationRequest"]


@dataclass(frozen=True)
class RevocationRequest:
    """One head-initiated spot revocation (None machine = pick one)."""

    machine_id: Optional[str] = None
    grace: Optional[float] = None


@dataclass
class FleetOptions:
    """Elasticity + economics knobs for one cluster run.

    Attributes:
        experiment_id: who the meter charges the spend to.
        autoscale: ``(min, max)`` worker-process bounds; ``None``
            keeps the fixed-size fleet (pre-elastic behaviour).
        spot_fraction: fraction of the fleet provisioned as spot
            machines (newest machines first; metered at the spot rate
            and eligible for revocation).
        grace_seconds: default grace window, in experiment seconds,
            between a revocation notice and the kill.
        cost_model: dollar rates by machine class.
        budget_slot_hours: the submission's budget the meter charges.
        cost_path: ``cost.jsonl`` destination (exclusive with
            ``cost_exporter``).
        cost_exporter: shared, already-open exporter (daemon mode).
    """

    experiment_id: str = "experiment"
    autoscale: Optional[Tuple[int, int]] = None
    spot_fraction: float = 0.0
    grace_seconds: float = 30.0
    cost_model: CostModel = field(default_factory=CostModel)
    budget_slot_hours: Optional[float] = None
    cost_path: Optional[object] = None
    cost_exporter: Optional[object] = None

    def __post_init__(self) -> None:
        if self.autoscale is not None:
            lo, hi = self.autoscale
            if lo < 1 or hi < lo:
                raise ValueError("autoscale bounds must satisfy 1 <= min <= max")
        if not 0.0 <= self.spot_fraction <= 1.0:
            raise ValueError("spot_fraction must be in [0, 1]")
        if self.grace_seconds < 0:
            raise ValueError("grace_seconds must be >= 0")


class FleetControl:
    """Thread-safe command/status channel for one live fleet."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._revocations: List[RevocationRequest] = []
        self._status: Dict[str, object] = {}

    # ------------------------------------------------------------- commands

    def request_revocation(
        self, machine_id: Optional[str] = None, grace: Optional[float] = None
    ) -> None:
        """Queue a spot revocation for the runtime to deliver."""
        with self._lock:
            self._revocations.append(
                RevocationRequest(machine_id=machine_id, grace=grace)
            )

    def drain_revocations(self) -> List[RevocationRequest]:
        """Take every queued revocation (runtime monitor loop)."""
        with self._lock:
            drained, self._revocations = self._revocations, []
        return drained

    # -------------------------------------------------------------- status

    def publish(self, status: Dict[str, object]) -> None:
        """Runtime-side: replace the visible fleet/cost status."""
        with self._lock:
            self._status = dict(status)

    def status(self) -> Dict[str, object]:
        with self._lock:
            return dict(self._status)
