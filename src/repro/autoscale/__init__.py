"""Elastic, cost-aware capacity for the cluster and the daemon.

The paper's scheduler assumes a fixed machine set; a production
training stack rents one.  This package closes that gap in three
pieces, each usable on its own:

* :mod:`~repro.autoscale.autoscaler` — the sizing brain: a pure
  hysteresis-plus-cooldown controller (:class:`Autoscaler`) that maps
  demand (busy slots, admission-queue depth) and marginal
  expected-best-accuracy-per-slot value onto a bounded fleet target,
  and :class:`PoolAutoscaler`, the daemon-side loop that applies those
  decisions to the broker's :class:`~repro.broker.pool.SlotPool`.
* :mod:`~repro.autoscale.costs` — machine-second metering
  (:class:`CostMeter`) with distinct on-demand vs spot rates
  (:class:`CostModel`), exported as ``cost_*`` gauges and a
  ``cost.jsonl`` audit trail, and reconciled against the submission's
  ``budget_slot_hours``.
* :mod:`~repro.autoscale.fleet` — the cluster-runtime surface:
  :class:`FleetOptions` (bounds, spot fraction, grace window, cost
  model) and :class:`FleetControl`, the thread-safe handle the daemon
  uses to revoke a spot worker of a live run and to read fleet status.

The budget-aware POP variant that spends these meters wisely lives in
:mod:`repro.core.pop_budget` (registered as ``pop-budget``).
"""

from .autoscaler import Autoscaler, AutoscaleDecision, PoolAutoscaler
from .costs import ON_DEMAND, SPOT, CostMeter, CostModel, machine_classes
from .fleet import FleetControl, FleetOptions

__all__ = [
    "Autoscaler",
    "AutoscaleDecision",
    "PoolAutoscaler",
    "CostMeter",
    "CostModel",
    "FleetControl",
    "FleetOptions",
    "ON_DEMAND",
    "SPOT",
    "machine_classes",
]
