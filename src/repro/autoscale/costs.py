"""Cost metering: machine-seconds in, dollars and gauges out.

Every up machine burns money whether or not its epochs help the
experiment — that asymmetry is the whole reason a budget-aware policy
can beat vanilla POP.  :class:`CostMeter` keeps one meter per machine
class (on-demand vs spot), charges the hosting experiment's
``budget_slot_hours``, and leaves two audit surfaces:

* ``cost_*`` gauges on the experiment's metrics registry (shipped via
  telemetry, rendered by ``repro top``'s cost panel), and
* a ``cost.jsonl`` trail of tick/summary records that the CI smoke job
  reconciles against raw machine-seconds.

Rates are expressed in dollars per machine-**hour**, normalised so one
on-demand machine-hour costs exactly one dollar by default — which
makes ``budget_slot_hours`` directly comparable to spend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..observability import NULL_RECORDER, JsonlExporter

__all__ = ["ON_DEMAND", "SPOT", "CostModel", "CostMeter", "machine_classes"]

ON_DEMAND = "on_demand"
SPOT = "spot"


@dataclass(frozen=True)
class CostModel:
    """Dollar rates per machine-hour, by machine class."""

    on_demand_rate: float = 1.0
    spot_rate: float = 0.3

    def __post_init__(self) -> None:
        if self.on_demand_rate < 0 or self.spot_rate < 0:
            raise ValueError("rates must be >= 0")

    def rate(self, machine_class: str) -> float:
        if machine_class == SPOT:
            return self.spot_rate
        return self.on_demand_rate

    def to_dict(self) -> Dict[str, float]:
        return {
            "on_demand_rate": self.on_demand_rate,
            "spot_rate": self.spot_rate,
        }


def machine_classes(
    machine_ids: List[str], spot_fraction: float
) -> Dict[str, str]:
    """Assign classes: the newest ``spot_fraction`` of the fleet is spot.

    Oldest machines stay on-demand so the stable core of the fleet is
    the reliable part — the same shape a real mixed fleet converges to,
    and it keeps machine-id -> class deterministic for tests.
    """
    if not 0.0 <= spot_fraction <= 1.0:
        raise ValueError("spot_fraction must be in [0, 1]")
    ordered = sorted(machine_ids)
    num_spot = int(round(len(ordered) * spot_fraction))
    classes = {machine_id: ON_DEMAND for machine_id in ordered}
    for machine_id in ordered[len(ordered) - num_spot:]:
        classes[machine_id] = SPOT
    return classes


class CostMeter:
    """Per-experiment machine-second meters with class-distinct rates.

    Args:
        exp_id: experiment the spend is charged to.
        model: dollar rates by machine class.
        budget_slot_hours: the submission's budget; ``None`` means
            unmetered (spend is still recorded, never exhausted).
        recorder: carries the ``cost_*`` gauges.
        cost_path: where to write the ``cost.jsonl`` trail; ``None``
            keeps the meter in-memory only.
        exporter: an already-open exporter to append to instead — the
            daemon hands every experiment's meter the same
            ``cost.jsonl`` sink (the meter then never closes it).
    """

    def __init__(
        self,
        exp_id: str,
        model: Optional[CostModel] = None,
        budget_slot_hours: Optional[float] = None,
        recorder=NULL_RECORDER,
        cost_path=None,
        exporter=None,
    ) -> None:
        self.exp_id = exp_id
        self.model = model if model is not None else CostModel()
        self.budget_slot_hours = budget_slot_hours
        self._lock = threading.Lock()
        self._seconds: Dict[str, float] = {}  # machine class -> seconds
        self._spent: float = 0.0  # dollars
        self._owns_exporter = exporter is None and cost_path is not None
        if exporter is not None:
            self._exporter = exporter
        elif cost_path is not None:
            self._exporter = JsonlExporter(cost_path)
        else:
            self._exporter = None
        metrics = recorder.metrics
        self._m_seconds = metrics.gauge(
            "cost_machine_seconds",
            help="Metered machine-seconds, by machine class",
        )
        self._m_spent = metrics.gauge(
            "cost_spent_dollars", help="Dollars spent, per experiment"
        )
        self._m_budget = metrics.gauge(
            "cost_budget_dollars",
            help="Dollar budget (budget_slot_hours at the on-demand rate)",
        )
        self._m_remaining = metrics.gauge(
            "cost_budget_remaining_dollars",
            help="Budget dollars left, per experiment",
        )
        if budget_slot_hours is not None:
            budget = budget_slot_hours * self.model.on_demand_rate
            self._m_budget.set(budget, experiment=exp_id)
            self._m_remaining.set(budget, experiment=exp_id)
        self._m_spent.set(0.0, experiment=exp_id)

    # -------------------------------------------------------------- queries

    @property
    def spent_dollars(self) -> float:
        with self._lock:
            return self._spent

    @property
    def budget_dollars(self) -> Optional[float]:
        if self.budget_slot_hours is None:
            return None
        return self.budget_slot_hours * self.model.on_demand_rate

    @property
    def remaining_dollars(self) -> Optional[float]:
        budget = self.budget_dollars
        if budget is None:
            return None
        return max(0.0, budget - self.spent_dollars)

    @property
    def exhausted(self) -> bool:
        remaining = self.remaining_dollars
        return remaining is not None and remaining <= 0.0

    def machine_seconds(self, machine_class: Optional[str] = None) -> float:
        with self._lock:
            if machine_class is not None:
                return self._seconds.get(machine_class, 0.0)
            return sum(self._seconds.values())

    # ------------------------------------------------------------- commands

    def charge(
        self, machine_class: str, seconds: float, machine_id: str = ""
    ) -> float:
        """Meter ``seconds`` of one machine's time; returns its cost."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        cost = self.model.rate(machine_class) * seconds / 3600.0
        with self._lock:
            self._seconds[machine_class] = (
                self._seconds.get(machine_class, 0.0) + seconds
            )
            self._spent += cost
            self._update_gauges()
        return cost

    def record(self, event: str, **fields) -> None:
        """Append one record to the ``cost.jsonl`` trail."""
        if self._exporter is None:
            return
        record = {"event": event, "experiment": self.exp_id}
        record.update(fields)
        self._exporter.export(record)

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return {
                "experiment": self.exp_id,
                "machine_seconds": dict(self._seconds),
                "spent_dollars": round(self._spent, 6),
                "budget_dollars": self.budget_dollars,
                "rates": self.model.to_dict(),
            }

    def close(self) -> None:
        """Write the final summary record and flush an owned trail."""
        if self._exporter is not None:
            self.record("cost_summary", **{
                key: value for key, value in self.summary().items()
                if key != "experiment"
            })
            if self._owns_exporter:
                self._exporter.close()

    # ------------------------------------------------------------- internal

    def _update_gauges(self) -> None:
        # Caller holds the lock.
        for machine_class, seconds in self._seconds.items():
            self._m_seconds.set(seconds, **{"class": machine_class})
        self._m_spent.set(self._spent, experiment=self.exp_id)
        budget = self.budget_dollars
        if budget is not None:
            self._m_remaining.set(
                max(0.0, budget - self._spent), experiment=self.exp_id
            )
