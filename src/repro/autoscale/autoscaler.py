"""The autoscaler: hysteresis + cooldown capacity control.

:class:`Autoscaler` is the decision core — a pure function of observed
demand, deliberately free of threads and I/O so the control law is
unit-testable.  It scales **up** when the fleet is saturated *and*
there is queued work whose marginal value clears the bar, scales
**down** when sustained pressure falls below the low-water mark, and
refuses to move at all inside the cooldown window so a noisy queue
cannot make the fleet flap.

:class:`PoolAutoscaler` is the daemon-side actuator: a small loop that
feeds the core from the broker's slot pool and admission queue and
applies decisions through :meth:`SlotPool.resize` — which never
strands a lease, so a shrink decision is a *target* the broker drains
toward, not an eviction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..observability import NULL_RECORDER

__all__ = ["AutoscaleDecision", "Autoscaler", "PoolAutoscaler"]


@dataclass(frozen=True)
class AutoscaleDecision:
    """One sizing decision and the inputs that justified it."""

    target: int
    direction: str  # "up" | "down"
    reason: str
    pressure: float


class Autoscaler:
    """Pure sizing controller with hysteresis, cooldown, and bounds.

    Args:
        min_size: the fleet never shrinks below this (>= 1).
        max_size: the fleet never grows beyond this.
        up_pressure: scale up only when ``demand / size`` is at or
            above this high-water mark (with queued work waiting).
        down_pressure: scale down only when ``demand / size`` is at or
            below this low-water mark.  Keeping the two marks apart is
            the hysteresis band.
        cooldown_seconds: minimum spacing between consecutive resizes.
        min_marginal_value: a scale-up additionally requires the
            marginal expected-best-accuracy-per-slot of the queued
            work to clear this bar — renting a machine for worthless
            configurations is exactly what the budget meter punishes.
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        min_size: int,
        max_size: int,
        up_pressure: float = 0.9,
        down_pressure: float = 0.5,
        cooldown_seconds: float = 5.0,
        min_marginal_value: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_size < 1:
            raise ValueError("min_size must be >= 1")
        if max_size < min_size:
            raise ValueError("max_size must be >= min_size")
        if not 0.0 <= down_pressure < up_pressure:
            raise ValueError("need 0 <= down_pressure < up_pressure")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.min_size = min_size
        self.max_size = max_size
        self.up_pressure = up_pressure
        self.down_pressure = down_pressure
        self.cooldown_seconds = cooldown_seconds
        self.min_marginal_value = min_marginal_value
        self._clock = clock
        self._last_change: Optional[float] = None

    def clamp(self, size: int) -> int:
        return max(self.min_size, min(self.max_size, size))

    def evaluate(
        self,
        size: int,
        busy: int,
        queue_depth: int,
        marginal_value: float = 0.0,
    ) -> Optional[AutoscaleDecision]:
        """Decide a new fleet target, or ``None`` to hold.

        Args:
            size: machines/slots currently provisioned.
            busy: machines/slots currently doing work.
            queue_depth: admitted-but-waiting work items.
            marginal_value: expected-best-accuracy-per-slot of the
                best queued/starved work (0 when unknown — which
                passes the default bar, so value-gating is opt-in).
        """
        now = self._clock()
        demand = busy + queue_depth
        pressure = demand / size if size > 0 else float("inf")

        # Bounds violations correct immediately, cooldown or not:
        # they are configuration changes, not control-loop jitter.
        if size < self.min_size:
            return self._decide(self.min_size, "up", "below_min", pressure, now)
        if size > self.max_size:
            return self._decide(self.max_size, "down", "above_max", pressure, now)

        if (
            self._last_change is not None
            and now - self._last_change < self.cooldown_seconds
        ):
            return None

        if (
            pressure >= self.up_pressure
            and queue_depth > 0
            and size < self.max_size
            and marginal_value >= self.min_marginal_value
        ):
            target = self.clamp(demand)
            if target > size:
                return self._decide(target, "up", "pressure_high", pressure, now)
        if pressure <= self.down_pressure and size > self.min_size:
            target = self.clamp(max(demand, self.min_size))
            if target < size:
                return self._decide(target, "down", "pressure_low", pressure, now)
        return None

    def _decide(
        self, target: int, direction: str, reason: str,
        pressure: float, now: float,
    ) -> AutoscaleDecision:
        self._last_change = now
        return AutoscaleDecision(
            target=target, direction=direction,
            reason=reason, pressure=pressure,
        )


class PoolAutoscaler:
    """Grows and shrinks the broker's slot-pool ledger.

    One daemon thread: every ``interval`` seconds it reads pool
    occupancy plus the caller-supplied demand probes, asks the
    :class:`Autoscaler` core for a decision, and applies it with
    :meth:`SlotPool.resize`.  Every resize is an ``autoscale`` audit
    record and moves the ``autoscale_target_slots`` gauge, so ``repro
    top`` and the broker journal both show why the pool moved.
    """

    def __init__(
        self,
        pool,
        autoscaler: Autoscaler,
        queue_depth: Callable[[], int],
        marginal_value: Callable[[], float] = lambda: 0.0,
        interval: float = 0.5,
        recorder=NULL_RECORDER,
        on_resize: Optional[Callable[[AutoscaleDecision], None]] = None,
    ) -> None:
        self.pool = pool
        self.core = autoscaler
        self._queue_depth = queue_depth
        self._marginal_value = marginal_value
        self._interval = interval
        self._recorder = recorder
        self._on_resize = on_resize
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._m_target = recorder.metrics.gauge(
            "autoscale_target_slots", help="Autoscaler's current pool target"
        )
        self._m_resizes = recorder.metrics.counter(
            "autoscale_resizes_total", help="Pool resizes, by direction"
        )
        self._m_target.set(float(pool.target_slots or 0))

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="pool-autoscaler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def poke(self) -> Optional[AutoscaleDecision]:
        """One synchronous control step (the loop body; used in tests)."""
        size = self.pool.target_slots
        if size is None:
            return None  # unlimited pool: nothing to scale
        decision = self.core.evaluate(
            size=size,
            busy=self.pool.allocated,
            queue_depth=self._queue_depth(),
            marginal_value=self._marginal_value(),
        )
        if decision is None:
            return None
        self.pool.resize(decision.target)
        self._m_target.set(float(decision.target))
        self._m_resizes.inc(direction=decision.direction)
        self._recorder.audit.record(
            "autoscale",
            target=decision.target,
            direction=decision.direction,
            reason=decision.reason,
            pressure=round(decision.pressure, 4),
            allocated=self.pool.allocated,
        )
        if self._on_resize is not None:
            self._on_resize(decision)
        return decision

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.poke()
            except Exception:  # pragma: no cover - keep the daemon alive
                import logging

                logging.getLogger(__name__).exception("autoscaler step failed")
