"""Command-line interface for running HyperDrive experiments.

Examples::

    python -m repro run --workload cifar10 --policy pop
    python -m repro run --workload lunarlander --policy bandit --machines 15
    python -m repro run --workload mlp --policy pop --live
    python -m repro record-trace --workload cifar10 --configs 40 --out t.json
    python -m repro replay --trace t.json --policy pop --orders 5
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Callable, Dict

from .core.pop import POPPolicy
from .framework.experiment import ExperimentSpec
from .generators.bayesian import BayesianGenerator
from .generators.grid import GridGenerator
from .generators.random_gen import RandomGenerator
from .policies.bandit import BanditPolicy
from .policies.default import DefaultPolicy
from .policies.earlyterm import EarlyTermPolicy
from .policies.hyperband import HyperBandPolicy, SuccessiveHalvingPolicy
from .sim.runner import run_simulation
from .sim.trace import Trace, TraceWorkload, record_trace
from .workloads.cifar10 import Cifar10Workload
from .workloads.lunarlander import LunarLanderWorkload
from .workloads.mlp import MLPWorkload

WORKLOADS: Dict[str, Callable] = {
    "cifar10": Cifar10Workload,
    "lunarlander": LunarLanderWorkload,
    "mlp": MLPWorkload,
}

POLICIES: Dict[str, Callable] = {
    "pop": POPPolicy,
    "bandit": BanditPolicy,
    "earlyterm": EarlyTermPolicy,
    "default": DefaultPolicy,
    "successive-halving": SuccessiveHalvingPolicy,
    "hyperband": HyperBandPolicy,
}

GENERATORS: Dict[str, Callable] = {
    "random": RandomGenerator,
    "grid": GridGenerator,
    "bayesian": BayesianGenerator,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HyperDrive / POP reproduction CLI"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="log job lifecycle events (start/suspend/terminate/...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one exploration experiment")
    run_parser.add_argument("--workload", choices=WORKLOADS, default="cifar10")
    run_parser.add_argument("--policy", choices=POLICIES, default="pop")
    run_parser.add_argument("--generator", choices=GENERATORS, default="random")
    run_parser.add_argument("--machines", type=int, default=None)
    run_parser.add_argument("--configs", type=int, default=100)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--gen-seed", type=int, default=None)
    run_parser.add_argument("--target", type=float, default=None)
    run_parser.add_argument("--tmax-hours", type=float, default=48.0)
    run_parser.add_argument(
        "--no-stop-on-target", action="store_true",
        help="run every configuration to completion",
    )
    run_parser.add_argument(
        "--live", action="store_true",
        help="use the live threaded runtime instead of simulation",
    )
    run_parser.add_argument("--time-scale", type=float, default=1e-3)
    run_parser.add_argument(
        "--save-result", metavar="PATH", default=None,
        help="archive the full result as JSON",
    )
    run_parser.add_argument(
        "--emit-events", metavar="PATH", default=None,
        help="stream the decision audit trail (SAP decisions with the "
             "confidence/ERT/threshold inputs behind them, POP "
             "classifications, lifecycle) as JSONL",
    )
    run_parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics registry as Prometheus-style text",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="keep spans (curve fits, process_epoch, snapshots) and "
             "print a per-operation timing summary",
    )

    trace_parser = sub.add_parser("record-trace", help="record a replayable trace")
    trace_parser.add_argument("--workload", choices=WORKLOADS, default="cifar10")
    trace_parser.add_argument("--configs", type=int, default=100)
    trace_parser.add_argument("--gen-seed", type=int, default=None)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--out", required=True)

    replay_parser = sub.add_parser("replay", help="replay a trace under orders")
    replay_parser.add_argument("--trace", required=True)
    replay_parser.add_argument("--policy", choices=POLICIES, default="pop")
    replay_parser.add_argument("--machines", type=int, default=5)
    replay_parser.add_argument("--orders", type=int, default=1)

    report_parser = sub.add_parser(
        "report", help="render an archived result JSON as markdown"
    )
    report_parser.add_argument("--result", required=True)
    return parser


def _default_gen_seed(workload_name: str) -> int:
    from .analysis.experiments import RL_GENERATOR_SEED, SL_GENERATOR_SEED

    return RL_GENERATOR_SEED if workload_name == "lunarlander" else SL_GENERATOR_SEED


def _default_machines(workload_name: str) -> int:
    return 15 if workload_name == "lunarlander" else 4


def _print_result(result) -> None:
    summary = result.summary()
    time_to_target = summary["time_to_target_min"]
    best_metric = summary["best_metric"]
    print(f"policy          : {summary['policy']}")
    print(f"reached target  : {summary['reached_target']}")
    print(
        "time to target  : "
        + ("n/a" if time_to_target is None else f"{time_to_target:.1f} min")
    )
    # best_metric is None when no epoch completed (e.g. a tiny --tmax-hours).
    print(
        "best metric     : "
        + ("n/a" if best_metric is None else f"{best_metric:.4f}")
    )
    print(f"epochs trained  : {summary['epochs_trained']}")
    print(f"jobs terminated : {summary['terminated']}")
    print(f"predictions     : {summary['predictions']}")
    print(f"suspends        : {len(result.snapshots)}")
    if "kills_by_reason" in summary and summary["kills_by_reason"]:
        breakdown = ", ".join(
            f"{reason}={int(count)}"
            for reason, count in sorted(summary["kills_by_reason"].items())
        )
        print(f"kills by reason : {breakdown}")


def _print_span_summary(recorder) -> None:
    spans = recorder.tracer.summary()
    if not spans:
        return
    print("spans           :")
    width = max(len(name) for name in spans)
    for name, stats in spans.items():
        print(
            f"  {name:<{width}}  x{int(stats['count']):<6} "
            f"wall {stats['wall_seconds']:.3f}s  "
            f"sim {stats['experiment_seconds']:.1f}s"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    workload = WORKLOADS[args.workload]()
    policy = POLICIES[args.policy]()
    gen_seed = args.gen_seed
    if gen_seed is None:
        gen_seed = _default_gen_seed(args.workload)
    machines = args.machines or _default_machines(args.workload)
    generator_cls = GENERATORS[args.generator]
    if args.generator == "grid":
        generator = generator_cls(workload.space, resolution=3,
                                  max_configs=args.configs)
    else:
        generator = generator_cls(workload.space, seed=gen_seed,
                                  max_configs=args.configs)
    spec = ExperimentSpec(
        num_machines=machines,
        num_configs=args.configs,
        seed=args.seed,
        target=args.target,
        tmax=args.tmax_hours * 3600.0,
        stop_on_target=not args.no_stop_on_target,
    )
    recorder = None
    if args.emit_events or args.metrics_out or args.trace:
        from pathlib import Path

        from .observability import JsonlExporter, Recorder

        # Fail fast on unwritable output paths — the exporter opens its
        # file lazily, which would otherwise crash minutes into the run.
        for out_path in (args.emit_events, args.metrics_out):
            if out_path and not Path(out_path).parent.is_dir():
                print(
                    f"error: output directory does not exist: {out_path}",
                    file=sys.stderr,
                )
                return 2
        exporter = JsonlExporter(args.emit_events) if args.emit_events else None
        recorder = Recorder(exporter=exporter, trace=args.trace)
    try:
        if args.live:
            from .runtime.local import run_live

            result = run_live(
                workload, policy, generator=generator, spec=spec,
                time_scale=args.time_scale, recorder=recorder,
            )
        else:
            result = run_simulation(
                workload, policy, generator=generator, spec=spec,
                recorder=recorder,
            )
    finally:
        if recorder is not None:
            recorder.close()
    _print_result(result)
    if recorder is not None and args.trace:
        _print_span_summary(recorder)
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(recorder.metrics.render_text())
        print(f"metrics written -> {args.metrics_out}")
    if args.emit_events:
        print(
            f"audit trail     -> {args.emit_events} "
            f"({recorder.exporter.events_written} events)"
        )
    if args.save_result:
        result.save_json(args.save_result)
        print(f"result archived -> {args.save_result}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import report_from_json

    print(report_from_json(args.result), end="")
    return 0


def _cmd_record_trace(args: argparse.Namespace) -> int:
    workload = WORKLOADS[args.workload]()
    gen_seed = args.gen_seed
    if gen_seed is None:
        gen_seed = _default_gen_seed(args.workload)
    generator = RandomGenerator(
        workload.space, seed=gen_seed, max_configs=args.configs
    )
    configs = [generator.create_job()[1] for _ in range(args.configs)]
    trace = record_trace(workload, configs, seed=args.seed)
    trace.save(args.out)
    print(f"recorded {len(trace)} configurations x "
          f"{workload.domain.max_epochs} epochs -> {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    for order in range(args.orders):
        shuffled = trace.shuffled(order) if args.orders > 1 else trace
        result = run_simulation(
            TraceWorkload(shuffled),
            POLICIES[args.policy](),
            configs=shuffled.configs,
            spec=ExperimentSpec(
                num_machines=args.machines, num_configs=len(shuffled), seed=0
            ),
        )
        value = (
            result.time_to_target
            if result.reached_target
            else result.finished_at
        )
        print(f"order {order}: time-to-target {value/60:.0f} min "
              f"(reached={result.reached_target})")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.verbose:
        logging.basicConfig(level=logging.INFO, format="%(message)s")
    handlers = {
        "run": _cmd_run,
        "record-trace": _cmd_record_trace,
        "replay": _cmd_replay,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
