"""Command-line interface for running HyperDrive experiments.

Examples::

    python -m repro run --workload cifar10 --policy pop
    python -m repro run --workload lunarlander --policy bandit --machines 15
    python -m repro run --workload mlp --policy pop --live
    python -m repro record-trace --workload cifar10 --configs 40 --out t.json
    python -m repro replay --trace t.json --policy pop --orders 5

Service (see ``docs/service.md``)::

    python -m repro serve --root runs/ --port 8765
    python -m repro submit --url http://127.0.0.1:8765 --workload cifar10
    python -m repro status --url http://127.0.0.1:8765
    python -m repro watch exp-0123abcd --url http://127.0.0.1:8765
    python -m repro resume exp-0123abcd --root runs/

Exit codes:

* ``0`` — success.
* ``2`` — usage error (bad flags/arguments; raised by argparse) or an
  invalid output path.
* ``3`` — runtime failure (the command raised: missing input file,
  unreachable daemon, experiment execution error, ...).
* ``4`` — the awaited experiment ended in a non-completed status
  (``submit --wait``, ``watch``, ``resume``).
* ``130`` — interrupted (Ctrl-C).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from . import registry
from .framework.experiment import ExperimentSpec
from .generators.random_gen import RandomGenerator
from .sim.runner import run_simulation
from .sim.trace import Trace, TraceWorkload, record_trace

# Backwards-compatible aliases: these registries used to live here.
WORKLOADS = registry.WORKLOADS
POLICIES = registry.POLICIES
GENERATORS = registry.GENERATORS

#: Exit code for an awaited experiment that did not complete.
EXIT_EXPERIMENT_NOT_COMPLETED = 4
#: Exit code for any command that raised a runtime error.
EXIT_RUNTIME_ERROR = 3

DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``run`` (local) and ``submit`` (service)."""
    parser.add_argument("--workload", choices=WORKLOADS, default="cifar10")
    parser.add_argument("--policy", choices=POLICIES, default="pop")
    parser.add_argument("--generator", choices=GENERATORS, default="random")
    parser.add_argument("--machines", type=int, default=None)
    parser.add_argument("--configs", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--gen-seed", type=int, default=None)
    parser.add_argument("--target", type=float, default=None)
    parser.add_argument("--tmax-hours", type=float, default=48.0)
    parser.add_argument(
        "--no-stop-on-target", action="store_true",
        help="run every configuration to completion",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="use the live threaded runtime instead of simulation",
    )
    parser.add_argument("--time-scale", type=float, default=1e-3)
    parser.add_argument(
        "--predict-workers", type=int, default=1,
        help="curve-prediction process-pool size; >1 enables the "
             "parallel prediction engine with prefix-fit caching "
             "(1 = legacy inline predictor, bit-reproducible)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HyperDrive / POP reproduction CLI"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="log job lifecycle events (start/suspend/terminate/...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one exploration experiment")
    _add_experiment_arguments(run_parser)
    run_parser.add_argument(
        "--json", action="store_true",
        help="print the machine-readable result dict as JSON on stdout "
             "(the human summary moves to stderr)",
    )
    run_parser.add_argument(
        "--save-result", metavar="PATH", default=None,
        help="archive the full result as JSON",
    )
    run_parser.add_argument(
        "--emit-events", metavar="PATH", default=None,
        help="stream the decision audit trail (SAP decisions with the "
             "confidence/ERT/threshold inputs behind them, POP "
             "classifications, lifecycle) as JSONL",
    )
    run_parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics registry as Prometheus-style text",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="keep spans (curve fits, process_epoch, snapshots) and "
             "print a per-operation timing summary",
    )

    trace_parser = sub.add_parser("record-trace", help="record a replayable trace")
    trace_parser.add_argument("--workload", choices=WORKLOADS, default="cifar10")
    trace_parser.add_argument("--configs", type=int, default=100)
    trace_parser.add_argument("--gen-seed", type=int, default=None)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--out", required=True)

    replay_parser = sub.add_parser("replay", help="replay a trace under orders")
    replay_parser.add_argument("--trace", required=True)
    replay_parser.add_argument("--policy", choices=POLICIES, default="pop")
    replay_parser.add_argument("--machines", type=int, default=5)
    replay_parser.add_argument("--orders", type=int, default=1)

    report_parser = sub.add_parser(
        "report", help="render an archived result JSON as markdown"
    )
    report_parser.add_argument("--result", required=True)

    serve_parser = sub.add_parser(
        "serve", help="run the experiment service daemon"
    )
    serve_parser.add_argument(
        "--root", required=True,
        help="run-store directory (SQLite index + event journals)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8765)
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent experiment workers",
    )
    serve_parser.add_argument(
        "--resume-interrupted", action="store_true",
        help="replay experiments a previous daemon left running",
    )
    serve_parser.add_argument(
        "--cluster-workers", type=int, default=None,
        help="execute live submissions on the multi-process cluster "
             "runtime with this many local worker processes per run "
             "(see docs/cluster.md); simulator submissions always run "
             "in-process on the daemon's worker pool",
    )
    serve_parser.add_argument(
        "--slots", type=int, default=None,
        help="bound the broker's shared slot pool: concurrent "
             "experiments lease machines from these N slots and may be "
             "shrunk/preempted as others arrive (default: unlimited)",
    )
    serve_parser.add_argument(
        "--autoscale", default=None, metavar="MIN:MAX",
        help="elastic cluster fleets: each live run starts MIN worker "
             "processes and grows/shrinks between MIN and MAX from "
             "queue pressure and marginal value (requires "
             "--cluster-workers == MAX, which is the default); also "
             "autosizes the broker slot pool from admission-queue depth",
    )
    serve_parser.add_argument(
        "--spot-fraction", type=float, default=0.0, metavar="F",
        help="fraction of each fleet provisioned as revocable spot "
             "machines, metered at the spot rate (default 0)",
    )
    serve_parser.add_argument(
        "--spot-rate", type=float, default=0.3, metavar="DOLLARS",
        help="spot $/machine-hour (on-demand is 1.0, so "
             "budget_slot_hours and dollars share a unit)",
    )
    serve_parser.add_argument(
        "--tenant-quotas", default=None, metavar="SPEC",
        help="per-tenant admission quotas, e.g. 'alice=2,bob=1:4' "
             "(tenant=max_running[:max_queued]; '*' sets the default)",
    )
    serve_parser.add_argument(
        "--max-queue-depth", type=int, default=None,
        help="global queued-experiment bound; a full queue answers "
             "503 + Retry-After",
    )
    serve_parser.add_argument(
        "--rate-limit", type=float, default=None, metavar="PER_MINUTE",
        help="per-tenant submission rate limit (token bucket); a dry "
             "bucket answers 429 + Retry-After",
    )
    serve_parser.add_argument(
        "--rate-burst", type=int, default=None,
        help="token-bucket burst size (default: one minute's rate)",
    )

    cluster_parser = sub.add_parser(
        "cluster-demo",
        help="run one experiment on the multi-process cluster runtime, "
             "optionally injecting deterministic faults",
    )
    cluster_parser.add_argument("--workload", choices=WORKLOADS, default="cifar10")
    cluster_parser.add_argument("--policy", choices=POLICIES, default="pop")
    cluster_parser.add_argument("--generator", choices=GENERATORS, default="random")
    cluster_parser.add_argument(
        "--workers", type=int, default=3,
        help="worker processes (= cluster machines)",
    )
    cluster_parser.add_argument("--configs", type=int, default=12)
    cluster_parser.add_argument("--seed", type=int, default=0)
    cluster_parser.add_argument("--gen-seed", type=int, default=None)
    cluster_parser.add_argument("--target", type=float, default=None)
    cluster_parser.add_argument("--tmax-hours", type=float, default=48.0)
    cluster_parser.add_argument(
        "--no-stop-on-target", action="store_true",
        help="run every configuration to completion",
    )
    cluster_parser.add_argument("--time-scale", type=float, default=1e-4)
    cluster_parser.add_argument(
        "--checkpoint-every", type=int, default=3,
        help="epochs between periodic snapshots (bounds work a failure "
             "can destroy)",
    )
    cluster_parser.add_argument(
        "--heartbeat-interval", type=float, default=0.1,
        help="seconds between heartbeat pings",
    )
    cluster_parser.add_argument(
        "--miss-threshold", type=int, default=3,
        help="consecutive missed pings before a silent node is dead",
    )
    cluster_parser.add_argument(
        "--retry-budget", type=int, default=3,
        help="migrations allowed per job before it is terminated",
    )
    cluster_parser.add_argument(
        "--kill", action="append", default=[], metavar="MACHINE@epoch:N",
        help="SIGKILL a worker after it trains its N-th epoch "
             "(e.g. machine-01@epoch:3); repeatable",
    )
    cluster_parser.add_argument(
        "--revoke", action="append", default=[],
        metavar="MACHINE@epoch:N[,grace:S]",
        help="spot-revoke a worker after its N-th epoch: it announces "
             "the revocation, the head drains its job off within the "
             "grace window, then the process dies; repeatable",
    )
    cluster_parser.add_argument(
        "--grace", type=float, default=30.0,
        help="default revocation grace window in experiment seconds",
    )
    cluster_parser.add_argument(
        "--spot-fraction", type=float, default=0.0, metavar="F",
        help="fraction of the fleet provisioned (and metered) as spot "
             "machines, newest first",
    )
    cluster_parser.add_argument(
        "--autoscale", default=None, metavar="MIN:MAX",
        help="elastic fleet: boot MIN worker processes and let the "
             "autoscaler grow/shrink between MIN and MAX "
             "(MAX must equal --workers)",
    )
    cluster_parser.add_argument(
        "--budget-slot-hours", type=float, default=None,
        help="machine-hour budget the cost meter charges against "
             "(and pop-budget optimises for)",
    )
    cluster_parser.add_argument(
        "--cost-out", metavar="PATH", default=None,
        help="write the per-experiment cost audit trail (cost.jsonl)",
    )
    cluster_parser.add_argument(
        "--drop-heartbeats", action="append", default=[],
        metavar="MACHINE@after:N,count:M",
        help="suppress M pongs after N answered pings; repeatable",
    )
    cluster_parser.add_argument(
        "--delay-send", action="append", default=[],
        metavar="MACHINE@seconds:S[,after:N]",
        help="delay every worker->head frame by S seconds; repeatable",
    )
    cluster_parser.add_argument(
        "--json", action="store_true",
        help="print the machine-readable result dict as JSON on stdout",
    )
    cluster_parser.add_argument(
        "--emit-events", metavar="PATH", default=None,
        help="stream the audit trail (incl. cluster membership "
             "transitions and migrations) as JSONL",
    )
    cluster_parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics registry as Prometheus-style text",
    )
    cluster_parser.add_argument(
        "--save-result", metavar="PATH", default=None,
        help="archive the full result as JSON",
    )
    cluster_parser.add_argument(
        "--trace", action="store_true",
        help="keep spans and propagate trace ids head->worker->head; "
             "with --emit-events the journal carries every span "
             "(including worker-shipped ones) for repro diagnose",
    )
    cluster_parser.add_argument(
        "--telemetry-out", metavar="PATH", default=None,
        help="write the merged node-labelled telemetry export "
             "(head + every worker registry) as Prometheus-style text",
    )

    sweep_parser = sub.add_parser(
        "sweep",
        help="declarative study orchestration: grids of experiments with "
             "parallel fan-out, resumable artifacts, and paired "
             "statistical reports (see docs/lab.md)",
    )
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command", required=True)

    def _add_sweep_source_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--study", default=None,
            help="built-in study name (policy-tournament, "
                 "capacity-sensitivity, config-order, generator-shootout, "
                 "sweep-smoke)",
        )
        parser.add_argument(
            "--spec", default=None, metavar="FILE",
            help="JSON StudySpec file (mutually exclusive with --study)",
        )
        parser.add_argument(
            "--seeds", default=None,
            help="comma-separated experiment-seed override, e.g. 0,1,2,3",
        )
        parser.add_argument(
            "--policies", default=None,
            help="comma-separated policy-axis override, e.g. "
                 "learned,learned-random (baseline must stay in the list)",
        )
        parser.add_argument(
            "--max-workers", type=int, default=None,
            help="cell fan-out processes (default: auto; 1 = inline)",
        )

    def _add_sweep_observability_arguments(
        parser: argparse.ArgumentParser,
    ) -> None:
        parser.add_argument(
            "--emit-events", metavar="PATH", default=None,
            help="stream the study audit trail (cells started/completed/"
                 "skipped) as JSONL",
        )
        parser.add_argument(
            "--metrics-out", metavar="PATH", default=None,
            help="write the study metrics registry as Prometheus-style text",
        )

    sweep_run = sweep_sub.add_parser(
        "run", help="run a study (an existing --out directory resumes it)"
    )
    _add_sweep_source_arguments(sweep_run)
    sweep_run.add_argument("--out", required=True, help="study directory")
    _add_sweep_observability_arguments(sweep_run)

    sweep_resume = sweep_sub.add_parser(
        "resume",
        help="finish an interrupted study from its directory's cell store",
    )
    sweep_resume.add_argument("--out", required=True, help="study directory")
    sweep_resume.add_argument("--max-workers", type=int, default=None)
    _add_sweep_observability_arguments(sweep_resume)

    sweep_report = sweep_sub.add_parser(
        "report",
        help="re-render report.md/report.json from a completed study "
             "directory and print the markdown",
    )
    sweep_report.add_argument("--out", required=True, help="study directory")

    sweep_submit = sweep_sub.add_parser(
        "submit", help="submit a study to a running daemon (POST /studies)"
    )
    _add_sweep_source_arguments(sweep_submit)
    sweep_submit.add_argument("--url", default=DEFAULT_SERVICE_URL)
    sweep_submit.add_argument(
        "--wait", action="store_true",
        help="block until the study finishes and print its report",
    )
    sweep_submit.add_argument("--poll", type=float, default=0.5)

    sweep_status = sweep_sub.add_parser(
        "status", help="show studies hosted by a daemon"
    )
    sweep_status.add_argument("id", nargs="?", default=None)
    sweep_status.add_argument("--url", default=DEFAULT_SERVICE_URL)

    train_parser = sub.add_parser(
        "train-policy",
        help="train the learned scheduling policy against the simulator "
             "and freeze it as a deterministic artifact (docs/learned.md)",
    )
    train_parser.add_argument(
        "--out", required=True, metavar="PATH",
        help="frozen-artifact JSON path (written atomically; "
             "byte-identical for identical settings)",
    )
    train_parser.add_argument(
        "--episodes", type=int, default=6400,
        help="training episodes (the default recipe reproduces the "
             "committed pretrained artifact byte for byte)",
    )
    train_parser.add_argument("--seed", type=int, default=0)
    train_parser.add_argument("--workload", choices=WORKLOADS, default="cifar10")
    train_parser.add_argument("--generator", choices=GENERATORS, default="random")
    train_parser.add_argument("--num-configs", type=int, default=12)
    train_parser.add_argument("--slots", type=int, default=4)
    train_parser.add_argument("--tmax-hours", type=float, default=6.0)
    train_parser.add_argument("--hidden", type=int, default=16)
    train_parser.add_argument("--lr", type=float, default=0.1)
    train_parser.add_argument("--entropy-coef", type=float, default=0.01)
    train_parser.add_argument("--group-size", type=int, default=8)
    train_parser.add_argument("--seed-pool", type=int, default=16)
    train_parser.add_argument(
        "--gen-seed-base", type=int, default=10_000,
        help="first training generator seed (keep disjoint from "
             "evaluation seeds; learned-vs-pop holds out 200+)",
    )
    train_parser.add_argument(
        "--emit-events", metavar="PATH", default=None,
        help="stream training checkpoints (audit trail) as JSONL",
    )
    train_parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write learn_* instruments as Prometheus-style text",
    )
    train_parser.add_argument(
        "--json", action="store_true",
        help="print the training summary as JSON on stdout",
    )

    submit_parser = sub.add_parser(
        "submit", help="submit an experiment to a running daemon"
    )
    _add_experiment_arguments(submit_parser)
    submit_parser.add_argument("--url", default=DEFAULT_SERVICE_URL)
    submit_parser.add_argument(
        "--checkpoint-every", type=int, default=25,
        help="epochs between durable service checkpoints",
    )
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="block until the experiment finishes and print its summary",
    )
    submit_parser.add_argument("--poll", type=float, default=0.5)
    submit_parser.add_argument(
        "--tenant", default="default",
        help="broker tenant this submission bills to (quotas, rate "
             "limits, budget accounting)",
    )
    submit_parser.add_argument(
        "--priority", type=int, default=0,
        help="admission priority: higher claims first and may preempt "
             "running lower-priority work on a bounded pool",
    )
    submit_parser.add_argument(
        "--deadline-hours", type=float, default=None,
        help="soft deadline; approaching it raises the experiment's "
             "claim on shared slots (deadline pressure)",
    )
    submit_parser.add_argument(
        "--budget-slot-hours", type=float, default=None,
        help="slot-hour budget; once spent the broker shrinks the "
             "experiment to its one-slot guarantee",
    )

    status_parser = sub.add_parser(
        "status", help="show experiments known to a daemon or a store"
    )
    status_parser.add_argument("id", nargs="?", default=None)
    status_parser.add_argument("--url", default=None)
    status_parser.add_argument(
        "--root", default=None,
        help="read the run store directly (no daemon required)",
    )

    watch_parser = sub.add_parser(
        "watch", help="follow one experiment until it finishes"
    )
    watch_parser.add_argument("id")
    watch_parser.add_argument("--url", default=DEFAULT_SERVICE_URL)
    watch_parser.add_argument("--poll", type=float, default=0.5)
    watch_parser.add_argument(
        "--timeout", type=float, default=None,
        help="give up after this many seconds (exit 3)",
    )

    resume_parser = sub.add_parser(
        "resume", help="resume an interrupted experiment from its store"
    )
    resume_parser.add_argument("id")
    resume_parser.add_argument("--root", required=True)

    broker_parser = sub.add_parser(
        "broker-status",
        help="show a daemon's resource broker: slot pool, per-"
             "experiment leases/targets, tenants, admission config",
    )
    broker_parser.add_argument("--url", default=DEFAULT_SERVICE_URL)
    broker_parser.add_argument(
        "--json", action="store_true",
        help="print the raw GET /broker document",
    )

    top_parser = sub.add_parser(
        "top",
        help="live terminal dashboard over a daemon's GET /telemetry "
             "(nodes, heartbeat health, per-experiment progress)",
    )
    top_parser.add_argument("--url", default=DEFAULT_SERVICE_URL)
    top_parser.add_argument(
        "--poll", type=float, default=1.0,
        help="seconds between refreshes",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (scripting/tests)",
    )

    diagnose_parser = sub.add_parser(
        "diagnose",
        help="merge observability journals (JSONL) into per-experiment "
             "timelines with a predict/train/migrate/idle phase "
             "breakdown and a critical-path summary",
    )
    diagnose_parser.add_argument(
        "journals", nargs="+", metavar="JOURNAL.jsonl",
        help="journal files (--emit-events output or store journals); "
             "each file is reported as one experiment",
    )
    diagnose_parser.add_argument(
        "--json", action="store_true",
        help="print the report dict as JSON instead of markdown",
    )
    return parser


def _default_gen_seed(workload_name: str) -> int:
    return registry.default_gen_seed(workload_name)


def _default_machines(workload_name: str) -> int:
    return registry.default_machines(workload_name)


def _print_result(result, file=None) -> None:
    out = sys.stdout if file is None else file
    summary = result.summary()
    time_to_target = summary["time_to_target_min"]
    best_metric = summary["best_metric"]
    print(f"policy          : {summary['policy']}", file=out)
    print(f"reached target  : {summary['reached_target']}", file=out)
    print(
        "time to target  : "
        + ("n/a" if time_to_target is None else f"{time_to_target:.1f} min"),
        file=out,
    )
    # best_metric is None when no epoch completed (e.g. a tiny --tmax-hours).
    print(
        "best metric     : "
        + ("n/a" if best_metric is None else f"{best_metric:.4f}"),
        file=out,
    )
    print(f"epochs trained  : {summary['epochs_trained']}", file=out)
    print(f"jobs terminated : {summary['terminated']}", file=out)
    print(f"predictions     : {summary['predictions']}", file=out)
    print(f"suspends        : {len(result.snapshots)}", file=out)
    if "kills_by_reason" in summary and summary["kills_by_reason"]:
        breakdown = ", ".join(
            f"{reason}={int(count)}"
            for reason, count in sorted(summary["kills_by_reason"].items())
        )
        print(f"kills by reason : {breakdown}", file=out)


def _print_span_summary(recorder, file=None) -> None:
    out = sys.stdout if file is None else file
    spans = recorder.tracer.summary()
    if not spans:
        return
    print("spans           :", file=out)
    width = max(len(name) for name in spans)
    for name, stats in spans.items():
        print(
            f"  {name:<{width}}  x{int(stats['count']):<6} "
            f"wall {stats['wall_seconds']:.3f}s  "
            f"sim {stats['experiment_seconds']:.1f}s",
            file=out,
        )


def _cmd_run(args: argparse.Namespace) -> int:
    # In --json mode stdout carries exactly one JSON document (the
    # result dict); everything human-readable goes to stderr.
    info = sys.stderr if args.json else sys.stdout
    workload = registry.build_workload(args.workload)
    policy = registry.build_policy(args.policy)
    gen_seed = args.gen_seed
    if gen_seed is None:
        gen_seed = registry.default_gen_seed(args.workload)
    machines = args.machines or registry.default_machines(args.workload)
    generator = registry.build_generator(
        args.generator, workload, max_configs=args.configs, gen_seed=gen_seed
    )
    spec = ExperimentSpec(
        num_machines=machines,
        num_configs=args.configs,
        seed=args.seed,
        target=args.target,
        tmax=args.tmax_hours * 3600.0,
        stop_on_target=not args.no_stop_on_target,
        predict_workers=args.predict_workers,
    )
    recorder = None
    if args.emit_events or args.metrics_out or args.trace:
        from pathlib import Path

        from .observability import JsonlExporter, Recorder

        # Fail fast on unwritable output paths — the exporter opens its
        # file lazily, which would otherwise crash minutes into the run.
        for out_path in (args.emit_events, args.metrics_out):
            if out_path and not Path(out_path).parent.is_dir():
                print(
                    f"error: output directory does not exist: {out_path}",
                    file=sys.stderr,
                )
                return 2
        exporter = JsonlExporter(args.emit_events) if args.emit_events else None
        recorder = Recorder(exporter=exporter, trace=args.trace)
    try:
        if args.live:
            from .runtime.local import run_live

            result = run_live(
                workload, policy, generator=generator, spec=spec,
                time_scale=args.time_scale, recorder=recorder,
            )
        else:
            result = run_simulation(
                workload, policy, generator=generator, spec=spec,
                recorder=recorder,
            )
    finally:
        if recorder is not None:
            recorder.close()
    _print_result(result, file=info)
    if recorder is not None and args.trace:
        _print_span_summary(recorder, file=info)
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(recorder.metrics.render_text())
        print(f"metrics written -> {args.metrics_out}", file=info)
    if args.emit_events:
        print(
            f"audit trail     -> {args.emit_events} "
            f"({recorder.exporter.events_written} events)",
            file=info,
        )
    if args.save_result:
        result.save_json(args.save_result)
        print(f"result archived -> {args.save_result}", file=info)
    if args.json:
        from .observability.exporters import encode_event

        print(encode_event(result.to_dict()))
    return 0


def _parse_autoscale(value):
    """Parse ``"MIN:MAX"`` into an ``(int, int)`` bounds tuple."""
    if value is None:
        return None
    try:
        lo_text, hi_text = value.split(":", 1)
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise ValueError(
            f"--autoscale expects MIN:MAX (got {value!r})"
        ) from None
    if lo < 1 or hi < lo:
        raise ValueError("--autoscale bounds must satisfy 1 <= MIN <= MAX")
    return lo, hi


def _cmd_cluster_demo(args: argparse.Namespace) -> int:
    """One experiment on the multi-process cluster runtime.

    Demonstrates (and smoke-tests) heartbeat failure detection and
    snapshot migration: ``--kill machine-01@epoch:3`` SIGKILLs a worker
    mid-run and the experiment still completes on the survivors.
    """
    from pathlib import Path

    from .cluster import FaultPlan, run_cluster
    from .observability import JsonlExporter, Recorder

    info = sys.stderr if args.json else sys.stdout
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    for out_path in (args.emit_events, args.metrics_out, args.telemetry_out):
        if out_path and not Path(out_path).parent.is_dir():
            print(f"error: output directory does not exist: {out_path}",
                  file=sys.stderr)
            return 2
    fault_plan = FaultPlan.parse(
        kill=args.kill,
        drop_heartbeats=args.drop_heartbeats,
        delay_send=args.delay_send,
        revoke=args.revoke,
    )
    try:
        autoscale = _parse_autoscale(args.autoscale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if autoscale is not None and autoscale[1] != args.workers:
        print("error: --autoscale MAX must equal --workers "
              f"({autoscale[1]} != {args.workers})", file=sys.stderr)
        return 2
    fleet = None
    if (autoscale is not None or args.spot_fraction > 0.0
            or args.revoke or args.budget_slot_hours is not None
            or args.cost_out):
        from .autoscale import FleetOptions

        fleet = FleetOptions(
            autoscale=autoscale,
            spot_fraction=args.spot_fraction,
            grace_seconds=args.grace,
            budget_slot_hours=args.budget_slot_hours,
            cost_path=args.cost_out,
        )
    workload = registry.build_workload(args.workload)
    policy = registry.build_policy(args.policy)
    if hasattr(policy, "configure_budget"):
        policy.configure_budget(args.budget_slot_hours)
    gen_seed = args.gen_seed
    if gen_seed is None:
        gen_seed = registry.default_gen_seed(args.workload)
    generator = registry.build_generator(
        args.generator, workload, max_configs=args.configs, gen_seed=gen_seed
    )
    spec = ExperimentSpec(
        num_machines=args.workers,
        num_configs=args.configs,
        seed=args.seed,
        target=args.target,
        tmax=args.tmax_hours * 3600.0,
        stop_on_target=not args.no_stop_on_target,
        checkpoint_interval=args.checkpoint_every,
    )
    exporter = JsonlExporter(args.emit_events) if args.emit_events else None
    recorder = Recorder(exporter=exporter, trace=args.trace)
    aggregator = None
    if args.telemetry_out:
        from .observability import TelemetryAggregator

        aggregator = TelemetryAggregator()
    try:
        result = run_cluster(
            workload, policy, generator=generator, spec=spec,
            time_scale=args.time_scale, fault_plan=fault_plan,
            recorder=recorder,
            heartbeat_interval=args.heartbeat_interval,
            miss_threshold=args.miss_threshold,
            retry_budget=args.retry_budget,
            aggregator=aggregator,
            fleet=fleet,
        )
    finally:
        recorder.close()
    _print_result(result, file=info)
    print(f"machine failures: {result.machine_failures}", file=info)
    print(f"epochs lost     : {result.epochs_lost_to_failures}", file=info)
    if args.trace:
        _print_span_summary(recorder, file=info)
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(recorder.metrics.render_text())
        print(f"metrics written -> {args.metrics_out}", file=info)
    if args.telemetry_out:
        with open(args.telemetry_out, "w") as handle:
            handle.write(aggregator.render_text())
        print(f"telemetry       -> {args.telemetry_out} "
              f"({len(aggregator.node_ids)} nodes)", file=info)
    if args.emit_events:
        print(
            f"audit trail     -> {args.emit_events} "
            f"({recorder.exporter.events_written} events)",
            file=info,
        )
    if args.cost_out:
        print(f"cost audit      -> {args.cost_out}", file=info)
    if args.save_result:
        result.save_json(args.save_result)
        print(f"result archived -> {args.save_result}", file=info)
    if args.json:
        from .observability.exporters import encode_event

        print(encode_event(result.to_dict()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import report_from_json

    print(report_from_json(args.result), end="")
    return 0


def _cmd_record_trace(args: argparse.Namespace) -> int:
    workload = registry.build_workload(args.workload)
    gen_seed = args.gen_seed
    if gen_seed is None:
        gen_seed = registry.default_gen_seed(args.workload)
    generator = RandomGenerator(
        workload.space, seed=gen_seed, max_configs=args.configs
    )
    configs = [generator.create_job()[1] for _ in range(args.configs)]
    trace = record_trace(workload, configs, seed=args.seed)
    trace.save(args.out)
    print(f"recorded {len(trace)} configurations x "
          f"{workload.domain.max_epochs} epochs -> {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    for order in range(args.orders):
        shuffled = trace.shuffled(order) if args.orders > 1 else trace
        result = run_simulation(
            TraceWorkload(shuffled),
            POLICIES[args.policy](),
            configs=shuffled.configs,
            spec=ExperimentSpec(
                num_machines=args.machines, num_configs=len(shuffled), seed=0
            ),
        )
        value = (
            result.time_to_target
            if result.reached_target
            else result.finished_at
        )
        print(f"order {order}: time-to-target {value/60:.0f} min "
              f"(reached={result.reached_target})")
    return 0


# ------------------------------------------------------------ train-policy


def _cmd_train_policy(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .learn.trainer import TrainerConfig, train_policy

    info = sys.stderr if args.json else sys.stdout
    for out_path in (args.out, args.emit_events, args.metrics_out):
        if out_path and not Path(out_path).parent.is_dir():
            # The artifact writer creates directories, but exporters
            # open lazily — fail fast on both for symmetry.
            Path(out_path).parent.mkdir(parents=True, exist_ok=True)
    recorder = None
    if args.emit_events or args.metrics_out:
        from .observability import JsonlExporter, Recorder

        exporter = JsonlExporter(args.emit_events) if args.emit_events else None
        recorder = Recorder(exporter=exporter)
    config = TrainerConfig(
        episodes=args.episodes,
        seed=args.seed,
        hidden=args.hidden,
        lr=args.lr,
        entropy_coef=args.entropy_coef,
        gen_seed_base=args.gen_seed_base,
        seed_pool=args.seed_pool,
        group_size=args.group_size,
        workload=args.workload,
        generator=args.generator,
        num_configs=args.num_configs,
        slots=args.slots,
        tmax_hours=args.tmax_hours,
    )

    def _progress(update):
        if update["episode"] % max(args.group_size * 25, 1) == 0:
            print(
                f"episode {update['episode']}/{update['episodes']}  "
                f"reward {update['reward']:.3f}  "
                f"best {update['best_reward']:.3f}  "
                f"entropy {update['entropy']:.3f}",
                file=info,
            )

    kwargs = {"recorder": recorder} if recorder is not None else {}
    summary = train_policy(
        config, artifact_path=args.out, progress=_progress, **kwargs
    )
    if recorder is not None and args.metrics_out:
        Path(args.metrics_out).write_text(recorder.metrics.render_text())
    if recorder is not None:
        recorder.close()
    rewards = summary["rewards"]
    tail = rewards[-max(1, len(rewards) // 4):]
    print(
        f"trained {len(rewards)} episodes "
        f"(best reward {summary['best_reward']:.3f}, "
        f"last-quarter mean {sum(tail) / len(tail):.3f}); "
        f"artifact frozen at {args.out}",
        file=info,
    )
    print(
        f"evaluate with: REPRO_LEARNED_ARTIFACT={args.out} "
        "repro sweep run --study learned-vs-pop --out <dir>",
        file=info,
    )
    if args.json:
        document = {
            "artifact_path": args.out,
            "episodes": len(rewards),
            "best_reward": summary["best_reward"],
            "rewards": rewards,
            "provenance": summary["artifact"]["provenance"],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    return 0


# -------------------------------------------------------------------- sweep


def _sweep_spec_from_args(args: argparse.Namespace):
    """Resolve --study/--spec (+ --seeds override) into a StudySpec."""
    from .lab import StudySpec, builtin_study

    if (args.study is None) == (args.spec is None):
        raise ValueError("provide exactly one of --study or --spec")
    if args.study is not None:
        spec = builtin_study(args.study)
    else:
        spec = StudySpec.from_json_file(args.spec)
    if args.seeds is not None:
        try:
            seeds = tuple(int(part) for part in args.seeds.split(","))
        except ValueError:
            raise ValueError(
                f"--seeds must be comma-separated integers, got {args.seeds!r}"
            ) from None
        spec = spec.with_overrides(seeds=seeds)
    if getattr(args, "policies", None) is not None:
        policies = tuple(
            part.strip() for part in args.policies.split(",") if part.strip()
        )
        if not policies:
            raise ValueError("--policies must name at least one policy")
        overrides = {"policies": policies}
        if (
            spec.compare_axis == "policy"
            and spec.baseline_level not in policies
        ):
            # Keep the spec valid: the first listed policy becomes the
            # baseline when the original one was filtered out.
            overrides["baseline"] = {"policy": policies[0]}
        spec = spec.with_overrides(**overrides)
    return spec


def _sweep_recorder(args: argparse.Namespace):
    """An observability recorder for sweep commands (None if unused)."""
    emit_events = getattr(args, "emit_events", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not emit_events and not metrics_out:
        return None
    from pathlib import Path

    from .observability import JsonlExporter, Recorder

    for out_path in (emit_events, metrics_out):
        if out_path and not Path(out_path).parent.is_dir():
            raise ValueError(f"output directory does not exist: {out_path}")
    exporter = JsonlExporter(emit_events) if emit_events else None
    return Recorder(exporter=exporter)


def _sweep_execute(args: argparse.Namespace, spec) -> int:
    """Shared body of ``sweep run`` and ``sweep resume``."""
    from .lab import CellStore, StudyRunner

    recorder = _sweep_recorder(args)
    store = CellStore(args.out)
    runner = StudyRunner(
        spec, store, recorder=recorder, max_workers=args.max_workers
    )

    def on_cell(progress) -> None:
        print(
            f"cells {progress.done}/{progress.total} "
            f"(executed {progress.executed}, skipped {progress.skipped})",
            file=sys.stderr,
        )
        sys.stderr.flush()

    try:
        runner.run(on_cell=on_cell)
        markdown = runner.write_report()
    finally:
        if recorder is not None:
            if args.metrics_out:
                with open(args.metrics_out, "w") as handle:
                    handle.write(recorder.metrics.render_text())
            recorder.close()
    print(markdown, end="")
    print(f"report         -> {store.report_md_path}", file=sys.stderr)
    print(f"report (json)  -> {store.report_json_path}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.sweep_command == "run":
        return _sweep_execute(args, _sweep_spec_from_args(args))
    if args.sweep_command == "resume":
        from .lab import CellStore

        return _sweep_execute(args, CellStore(args.out).load_spec())
    if args.sweep_command == "report":
        from .lab import CellStore, StudyRunner

        store = CellStore(args.out)
        runner = StudyRunner(store.load_spec(), store)
        print(runner.write_report(), end="")
        return 0
    if args.sweep_command == "submit":
        return _cmd_sweep_submit(args)
    if args.sweep_command == "status":
        return _cmd_sweep_status(args)
    raise ValueError(f"unknown sweep command {args.sweep_command!r}")


def _study_line(record: dict) -> str:
    done = f"{record['cells_done']}/{record['cells_total']}"
    winner = record.get("winner") or "-"
    return (
        f"{record['id']}  {record['status']:<10} "
        f"{record['name']:<22} cells={done:<9} winner={winner}"
    )


def _cmd_sweep_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    if (args.study is None) == (args.spec is None):
        raise ValueError("provide exactly one of --study or --spec")
    if args.study is not None and args.seeds is None:
        payload: dict = {"study": args.study}
    else:
        # Spec files and seed-overridden built-ins resolve client-side,
        # so the daemon runs exactly what was asked for.
        payload = {"spec": _sweep_spec_from_args(args).to_dict()}
    if args.max_workers is not None:
        payload["max_workers"] = args.max_workers
    client = ServiceClient(args.url)
    record = client.submit_study(payload)
    print(record["id"])
    print(
        f"submitted study {record['id']} ({record['name']}, "
        f"{record['cells_total']} cells) to {args.url}",
        file=sys.stderr,
    )
    if not args.wait:
        return 0

    def on_update(update: dict) -> None:
        print(_study_line(update), file=sys.stderr)
        sys.stderr.flush()

    final = client.watch_study(
        record["id"], poll_seconds=args.poll, on_update=on_update
    )
    if final["status"] != "completed":
        print(f"error: {final.get('error')}", file=sys.stderr)
        return EXIT_EXPERIMENT_NOT_COMPLETED
    print(client.study_report(record["id"]), end="")
    return 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.id is not None:
        print(json.dumps(client.get_study(args.id), indent=2))
        return 0
    records = client.list_studies()
    if not records:
        print("no studies")
        return 0
    for record in records:
        print(_study_line(record))
    return 0


# ------------------------------------------------------------------ service


def _submission_from_args(args: argparse.Namespace):
    from .service.submission import Submission

    return Submission(
        workload=args.workload,
        policy=args.policy,
        generator=args.generator,
        machines=args.machines,
        configs=args.configs,
        seed=args.seed,
        gen_seed=args.gen_seed,
        target=args.target,
        tmax_hours=args.tmax_hours,
        stop_on_target=not args.no_stop_on_target,
        live=args.live,
        time_scale=args.time_scale,
        checkpoint_every=getattr(args, "checkpoint_every", 25),
        predict_workers=args.predict_workers,
        tenant=getattr(args, "tenant", "default"),
        priority=getattr(args, "priority", 0),
        deadline_hours=getattr(args, "deadline_hours", None),
        budget_slot_hours=getattr(args, "budget_slot_hours", None),
    )


def _record_line(record: dict) -> str:
    checkpoint = record.get("checkpoint") or {}
    epochs = checkpoint.get("epochs_trained", 0)
    best = checkpoint.get("best_metric")
    result = record.get("result")
    if result is not None:
        epochs = result.get("epochs_trained", epochs)
        best = result.get("best_metric", best)
    best_text = "n/a" if best is None else f"{best:.4f}"
    return (
        f"{record['id']}  {record['status']:<11} "
        f"{record['submission']['workload']:<12} "
        f"{record['submission']['policy']:<10} "
        f"epochs={epochs:<6} best={best_text}"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.daemon import ExperimentService

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.cluster_workers is not None and args.cluster_workers < 1:
        print("error: --cluster-workers must be >= 1", file=sys.stderr)
        return 2
    if args.slots is not None and args.slots < 1:
        print("error: --slots must be >= 1", file=sys.stderr)
        return 2
    try:
        autoscale = _parse_autoscale(args.autoscale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not 0.0 <= args.spot_fraction <= 1.0:
        print("error: --spot-fraction must be in [0, 1]", file=sys.stderr)
        return 2
    service = ExperimentService(
        root=args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        resume_interrupted=args.resume_interrupted,
        cluster_workers=args.cluster_workers,
        slots=args.slots,
        tenant_quotas=args.tenant_quotas,
        max_queue_depth=args.max_queue_depth,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        autoscale=autoscale,
        spot_fraction=args.spot_fraction,
        spot_rate=args.spot_rate,
    )
    service.start()
    service.install_signal_handlers()
    print(f"experiment service listening on {service.url}")
    print(f"run store       : {args.root}")
    print(f"workers         : {args.workers}")
    if args.cluster_workers:
        print(f"cluster workers : {args.cluster_workers} processes per "
              "live run")
    slots_text = "unlimited" if args.slots is None else str(args.slots)
    print(f"broker slots    : {slots_text}")
    if autoscale is not None:
        print(f"autoscale       : {autoscale[0]}:{autoscale[1]} workers "
              "per fleet (broker pool elastic)")
    if args.spot_fraction:
        print(f"spot fraction   : {args.spot_fraction:g} "
              f"(rate {args.spot_rate:g} $/h)")
    if args.tenant_quotas:
        print(f"tenant quotas   : {args.tenant_quotas}")
    if args.rate_limit:
        print(f"rate limit      : {args.rate_limit:g}/min per tenant")
    print("endpoints       : POST /experiments · GET /experiments[/{id}"
          "[/events]] · DELETE /experiments/{id} · GET /broker "
          "· GET /fleet · POST /fleet/revoke · GET /metrics")
    sys.stdout.flush()
    service.serve_until_interrupted()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    client = ServiceClient(args.url)
    record = client.submit(_submission_from_args(args).to_dict())
    # Bare id on stdout so scripts can capture it; context to stderr.
    print(record["id"])
    print(f"submitted {record['id']} ({record['status']}) to {args.url}",
          file=sys.stderr)
    if not args.wait:
        return 0
    final = client.watch(record["id"], poll_seconds=args.poll)
    print(_record_line(final), file=sys.stderr)
    return 0 if final["status"] == "completed" else EXIT_EXPERIMENT_NOT_COMPLETED


def _cmd_status(args: argparse.Namespace) -> int:
    if (args.url is None) == (args.root is None):
        print("error: provide exactly one of --url or --root",
              file=sys.stderr)
        return 2
    if args.url is not None:
        from .service.client import ServiceClient

        client = ServiceClient(args.url)
        if args.id is not None:
            print(json.dumps(client.get(args.id), indent=2))
            return 0
        records = client.list_experiments()
    else:
        from .service.store import RunStore

        store = RunStore(args.root)
        if args.id is not None:
            record = store.get(args.id)
            if record is None:
                print(f"error: unknown experiment {args.id!r}",
                      file=sys.stderr)
                return EXIT_RUNTIME_ERROR
            print(json.dumps(record.to_dict(), indent=2))
            return 0
        records = [
            record.to_dict(include_result=False)
            for record in store.list_experiments()
        ]
    if not records:
        print("no experiments")
        return 0
    for record in records:
        print(_record_line(record))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    client = ServiceClient(args.url)

    def on_update(record: dict) -> None:
        print(_record_line(record))
        sys.stdout.flush()

    final = client.watch(
        args.id,
        poll_seconds=args.poll,
        timeout=args.timeout,
        on_update=on_update,
    )
    return 0 if final["status"] == "completed" else EXIT_EXPERIMENT_NOT_COMPLETED


def _cmd_resume(args: argparse.Namespace) -> int:
    from .service import executor
    from .service.store import COMPLETED, RunStore

    store = RunStore(args.root)
    recovered = store.recover_interrupted()
    if recovered:
        print(f"marked interrupted: {', '.join(recovered)}", file=sys.stderr)
    record = store.get(args.id)
    if record is None:
        print(f"error: unknown experiment {args.id!r}", file=sys.stderr)
        return EXIT_RUNTIME_ERROR
    checkpoint = record.checkpoint or {}
    print(
        f"resuming {args.id} from checkpoint at "
        f"{checkpoint.get('epochs_trained', 0)} epochs",
        file=sys.stderr,
    )
    final = executor.resume(store, args.id)
    print(_record_line(final.to_dict()))
    return 0 if final.status == COMPLETED else EXIT_EXPERIMENT_NOT_COMPLETED


def _cmd_broker_status(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    doc = ServiceClient(args.url).broker_status()
    if args.json:
        print(json.dumps(doc, indent=2))
        return 0
    pool = doc["pool"]
    total = pool["total_slots"]
    total_text = "unlimited" if total in (None, 0) else str(total)
    print(f"slot pool  : {pool['allocated']} allocated / {total_text}")
    tenants = doc.get("tenants") or {}
    for tenant in sorted(tenants):
        counts = tenants[tenant]
        print(f"tenant {tenant:<12} queued={counts['queued']} "
              f"running={counts['running']}")
    experiments = doc.get("experiments") or []
    if not experiments:
        print("no experiments hold leases")
        return 0
    for exp in experiments:
        deadline = exp.get("deadline_remaining_seconds")
        deadline_text = "-" if deadline is None else f"{deadline:.0f}s"
        print(
            f"{exp['exp_id']}  tenant={exp['tenant']:<10} "
            f"prio={exp['priority']:<3} held={exp['held']}/{exp['want']} "
            f"target={exp['target']} "
            f"spent={exp['spent_slot_hours']:.3f}sh "
            f"deadline={deadline_text}"
            + ("  PREEMPTED" if exp.get("preempted") else "")
        )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from .observability.top import render_top
    from .service.client import ServiceClient

    client = ServiceClient(args.url)
    while True:
        frame = render_top(client.telemetry(), url=args.url)
        if args.once:
            print(frame, end="")
            return 0
        # Clear + home, then the frame: a flicker-free poor-man's top.
        sys.stdout.write("\x1b[2J\x1b[H" + frame)
        sys.stdout.flush()
        _time.sleep(args.poll)


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .observability.diagnose import diagnose, load_journals, render_markdown

    report = diagnose(load_journals(args.journals))
    if args.json:
        from .observability.exporters import encode_event

        print(encode_event(report))
    else:
        print(render_markdown(report), end="")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.verbose:
        logging.basicConfig(level=logging.INFO, format="%(message)s")
    handlers = {
        "run": _cmd_run,
        "record-trace": _cmd_record_trace,
        "replay": _cmd_replay,
        "report": _cmd_report,
        "cluster-demo": _cmd_cluster_demo,
        "serve": _cmd_serve,
        "sweep": _cmd_sweep,
        "train-policy": _cmd_train_policy,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "watch": _cmd_watch,
        "resume": _cmd_resume,
        "broker-status": _cmd_broker_status,
        "top": _cmd_top,
        "diagnose": _cmd_diagnose,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        # Documented exit-code contract: runtime failures are reported
        # on stderr and exit 3 instead of dumping a traceback.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_RUNTIME_ERROR


if __name__ == "__main__":
    sys.exit(main())
