"""Trace generation and replay (§7.1's Trace Generator).

A :class:`Trace` captures, for every configuration in an experiment's
set, the full per-epoch ``(duration, metric)`` stream.  Replaying one
through :class:`TraceWorkload` makes experiments *exactly* repeatable
across policies — every policy sees byte-identical learning curves —
which is what the configuration-order sensitivity study (§7.2.2, Fig
12c) requires: the Trace Generator "can create traces by changing the
configuration orders".

Traces serialise to JSON so live-system recordings can be archived and
re-simulated later.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..workloads.base import DomainSpec, EpochResult, TrainingRun, Workload
from ..generators.space import SearchSpace

__all__ = ["Trace", "TraceWorkload", "record_trace"]


@dataclass(frozen=True)
class Trace:
    """A replayable workload recording.

    Attributes:
        configs: configuration dicts in experiment order.
        streams: per-configuration epoch streams; ``streams[i]`` is a
            list of ``(duration_seconds, metric)`` pairs covering every
            epoch up to the domain's maximum.
        domain: the domain spec the trace was recorded under.
    """

    configs: Tuple[Dict[str, Any], ...]
    streams: Tuple[Tuple[Tuple[float, float], ...], ...]
    domain: DomainSpec

    def __post_init__(self) -> None:
        if len(self.configs) != len(self.streams):
            raise ValueError("one stream per configuration required")
        for i, stream in enumerate(self.streams):
            if len(stream) != self.domain.max_epochs:
                raise ValueError(
                    f"stream {i} has {len(stream)} epochs, expected "
                    f"{self.domain.max_epochs}"
                )

    def __len__(self) -> int:
        return len(self.configs)

    def reorder(self, permutation: Sequence[int]) -> "Trace":
        """A new trace with configurations (and streams) permuted."""
        perm = list(permutation)
        if sorted(perm) != list(range(len(self))):
            raise ValueError("permutation must be a rearrangement of all indices")
        return Trace(
            configs=tuple(self.configs[i] for i in perm),
            streams=tuple(self.streams[i] for i in perm),
            domain=self.domain,
        )

    def shuffled(self, seed: int) -> "Trace":
        """A new trace with a seeded random configuration order."""
        rng = np.random.default_rng(seed)
        return self.reorder(rng.permutation(len(self)).tolist())

    def final_metrics(self) -> List[float]:
        """Final-epoch metric of every configuration (Fig 2a data)."""
        return [stream[-1][1] for stream in self.streams]

    # -------------------------------------------------------- persistence

    def save(self, path: Union[str, Path]) -> None:
        """Serialise the trace as JSON."""
        payload = {
            "domain": {
                "kind": self.domain.kind,
                "metric_name": self.domain.metric_name,
                "target": self.domain.target,
                "kill_threshold": self.domain.kill_threshold,
                "random_performance": self.domain.random_performance,
                "max_epochs": self.domain.max_epochs,
                "eval_boundary": self.domain.eval_boundary,
                "r_min": self.domain.r_min,
                "r_max": self.domain.r_max,
            },
            "configs": list(self.configs),
            "streams": [
                [[d, m] for d, m in stream] for stream in self.streams
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Load a trace saved by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        domain = DomainSpec(**payload["domain"])
        return cls(
            configs=tuple(payload["configs"]),
            streams=tuple(
                tuple((float(d), float(m)) for d, m in stream)
                for stream in payload["streams"]
            ),
            domain=domain,
        )


def record_trace(
    workload: Workload,
    configs: Sequence[Dict[str, Any]],
    seed: int = 0,
) -> Trace:
    """Record a full trace by training every configuration to its
    epoch budget offline (the §7.1 trace-collection step, with the
    simulator's workload standing in for the live cluster)."""
    streams: List[Tuple[Tuple[float, float], ...]] = []
    for config in configs:
        run = workload.create_run(config, seed=seed)
        stream = []
        while not run.finished:
            result = run.step()
            stream.append((result.duration, result.metric))
        streams.append(tuple(stream))
    return Trace(
        configs=tuple(dict(c) for c in configs),
        streams=tuple(streams),
        domain=workload.domain,
    )


class _TraceRun(TrainingRun):
    """Replays one configuration's recorded stream."""

    def __init__(
        self, config: Dict[str, Any], stream: Sequence[Tuple[float, float]]
    ) -> None:
        self._config = dict(config)
        self._stream = list(stream)
        self._epoch = 0

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self._config)

    @property
    def epochs_completed(self) -> int:
        return self._epoch

    @property
    def finished(self) -> bool:
        return self._epoch >= len(self._stream)

    def step(self) -> EpochResult:
        if self.finished:
            raise RuntimeError("trace replay already finished")
        duration, metric = self._stream[self._epoch]
        self._epoch += 1
        return EpochResult(
            epoch=self._epoch,
            duration=duration,
            metric=metric,
            done=self.finished,
        )

    def snapshot_state(self) -> Dict[str, Any]:
        return {"epoch": self._epoch}

    def restore_state(self, state: Dict[str, Any]) -> None:
        epoch = int(state["epoch"])
        if not 0 <= epoch <= len(self._stream):
            raise ValueError(f"snapshot epoch {epoch} out of range")
        self._epoch = epoch


class TraceWorkload(Workload):
    """A :class:`Workload` that replays a recorded :class:`Trace`.

    Configurations are matched by dict equality against the trace's
    configuration list, so ``run_simulation(..., configs=trace.configs)``
    replays the exact experiment.
    """

    def __init__(self, trace: Trace, space: Optional[SearchSpace] = None) -> None:
        self._trace = trace
        self._space = space

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def space(self) -> SearchSpace:
        if self._space is None:
            raise RuntimeError(
                "trace workloads replay fixed configs; no search space "
                "was attached"
            )
        return self._space

    @property
    def domain(self) -> DomainSpec:
        return self._trace.domain

    def create_run(self, config: Dict[str, Any], seed: int = 0) -> _TraceRun:
        for i, candidate in enumerate(self._trace.configs):
            if candidate == config:
                return _TraceRun(config, self._trace.streams[i])
        raise KeyError("configuration not present in the trace")
