"""Episodic scheduling environment for learned-policy training.

:class:`SchedulerEnv` wraps the simulator substrate — registry
workloads, hyperparameter generators, and the vectorized stream
fast path (:mod:`repro.sim.fastpath`) — as a gym-style episodic
environment:

* ``reset(gen_seed)`` mints a fresh configuration set from the
  generator under that seed and precomputes every configuration's
  observed stream (so an episode's dynamics are a pure function of
  ``(env config, gen_seed)`` — deterministic rollouts).
* The cluster is modelled **asynchronously**, mirroring the
  discrete-event scheduler: each ``step`` happens when a machine
  frees, and the action assigns one configuration (possibly the one
  that just freed — a CONTINUE) to that machine for one eval window
  (``domain.eval_boundary`` epochs), plus any kills.  Giving a window
  to configuration A therefore delays every other configuration *on
  that machine's timeline only* — the same exploration price the real
  scheduler charges — unlike a synchronous barrier, which underprices
  exploration and teaches policies that spread slots too thin.
* Observations are :func:`~repro.learn.features.feature_matrix` rows —
  the exact featurization the frozen SAP computes from live jobs, so
  there is no train/serve skew.
* The reward is terminal and mirrors the repo's headline metric:
  best normalized accuracy, plus the remaining-horizon fraction when
  the target is reached (reaching it *faster* is worth more).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..generators.base import ExhaustedSpaceError
from ..learn.features import ConfigStateArrays, feature_matrix
from .fastpath import ConfigStreams, precompute_streams

__all__ = ["EnvConfig", "SchedulerEnv"]


@dataclass(frozen=True)
class EnvConfig:
    """Static environment parameters (the workload/cluster shape)."""

    workload: str = "cifar10"
    generator: str = "random"
    num_configs: int = 16
    slots: int = 4
    tmax_hours: float = 8.0
    target: Optional[float] = None  # raw scale; None = domain default
    stream_seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "generator": self.generator,
            "num_configs": self.num_configs,
            "slots": self.slots,
            "tmax_hours": self.tmax_hours,
            "target": self.target,
            "stream_seed": self.stream_seed,
        }


@dataclass
class _EpisodeState:
    streams: ConfigStreams
    epochs: np.ndarray         # (n,) epochs completed (in-flight included)
    invested: np.ndarray       # (n,) training seconds spent
    alive: np.ndarray          # (n,) not killed
    running_until: np.ndarray  # (n,) completion time of in-flight window
    machine_free: np.ndarray   # (slots,) per-machine release time
    steps: int = 0
    target_reached: bool = False
    time_to_target: Optional[float] = None
    gen_seed: int = 0
    killed: List[int] = field(default_factory=list)


class SchedulerEnv:
    """Asynchronous window-granularity scheduling episodes.

    One action per machine release: the policy allocates a single
    configuration (``slots_per_step == 1``) to the freed machine and
    may kill others.  Configurations mid-window on other machines are
    not candidates — they are busy, exactly as running jobs are in the
    scheduler.
    """

    #: Configurations allocated per decision (one machine frees at a
    #: time in the async model).
    slots_per_step = 1

    def __init__(self, config: Optional[EnvConfig] = None) -> None:
        from ..registry import build_workload

        self.config = config or EnvConfig()
        # Workload construction (calibrator + reference grid) dominates;
        # build once and share across episodes.
        self.workload = build_workload(self.config.workload)
        self.domain = self.workload.domain
        self.window = int(self.domain.eval_boundary)
        self.tmax = float(self.config.tmax_hours) * 3600.0
        self.raw_target = (
            float(self.config.target)
            if self.config.target is not None
            else float(self.domain.target)
        )
        self.norm_target = float(self.domain.normalize(self.raw_target))
        self._state: Optional[_EpisodeState] = None

    @property
    def n_features(self) -> int:
        from ..learn.features import FEATURE_NAMES

        return len(FEATURE_NAMES)

    # ------------------------------------------------------------ episode

    def reset(self, gen_seed: int) -> np.ndarray:
        """Start an episode: mint configs under ``gen_seed``, return
        the initial observation matrix."""
        from ..registry import build_generator

        generator = build_generator(
            self.config.generator,
            self.workload,
            max_configs=self.config.num_configs,
            gen_seed=gen_seed,
        )
        configs: List[Dict[str, Any]] = []
        for _ in range(self.config.num_configs):
            try:
                _, config = generator.create_job()
            except ExhaustedSpaceError:
                break
            configs.append(config)
        if not configs:
            raise RuntimeError("generator produced no configurations")
        # The noise seed varies *with* the generator seed (offset by the
        # static stream_seed) so training sees a different training-noise
        # realization per configuration set — a policy trained on one
        # frozen noise draw overfits it and loses the generalization the
        # held-out study measures.  Dynamics stay a pure function of
        # (EnvConfig, gen_seed).
        streams = precompute_streams(
            self.workload, configs, seed=self.config.stream_seed + gen_seed
        )
        n = streams.n_configs
        self._state = _EpisodeState(
            streams=streams,
            epochs=np.zeros(n, dtype=int),
            invested=np.zeros(n),
            alive=np.ones(n, dtype=bool),
            running_until=np.zeros(n),
            machine_free=np.zeros(self.config.slots),
            gen_seed=gen_seed,
        )
        return self.observe()

    @property
    def now(self) -> float:
        """The next decision time: the earliest machine release."""
        state = self._require_state()
        return float(state.machine_free.min())

    def candidates(self) -> np.ndarray:
        """Indices assignable at the next machine release.

        Fast-forwards the freed machine past windows of time where
        every schedulable configuration is mid-window elsewhere (the
        machine idles until the next completion, as the real scheduler
        would leave it without idle jobs).
        """
        state = self._require_state()
        max_epochs = state.streams.max_epochs
        while True:
            t = state.machine_free.min()
            if t >= self.tmax or state.target_reached:
                return np.empty(0, dtype=int)
            schedulable = (
                state.alive
                & (state.epochs < max_epochs)
                & (state.running_until <= t)
            )
            ready = np.flatnonzero(schedulable)
            if ready.size:
                return ready
            busy = state.running_until[
                state.alive
                & (state.epochs < max_epochs)
                & (state.running_until > t)
            ]
            if busy.size == 0:
                return np.empty(0, dtype=int)
            # Idle this machine until the next in-flight completion.
            state.machine_free[int(np.argmin(state.machine_free))] = float(
                busy.min()
            )

    def state_arrays(self) -> ConfigStateArrays:
        state = self._require_state()
        streams = state.streams
        n = streams.n_configs
        last = np.zeros(n)
        prev = np.zeros(n)
        best = np.zeros(n)
        for index in range(n):
            k = int(state.epochs[index])
            if k == 0:
                continue
            last[index] = float(streams.normalized[index, k - 1])
            best[index] = float(streams.normalized[index, :k].max())
            if k > self.window:
                prev[index] = float(
                    streams.normalized[index, k - 1 - self.window]
                )
        return ConfigStateArrays(
            epochs=state.epochs.copy(),
            last=last,
            prev=prev,
            best=best,
            invested=state.invested.copy(),
            elapsed=float(state.machine_free.min()),
            tmax=self.tmax,
            slots=self.config.slots,
            window=self.window,
            max_epochs=streams.max_epochs,
            norm_target=self.norm_target,
        )

    def observe(self) -> np.ndarray:
        return feature_matrix(self.state_arrays())

    def step(
        self,
        slots: Sequence[int],
        kills: Sequence[int] = (),
    ) -> tuple:
        """Apply one scheduling decision at the next machine release.

        ``slots`` holds the configuration to run next on the freed
        machine (at most one in the async model).  Returns
        ``(observation, reward, done, info)``; the reward is 0 until
        the terminal step.
        """
        state = self._require_state()
        streams = state.streams

        for index in kills:
            if state.alive[index]:
                state.alive[index] = False
                state.killed.append(int(index))

        machine = int(np.argmin(state.machine_free))
        t = float(state.machine_free[machine])
        assigned = False
        for index in list(slots)[:1]:
            index = int(index)
            if not state.alive[index] or state.running_until[index] > t:
                continue
            start = int(state.epochs[index])
            advance = min(self.window, streams.max_epochs - start)
            if advance <= 0:
                continue
            chunk_durations = streams.durations[index, start:start + advance]
            chunk_metrics = streams.metrics[index, start:start + advance]
            spent = np.cumsum(chunk_durations)
            hits = np.flatnonzero(chunk_metrics >= self.raw_target)
            if hits.size:
                candidate_time = t + float(spent[hits[0]])
                if candidate_time <= self.tmax and (
                    state.time_to_target is None
                    or candidate_time < state.time_to_target
                ):
                    state.time_to_target = candidate_time
            total = float(spent[-1])
            state.invested[index] += total
            state.epochs[index] = start + advance
            state.running_until[index] = t + total
            state.machine_free[machine] = t + total
            assigned = True
        if not assigned:
            # No (valid) assignment: the machine idles to the next event.
            busy = state.running_until[state.running_until > t]
            state.machine_free[machine] = (
                float(busy.min()) if busy.size else self.tmax
            )
        state.steps += 1

        elapsed = float(state.machine_free.min())
        if (
            state.time_to_target is not None
            and elapsed >= state.time_to_target
        ):
            state.target_reached = True

        done = (
            state.target_reached
            or elapsed >= self.tmax
            or self.candidates().size == 0
        )
        if done and state.time_to_target is not None:
            state.target_reached = True
        reward = self._terminal_reward(state) if done else 0.0
        info = {
            "elapsed": elapsed,
            "steps": state.steps,
            "best_norm": self._best_norm(state),
            "target_reached": state.target_reached,
            "time_to_target": state.time_to_target,
            "gen_seed": state.gen_seed,
            "killed": list(state.killed),
        }
        return self.observe(), reward, done, info

    # ------------------------------------------------------------ helpers

    def _best_norm(self, state: _EpisodeState) -> float:
        best = 0.0
        for index in range(state.streams.n_configs):
            k = int(state.epochs[index])
            if k:
                best = max(
                    best, float(state.streams.normalized[index, :k].max())
                )
        return best

    def _terminal_reward(self, state: _EpisodeState) -> float:
        """Best accuracy per unit time: the best normalized metric,
        plus the unspent-horizon fraction when the target was hit."""
        reward = self._best_norm(state)
        if state.target_reached and state.time_to_target is not None:
            reward += max(0.0, 1.0 - state.time_to_target / self.tmax)
        return reward

    def _require_state(self) -> _EpisodeState:
        if self._state is None:
            raise RuntimeError("call reset() before stepping the env")
        return self._state
