"""Run HyperDrive experiments under simulated time.

``run_simulation`` is the workhorse behind every sensitivity study and
most benches: it wires a :class:`HyperDriveScheduler` to the
:class:`SimulationEngine`, mints jobs from a Hyperparameter Generator
(or an explicit configuration list, for order-sensitivity studies),
and drives the experiment to completion.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from ..curves.predictor import CurvePredictor, LeastSquaresCurvePredictor
from ..framework.experiment import ExperimentResult, ExperimentSpec
from ..framework.scheduler import (
    FollowUpAction,
    HyperDriveScheduler,
)
from ..generators.base import ExhaustedSpaceError, HyperparameterGenerator
from ..policies.base import SchedulingPolicy
from ..workloads.base import EpochResult, Workload
from .engine import SimulationEngine

__all__ = ["run_simulation", "default_predictor"]


def default_predictor() -> CurvePredictor:
    """The predictor configuration used by simulation benches.

    The fast least-squares ensemble over the seven cheapest curve
    families: the paper itself traded MCMC fidelity for speed (§5.2);
    see the MCMC-budget ablation bench for the comparison.
    """
    return LeastSquaresCurvePredictor(
        n_sample_curves=100,
        restarts=2,
        model_names=LeastSquaresCurvePredictor.FAST_MODEL_SUBSET,
        max_nfev=60,
    )


def run_simulation(
    workload: Workload,
    policy: SchedulingPolicy,
    generator: Optional[HyperparameterGenerator] = None,
    spec: Optional[ExperimentSpec] = None,
    predictor: Optional[CurvePredictor] = None,
    configs: Optional[Sequence[Dict[str, Any]]] = None,
    recorder=None,
    stop_check: Optional[Callable[[], bool]] = None,
    progress_hook: Optional[Callable[[HyperDriveScheduler], None]] = None,
    progress_every_epochs: int = 50,
    setup_hook: Optional[Callable[[HyperDriveScheduler], None]] = None,
) -> ExperimentResult:
    """Simulate one hyperparameter-exploration experiment.

    Args:
        workload: the training problem.
        policy: the SAP under test.
        generator: HG minting configurations; required unless
            ``configs`` is given.
        spec: experiment parameters (machines, Tmax, target, ...).
        predictor: learning-curve predictor for policies that use one.
        configs: explicit configuration list (bypasses the generator;
            used for configuration-order sensitivity, §7.2.2).
        recorder: observability facade
            (:class:`~repro.observability.Recorder`); None disables
            instrumentation at zero cost.
        stop_check: external cancellation probe, polled between events;
            returning True ends the run early with a partial result
            (the experiment service's cancel endpoint rides on this).
        progress_hook: called with the scheduler roughly every
            ``progress_every_epochs`` trained epochs (service
            checkpointing); None disables the bookkeeping.
        progress_every_epochs: epoch granularity of ``progress_hook``.
        setup_hook: called once with the fully built scheduler before
            ``begin`` — the broker shrinks the machine pool to its
            granted slot leases here, before any job starts.

    Returns:
        The finalised :class:`ExperimentResult`.
    """
    if spec is None:
        spec = ExperimentSpec()
    if (generator is None) == (configs is None):
        raise ValueError("provide exactly one of generator or configs")

    engine = SimulationEngine(recorder=recorder)
    scheduler = HyperDriveScheduler(
        workload=workload,
        policy=policy,
        spec=spec,
        clock=lambda: engine.now,
        predictor=predictor if predictor is not None else default_predictor(),
        recorder=recorder,
    )

    if configs is not None:
        for index, config in enumerate(configs):
            scheduler.add_job(f"job-{index:04d}", config)
    else:
        assert generator is not None
        for _ in range(spec.num_configs):
            try:
                job_id, config = generator.create_job()
            except ExhaustedSpaceError:
                break
            scheduler.add_job(job_id, config)

    generations: Dict[str, int] = {
        machine_id: 0 for machine_id in scheduler.resource_manager.machine_ids
    }
    if spec.machine_mtbf is not None:
        _arm_failures(scheduler, engine, generations, spec)

    if progress_every_epochs < 1:
        raise ValueError("progress_every_epochs must be >= 1")
    last_progress = 0

    def _stop_when() -> bool:
        # Stop on target, and also once no job is live — otherwise
        # perpetual fault-injection events would idle the clock out to
        # Tmax after the real work has finished.
        nonlocal last_progress
        if (
            progress_hook is not None
            and scheduler.result.epochs_trained - last_progress
            >= progress_every_epochs
        ):
            last_progress = scheduler.result.epochs_trained
            progress_hook(scheduler)
            # A hook may resize the pool (broker sync): jobs started on
            # regrown machines need their first epoch scheduled.
            _schedule_started_machines(scheduler, engine, generations)
        if scheduler.done or not scheduler.job_manager.active_jobs():
            return True
        return stop_check is not None and stop_check()

    try:
        if setup_hook is not None:
            setup_hook(scheduler)
        scheduler.begin()
        _schedule_started_machines(scheduler, engine, generations)
        engine.run(until=spec.tmax, stop_when=_stop_when)
        return scheduler.finalize()
    finally:
        # finalize() already closes scheduler-owned resources; this
        # covers exception exits so prediction workers never leak.
        scheduler.close()


def _arm_failures(
    scheduler: HyperDriveScheduler,
    engine: SimulationEngine,
    generations: Dict[str, int],
    spec: ExperimentSpec,
) -> None:
    """Schedule exponential machine failures and recoveries.

    Bumping a machine's generation invalidates its in-flight epoch and
    release events, modelling the work a crash destroys mid-epoch.
    """
    rng = np.random.default_rng(spec.seed + 987654)

    def schedule_next(machine_id: str) -> None:
        delay = float(rng.exponential(spec.machine_mtbf))
        engine.schedule(delay, lambda: fail(machine_id))

    def fail(machine_id: str) -> None:
        if scheduler.done:
            return
        generations[machine_id] += 1
        scheduler.machine_failed(machine_id)
        # A job freed by the failure may be resumable elsewhere now.
        scheduler.policy.allocate_jobs()
        _schedule_started_machines(scheduler, engine, generations)
        engine.schedule(
            spec.machine_recovery_seconds, lambda: recover(machine_id)
        )

    def recover(machine_id: str) -> None:
        if scheduler.done:
            return
        scheduler.machine_recovered(machine_id)
        _schedule_started_machines(scheduler, engine, generations)
        schedule_next(machine_id)

    for machine_id in generations:
        schedule_next(machine_id)


def _schedule_started_machines(
    scheduler: HyperDriveScheduler,
    engine: SimulationEngine,
    generations: Optional[Dict[str, int]] = None,
) -> None:
    for machine_id in scheduler.take_started_machines():
        _begin_epoch(
            scheduler, engine, machine_id, generations,
            extra_delay=0.0, scale=1.0,
        )


def _generation(generations: Optional[Dict[str, int]], machine_id: str) -> int:
    return 0 if generations is None else generations.get(machine_id, 0)


def _begin_epoch(
    scheduler: HyperDriveScheduler,
    engine: SimulationEngine,
    machine_id: str,
    generations: Optional[Dict[str, int]],
    extra_delay: float,
    scale: float,
) -> None:
    """Advance the hosted run one epoch and schedule its completion.

    The completion event carries the machine's current generation; if
    the machine fails meanwhile (generation bump), the stale event is
    dropped — the crash destroyed that epoch's work.
    """
    agent = scheduler.agents[machine_id]
    raw = agent.train_epoch()
    # Contention from an overlapped prediction stretches the epoch; a
    # blocking prediction holds the machine before it starts; faster
    # machines (heterogeneous clusters) shrink it.
    result = EpochResult(
        epoch=raw.epoch,
        duration=raw.duration * scale / scheduler.machine_speed(machine_id),
        metric=raw.metric,
        done=raw.done,
        extras=raw.extras,
    )
    generation = _generation(generations, machine_id)
    engine.schedule(
        extra_delay + result.duration,
        lambda: _finish_epoch(
            scheduler, engine, machine_id, generations, generation, result
        ),
    )


def _finish_epoch(
    scheduler: HyperDriveScheduler,
    engine: SimulationEngine,
    machine_id: str,
    generations: Optional[Dict[str, int]],
    generation: int,
    result: EpochResult,
) -> None:
    if generation != _generation(generations, machine_id):
        return  # the machine failed while this epoch was in flight
    followup = scheduler.process_epoch(machine_id, result)
    if followup.action is FollowUpAction.NEXT_EPOCH:
        _begin_epoch(
            scheduler,
            engine,
            machine_id,
            generations,
            extra_delay=followup.delay,
            scale=followup.epoch_scale,
        )
    elif followup.action is FollowUpAction.RELEASE_MACHINE:
        engine.schedule(
            followup.delay,
            lambda: _release_machine(
                scheduler, engine, machine_id, generations, generation
            ),
        )
    else:  # EXPERIMENT_DONE
        engine.stop()
    _schedule_started_machines(scheduler, engine, generations)


def _release_machine(
    scheduler: HyperDriveScheduler,
    engine: SimulationEngine,
    machine_id: str,
    generations: Optional[Dict[str, int]],
    generation: int,
) -> None:
    if generation != _generation(generations, machine_id):
        return  # the machine failed during the release window
    scheduler.machine_released(machine_id)
    _schedule_started_machines(scheduler, engine, generations)
