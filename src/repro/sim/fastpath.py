"""Vectorized simulation fast path: batch stream precompute + replay.

The discrete-event simulator is the inner loop of every lab study and
the training substrate of the learned scheduler, so its throughput
bounds everything comparative this repo does.  The scalar path pays
for two things per epoch: a Python-level ``TrainingRun.step`` (two
scalar RNG draws, clipping, float boxing) and, on every job
(re)creation, a calibrator lookup plus curve synthesis.  But for the
synthetic workloads the *entire observed stream* of a configuration is
a pure function of ``(configuration content, experiment seed)`` —
scheduling decides only which prefix of the stream is revealed.  That
is the fast path's contract:

* :func:`precompute_streams` materialises every configuration's full
  ``(durations, metrics)`` stream up front — vectorized over epochs via
  the workloads' ``observed_stream`` hook, byte-identical to stepping
  the scalar run epoch by epoch (the hook draws the same RNG stream in
  one batched call).  Each configuration's stream is derived from its
  own content-keyed seed (:func:`~repro.workloads.calibration.stable_config_seed`),
  never from a shared draw-order-coupled generator, so reordering or
  subsetting the configuration list leaves every stream unchanged.
* :class:`FastBatchWorkload` replays precomputed streams through the
  **unchanged** scheduler/engine — exact result parity with the scalar
  workload, minus the per-epoch synthesis cost.  This is the drop-in
  accelerator for predictor-using policies (POP et al.).
* :func:`simulate_default_fast` evaluates the Default SAP (FIFO,
  run-to-completion, no kills — §4.2's baseline) without any event
  loop at all: per-machine queue simulation over cumulative-duration
  arrays.  Exactly equivalent to the DES by construction (same start
  order, same epoch finish times), orders of magnitude faster.

``BENCH_sim.json`` (written by ``benchmarks/test_perf_sim.py``) gates
the speedups machine-relatively, like the prediction-engine bench.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.stats import minmax_normalize
from ..workloads.base import DomainSpec, EpochResult, TrainingRun, Workload

__all__ = [
    "ConfigStreams",
    "FastBatchWorkload",
    "config_key",
    "precompute_streams",
    "simulate_default_fast",
]


def config_key(config: Dict[str, Any]) -> str:
    """Stable content key for a configuration (matches the encoding
    behind :func:`~repro.workloads.calibration.stable_config_seed`)."""
    return repr(sorted((k, repr(v)) for k, v in config.items()))


def _normalize_array(domain: DomainSpec, values: np.ndarray) -> np.ndarray:
    if not domain.normalizes:
        return np.clip(values, 0.0, 1.0)
    return minmax_normalize(values, domain.r_min, domain.r_max)


@dataclass
class ConfigStreams:
    """Precomputed observed streams for one configuration set.

    Row ``i`` holds configuration ``i``'s full stream: per-epoch
    durations (seconds) and raw observed metrics for epochs
    ``1..max_epochs``, plus the normalized view policies reason in.
    """

    configs: List[Dict[str, Any]]
    durations: np.ndarray  # (n, max_epochs) seconds
    metrics: np.ndarray    # (n, max_epochs) raw metric scale
    normalized: np.ndarray  # (n, max_epochs) in [0, 1]
    domain: DomainSpec
    seed: int

    @property
    def n_configs(self) -> int:
        return len(self.configs)

    @property
    def max_epochs(self) -> int:
        return int(self.durations.shape[1])

    def reordered(self, order: Sequence[int]) -> "ConfigStreams":
        """The same streams under a configuration permutation."""
        index = np.asarray(list(order), dtype=int)
        if sorted(index.tolist()) != list(range(self.n_configs)):
            raise ValueError("order must be a permutation of the configs")
        return ConfigStreams(
            configs=[self.configs[i] for i in index],
            durations=self.durations[index],
            metrics=self.metrics[index],
            normalized=self.normalized[index],
            domain=self.domain,
            seed=self.seed,
        )


def _scalar_stream(run: TrainingRun) -> Tuple[np.ndarray, np.ndarray]:
    """Fallback: step a run to completion (workloads without the
    vectorized ``observed_stream`` hook, e.g. real SGD training)."""
    durations: List[float] = []
    metrics: List[float] = []
    while not run.finished:
        result = run.step()
        durations.append(result.duration)
        metrics.append(result.metric)
    return np.asarray(durations), np.asarray(metrics)


def precompute_streams(
    workload: Workload,
    configs: Sequence[Dict[str, Any]],
    seed: int = 0,
) -> ConfigStreams:
    """Materialise every configuration's observed stream up front.

    Each stream comes from a fresh run seeded exactly as the scalar
    path seeds it — per (configuration content, ``seed``), so streams
    are mutually independent and invariant to list order.
    """
    durations: List[np.ndarray] = []
    metrics: List[np.ndarray] = []
    for config in configs:
        run = workload.create_run(config, seed=seed)
        stream = getattr(run, "observed_stream", None)
        if stream is not None:
            epoch_durations, epoch_metrics = stream()
        else:
            epoch_durations, epoch_metrics = _scalar_stream(run)
        durations.append(epoch_durations)
        metrics.append(epoch_metrics)
    duration_matrix = np.stack(durations) if durations else np.zeros((0, 0))
    metric_matrix = np.stack(metrics) if metrics else np.zeros((0, 0))
    return ConfigStreams(
        configs=[dict(config) for config in configs],
        durations=duration_matrix,
        metrics=metric_matrix,
        normalized=_normalize_array(workload.domain, metric_matrix),
        domain=workload.domain,
        seed=seed,
    )


class _ReplayRun(TrainingRun):
    """Replays one precomputed stream row epoch by epoch."""

    def __init__(
        self,
        config: Dict[str, Any],
        durations: np.ndarray,
        metrics: np.ndarray,
    ) -> None:
        self._config = dict(config)
        self._durations = durations
        self._metrics = metrics
        self._epoch = 0
        self._max_epochs = int(durations.shape[0])

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self._config)

    @property
    def epochs_completed(self) -> int:
        return self._epoch

    @property
    def finished(self) -> bool:
        return self._epoch >= self._max_epochs

    def step(self) -> EpochResult:
        if self.finished:
            raise RuntimeError("training run already finished")
        self._epoch += 1
        index = self._epoch - 1
        return EpochResult(
            epoch=self._epoch,
            duration=float(self._durations[index]),
            metric=float(self._metrics[index]),
            done=self.finished,
        )

    def snapshot_state(self) -> Dict[str, Any]:
        return {"epoch": self._epoch}

    def restore_state(self, state: Dict[str, Any]) -> None:
        epoch = int(state["epoch"])
        if not 0 <= epoch <= self._max_epochs:
            raise ValueError(f"snapshot epoch {epoch} out of range")
        self._epoch = epoch


class FastBatchWorkload(Workload):
    """A workload facade replaying precomputed streams.

    Built once per experiment from the real workload and the full
    configuration list; ``create_run`` then costs a dict lookup instead
    of calibrator + curve synthesis, and every epoch is an array read.
    Drives the **unchanged** scheduler with exact result parity.
    """

    def __init__(
        self,
        workload: Workload,
        configs: Sequence[Dict[str, Any]],
        seed: int = 0,
        streams: Optional[ConfigStreams] = None,
    ) -> None:
        self._base = workload
        self._streams = (
            streams
            if streams is not None
            else precompute_streams(workload, configs, seed=seed)
        )
        self._seed = self._streams.seed
        self._rows = {
            config_key(config): index
            for index, config in enumerate(self._streams.configs)
        }

    @property
    def streams(self) -> ConfigStreams:
        return self._streams

    @property
    def space(self):
        return self._base.space

    @property
    def domain(self) -> DomainSpec:
        return self._base.domain

    def create_run(self, config: Dict[str, Any], seed: int = 0) -> _ReplayRun:
        if seed != self._seed:
            raise ValueError(
                f"stream precomputed for seed {self._seed}, "
                f"run requested seed {seed}"
            )
        row = self._rows.get(config_key(config))
        if row is None:
            raise KeyError("configuration not in the precomputed set")
        return _ReplayRun(
            config,
            self._streams.durations[row],
            self._streams.metrics[row],
        )


def simulate_default_fast(
    streams: ConfigStreams,
    machines: int,
    tmax: float,
    target: Optional[float] = None,
    stop_on_target: bool = True,
) -> Dict[str, Any]:
    """Default-SAP experiment outcome without an event loop.

    The Default policy is FIFO run-to-completion with no kills and no
    suspends, so each machine just works through the configuration
    queue; with precomputed streams every epoch finish time is a
    cumulative sum.  Start order, epoch timestamps, the first
    target-crossing event, and the epochs-completed count all match the
    discrete-event simulator exactly (ties between simultaneous
    machine releases are measure-zero with continuous durations).

    Returns a dict with ``time_to_target``, ``reached_target``,
    ``best_metric``, ``epochs_trained``, and ``finished_at``.
    """
    if machines < 1:
        raise ValueError("machines must be >= 1")
    n = streams.n_configs
    raw_target = streams.domain.target if target is None else target
    cumulative = np.cumsum(streams.durations, axis=1)

    # FIFO queue over machines: job i starts when the (i mod m)-th
    # earliest machine release occurs.
    free: List[float] = [0.0] * machines
    heapq.heapify(free)
    start_times = np.empty(n)
    for index in range(n):
        released = heapq.heappop(free)
        start_times[index] = released
        heapq.heappush(free, released + float(cumulative[index, -1]))

    finish_times = start_times[:, None] + cumulative  # (n, E)

    # First target-crossing event that actually executes (<= tmax).
    hits = (streams.metrics >= raw_target) & (finish_times <= tmax)
    reached = bool(np.any(hits))
    time_to_target = float(finish_times[hits].min()) if reached else None

    horizon = (
        time_to_target if (reached and stop_on_target) else float(tmax)
    )
    completed = finish_times <= horizon
    epochs_trained = int(np.count_nonzero(completed))
    best_metric = (
        float(streams.metrics[completed].max()) if epochs_trained else None
    )
    finished_at = (
        float(finish_times[completed].max()) if epochs_trained else 0.0
    )
    return {
        "policy": "default",
        "reached_target": reached,
        "time_to_target": time_to_target if stop_on_target or reached else None,
        "best_metric": best_metric,
        "epochs_trained": epochs_trained,
        "finished_at": finished_at,
    }
