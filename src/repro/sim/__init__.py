"""Trace-driven discrete-event simulation (§7)."""

from .engine import SimulationEngine
from .runner import default_predictor, run_simulation
from .trace import Trace, TraceWorkload, record_trace

__all__ = [
    "SimulationEngine",
    "run_simulation",
    "default_predictor",
    "Trace",
    "TraceWorkload",
    "record_trace",
]
