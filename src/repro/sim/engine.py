"""Discrete-event simulation core (§7.1's Simulator Engine).

A minimal, deterministic event queue: callbacks scheduled at simulated
times, executed in (time, insertion-order) order.  Determinism matters
— the sensitivity studies compare policies on identical event
sequences, and the engine guarantees ties break by insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..observability import NULL_RECORDER

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """A simulated clock plus an ordered callback queue.

    Args:
        recorder: observability facade; when live, the engine counts
            dispatched events (``sim_events_total``) and tracks queue
            depth (``sim_queue_depth``) so run loops are inspectable.
    """

    def __init__(self, recorder=None) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._stopped = False
        recorder = recorder if recorder is not None else NULL_RECORDER
        # The event loop is the hottest path in every simulated bench;
        # when instrumentation is off, skip the two no-op metric calls
        # per event instead of paying their dispatch cost.
        self._instrumented = bool(getattr(recorder, "enabled", False))
        self._m_events = recorder.metrics.counter(
            "sim_events_total", help="Simulator callbacks dispatched"
        )
        self._m_queue_depth = recorder.metrics.gauge(
            "sim_queue_depth", help="Pending events in the simulator heap"
        )

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds.

        Raises:
            ValueError: on negative delays — time travel in the event
                queue silently corrupts causality, so it is rejected.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._sequence), callback)
        )

    def stop(self) -> None:
        """Abort the run loop after the current callback returns."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events until the queue drains, ``until`` passes, or
        ``stop_when`` turns true.

        Args:
            until: simulated-time horizon; events after it stay queued.
            stop_when: checked before each event.

        Returns:
            The simulated time when the loop ended.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            if stop_when is not None and stop_when():
                break
            event_time, _, callback = self._heap[0]
            if until is not None and event_time > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            self._now = event_time
            if self._instrumented:
                self._m_events.inc()
                self._m_queue_depth.set(len(self._heap))
            callback()
        return self._now
