"""Live threaded runtime: real concurrency, scaled wall-clock time.

The paper validates its discrete-event simulator against live cluster
runs (Fig. 12a, max error 13%).  This module is the "live" side of that
comparison in our single-machine world: every machine is a real thread,
Node Agents genuinely execute training runs (for the MLP workload that
means real SGD), epoch durations elapse as scaled wall-clock sleeps,
and all coordination goes through the shared scheduler under a lock —
so thread-scheduling jitter, lock contention, and message timing
perturb the experiment exactly the way network/OS jitter perturbs the
paper's live runs.

``time_scale`` maps simulated seconds to wall seconds (default 1 ms per
simulated second, so a 4-hour experiment replays in ~14 s).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Optional, Sequence

from ..curves.engine import ParallelPredictionService, unwrap_service
from ..curves.predictor import CurvePredictor
from ..framework.experiment import ExperimentResult, ExperimentSpec
from ..framework.scheduler import FollowUpAction, HyperDriveScheduler
from ..framework.transport import MessageBus
from ..generators.base import ExhaustedSpaceError, HyperparameterGenerator
from ..observability import NULL_RECORDER
from ..policies.base import SchedulingPolicy
from ..workloads.base import EpochResult, Workload
from ..sim.runner import default_predictor

__all__ = ["run_live"]

_START = "start"
_STOP = "stop"


class _UnlockedPredictor(CurvePredictor):
    """Releases the scheduler lock while a prediction computes.

    This is §5.2's distributed-prediction optimisation in threaded
    form: predictions run on the Node Agent (the machine thread that
    asked for them), overlapped with everything else, instead of
    serialising the whole cluster behind the central scheduler.
    Without it, every machine stalls for every prediction and the live
    runtime drifts far from the simulator.
    """

    def __init__(self, inner: CurvePredictor, lock) -> None:
        self._inner = inner
        self._lock = lock

    @property
    def inner(self) -> CurvePredictor:
        """Wrapped predictor (lets ``unwrap_service`` walk the chain)."""
        return self._inner

    def min_observations(self) -> int:
        return self._inner.min_observations()

    def predict(self, observed, n_future):
        self._lock.release()
        try:
            return self._inner.predict(observed, n_future)
        finally:
            self._lock.acquire()


class _LiveExperiment:
    """One live run: worker threads + shared scheduler."""

    def __init__(
        self,
        workload: Workload,
        policy: SchedulingPolicy,
        spec: ExperimentSpec,
        predictor: CurvePredictor,
        time_scale: float,
        recorder=None,
        cancel_event: Optional[threading.Event] = None,
        progress_hook: Optional[Callable] = None,
        progress_every_epochs: int = 50,
        setup_hook: Optional[Callable] = None,
    ) -> None:
        self.spec = spec
        self.time_scale = time_scale
        self.cancel_event = cancel_event
        self.progress_hook = progress_hook
        self.progress_every_epochs = progress_every_epochs
        self.setup_hook = setup_hook
        self._t0 = time.monotonic()
        self.lock = threading.Lock()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        # Lock contention is the live runtime's analogue of the paper's
        # central-scheduler serialisation (§5.2): measurable when
        # observability is on.
        self._m_lock_wait = self.recorder.metrics.histogram(
            "runtime_lock_wait_seconds",
            help="Wall seconds worker threads waited on the scheduler lock",
        )
        # The prediction pool must wrap the *raw* predictor (the
        # lock-releasing decorator is not picklable) and must be built
        # here, before any worker thread exists: the pool forks, and
        # forking a multi-threaded process is unsafe.
        self._prediction_service: Optional[ParallelPredictionService] = None
        if spec.predict_workers > 1 and unwrap_service(predictor) is None:
            service_recorder = self.recorder if self.recorder.enabled else None
            predictor = ParallelPredictionService(
                predictor,
                workers=spec.predict_workers,
                cache_size=spec.predict_cache_size,
                recorder=service_recorder,
            )
            self._prediction_service = predictor
        self.scheduler = HyperDriveScheduler(
            workload=workload,
            policy=policy,
            spec=spec,
            clock=self._clock,
            predictor=_UnlockedPredictor(predictor, self.lock),
            recorder=recorder,
        )
        self.bus = MessageBus()
        # Declared before any producer exists: the scheduler may start
        # jobs (and send to these topics) before the worker threads
        # subscribe, and delivery is strict.
        self._mailboxes = {
            machine_id: self.bus.declare_topic(machine_id)
            for machine_id in self.scheduler.resource_manager.machine_ids
        }
        self.stop_event = threading.Event()
        self._threads = []

    def _clock(self) -> float:
        """Experiment time: scaled wall-clock since start."""
        return (time.monotonic() - self._t0) / self.time_scale

    def _sleep(self, simulated_seconds: float) -> None:
        # Event.wait instead of time.sleep so a stop/cancel mid-epoch
        # wakes the worker immediately instead of after the full
        # (scaled) epoch duration.
        self.stop_event.wait(max(simulated_seconds, 0.0) * self.time_scale)

    @contextmanager
    def _locked(self):
        """Acquire the scheduler lock, recording the wait when
        observability is on."""
        if self.recorder.enabled:
            waited = time.perf_counter()
            self.lock.acquire()
            self._m_lock_wait.observe(time.perf_counter() - waited)
        else:
            self.lock.acquire()
        try:
            yield
        finally:
            self.lock.release()

    # ------------------------------------------------------------ workers

    def _notify_started(self, started: Sequence[str]) -> None:
        for machine_id in started:
            self.bus.send(machine_id, _START, None, sender="scheduler")

    def _worker(self, machine_id: str) -> None:
        mailbox = self._mailboxes[machine_id]
        while not self.stop_event.is_set():
            message = mailbox.get(timeout=0.02)
            if message is None:
                continue
            if message.kind == _STOP:
                return
            self._run_assignment(machine_id)

    def _run_assignment(self, machine_id: str) -> None:
        """Drive the hosted job epoch by epoch until it leaves this
        machine (suspend/terminate/complete) or the experiment ends."""
        agent = self.scheduler.agents[machine_id]
        extra_delay, scale = 0.0, 1.0
        while not self.stop_event.is_set():
            # Training executes outside the lock: the agent is owned by
            # this thread while the job is assigned here.
            if agent.run is None:
                return
            raw = agent.train_epoch()
            result = EpochResult(
                epoch=raw.epoch,
                duration=raw.duration
                * scale
                / self.scheduler.machine_speed(machine_id),
                metric=raw.metric,
                done=raw.done,
                extras=raw.extras,
            )
            self._sleep(extra_delay + result.duration)
            if self.stop_event.is_set():
                # Stopped/cancelled mid-epoch: the epoch never finished,
                # so its result must not be recorded.
                return
            with self._locked():
                followup = self.scheduler.process_epoch(machine_id, result)
                started = self.scheduler.take_started_machines()
            self._notify_started(started)

            if followup.action is FollowUpAction.NEXT_EPOCH:
                extra_delay, scale = followup.delay, followup.epoch_scale
                continue
            if followup.action is FollowUpAction.RELEASE_MACHINE:
                self._sleep(followup.delay)
                if self.stop_event.is_set():
                    return
                with self._locked():
                    self.scheduler.machine_released(machine_id)
                    started = self.scheduler.take_started_machines()
                self._notify_started(started)
                return
            # EXPERIMENT_DONE
            self.stop_event.set()
            return

    # --------------------------------------------------------------- run

    def run(self) -> ExperimentResult:
        with self.lock:
            if self.setup_hook is not None:
                self.setup_hook(self.scheduler)
            self.scheduler.begin()
            started = self.scheduler.take_started_machines()
        for machine_id in self.scheduler.resource_manager.machine_ids:
            thread = threading.Thread(
                target=self._worker,
                args=(machine_id,),
                name=f"live-worker-{machine_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._notify_started(started)

        try:
            self._monitor()
        except BaseException:
            # KeyboardInterrupt (or any monitor failure) must not
            # abandon the workers silently: stop them best-effort, then
            # let the original exception propagate.
            self._shutdown(strict=False)
            self._close_prediction_service()
            raise
        self._shutdown(strict=True)
        # Workers have joined, so no prediction can be in flight; the
        # pool processes must not outlive the experiment.
        self._close_prediction_service()
        with self.lock:
            return self.scheduler.finalize()

    def _close_prediction_service(self) -> None:
        if self._prediction_service is not None:
            self._prediction_service.close()
            self._prediction_service = None

    def _monitor(self) -> None:
        """Wait for completion, cancellation, or the Tmax deadline,
        emitting progress checkpoints along the way."""
        deadline = time.monotonic() + self.spec.tmax * self.time_scale + 30.0
        last_progress = 0
        while not self.stop_event.is_set() and time.monotonic() < deadline:
            time.sleep(0.02)
            if self.cancel_event is not None and self.cancel_event.is_set():
                return
            if self.recorder.enabled:
                self.bus.export_metrics(self.recorder.metrics)
            with self.lock:
                quiescent = (
                    self.scheduler.resource_manager.num_busy == 0
                    and self.scheduler.job_manager.num_idle == 0
                )
                epochs = self.scheduler.result.epochs_trained
                started: Sequence[str] = ()
                if (
                    self.progress_hook is not None
                    and epochs - last_progress >= self.progress_every_epochs
                ):
                    last_progress = epochs
                    self.progress_hook(self.scheduler)
                    # A hook may resize the pool (broker sync): jobs
                    # started on regrown machines need their wake-up.
                    started = self.scheduler.take_started_machines()
            self._notify_started(started)
            if quiescent:
                return

    def _shutdown(self, strict: bool) -> None:
        """Stop all workers; with ``strict`` raise if any fail to stop.

        The daemon's cancel endpoint relies on this path being
        reliable: a worker that outlives the join window means the
        scheduler may still mutate after finalize, so that is an error
        rather than a silent leak.
        """
        self.stop_event.set()
        for machine_id in self._mailboxes:
            self.bus.send(machine_id, _STOP, None, sender="scheduler")
        for thread in self._threads:
            thread.join(timeout=5.0)
        stuck = [thread.name for thread in self._threads if thread.is_alive()]
        if stuck and strict:
            raise RuntimeError(
                "live runtime workers failed to stop within 5s: "
                + ", ".join(stuck)
                + "; experiment state may be inconsistent"
            )


def run_live(
    workload: Workload,
    policy: SchedulingPolicy,
    generator: Optional[HyperparameterGenerator] = None,
    spec: Optional[ExperimentSpec] = None,
    predictor: Optional[CurvePredictor] = None,
    configs: Optional[Sequence[Dict[str, Any]]] = None,
    time_scale: float = 1e-3,
    recorder=None,
    cancel_event: Optional[threading.Event] = None,
    progress_hook: Optional[Callable] = None,
    progress_every_epochs: int = 50,
    setup_hook: Optional[Callable] = None,
) -> ExperimentResult:
    """Run one experiment on the live threaded runtime.

    Args:
        workload: the training problem.
        policy: the SAP under test.
        generator: HG minting configurations (or pass ``configs``).
        spec: experiment parameters.
        predictor: curve predictor; defaults to the bench predictor.
        configs: explicit configuration list.
        time_scale: wall seconds per simulated second.
        recorder: observability facade
            (:class:`~repro.observability.Recorder`); None disables
            instrumentation at zero cost.
        cancel_event: external cancellation signal; setting it stops
            the run promptly (in-flight epochs are discarded) and
            returns the partial result.
        progress_hook: called with the scheduler (under the lock)
            roughly every ``progress_every_epochs`` trained epochs.
        progress_every_epochs: epoch granularity of ``progress_hook``.
        setup_hook: called once with the scheduler (under the lock)
            before ``begin`` — the broker shrinks the machine pool to
            its granted slot leases here, before any job starts.

    Returns:
        The finalised :class:`ExperimentResult`, with timestamps on the
        simulated-seconds axis (comparable to ``run_simulation``).

    Raises:
        RuntimeError: a worker thread failed to stop during shutdown.
    """
    if spec is None:
        spec = ExperimentSpec()
    if (generator is None) == (configs is None):
        raise ValueError("provide exactly one of generator or configs")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    if progress_every_epochs < 1:
        raise ValueError("progress_every_epochs must be >= 1")

    experiment = _LiveExperiment(
        workload=workload,
        policy=policy,
        spec=spec,
        predictor=predictor if predictor is not None else default_predictor(),
        time_scale=time_scale,
        recorder=recorder,
        cancel_event=cancel_event,
        progress_hook=progress_hook,
        progress_every_epochs=progress_every_epochs,
        setup_hook=setup_hook,
    )
    if configs is not None:
        for index, config in enumerate(configs):
            experiment.scheduler.add_job(f"job-{index:04d}", config)
    else:
        assert generator is not None
        for _ in range(spec.num_configs):
            try:
                job_id, config = generator.create_job()
            except ExhaustedSpaceError:
                break
            experiment.scheduler.add_job(job_id, config)
    return experiment.run()
