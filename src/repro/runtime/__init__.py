"""Live threaded runtime (the simulator-validation counterpart)."""

from .local import run_live

__all__ = ["run_live"]
