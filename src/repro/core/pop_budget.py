"""Budget-aware POP: maximise expected best accuracy per dollar.

``POPBudgetPolicy`` is plain POP with three changes, all downstream of
one number — the machine-hour budget the experiment may spend:

1. **Spend tracking.**  Every ``application_stat`` charges the epoch's
   wall duration (at the on-demand slot rate) against the budget.  The
   charge is a pure function of the reported stats, so resumed or
   migrated experiments reconstruct the identical ledger from the
   journal replay.
2. **Affordable-slot clamp.**  The desired/deserved slot computation
   divides ``min(in_service, affordable)`` slots, where *affordable* is
   the parallelism the remaining budget can sustain for the remaining
   experiment time.  As money runs low the promising pool narrows, so
   the last dollars concentrate on the highest-confidence configs
   instead of being spread across the opportunistic pool.
3. **Value-per-dollar priorities.**  Promising jobs are labelled with
   ``p / expected remaining cost`` instead of raw ``p``: between two
   similarly confident configs, the one expected to finish cheaper
   trains first.

When the spend crosses the budget the policy stops the experiment via
``ctx.stop_experiment`` (one audit record, one stop).  The budget
arrives either explicitly — ``configure_budget`` is called by the
service executor with the submission's ``budget_slot_hours`` — or
defaults to ``budget_fraction`` of the full-cluster-for-Tmax cost.
"""

from __future__ import annotations

from typing import Optional

from ..framework.events import AppStat
from ..framework.job import Job
from ..framework.policy_api import PolicyContext
from ..observability import NULL_RECORDER
from .pop import POPPolicy

__all__ = ["POPBudgetPolicy"]


class POPBudgetPolicy(POPPolicy):
    """POP that maximises expected best accuracy per dollar remaining.

    Args:
        budget_slot_hours: machine-hours the experiment may spend; None
            defers to :meth:`configure_budget` or the default fraction.
        slot_rate: dollars per machine-hour (on-demand rate; 1.0 makes
            budget_slot_hours and dollars the same unit, matching the
            cost meter's default).
        budget_fraction: default budget when none is given, as a
            fraction of ``num_machines * Tmax`` (running the whole
            cluster for the whole experiment).
    """

    name = "pop-budget"

    #: Default budget = this fraction of the full-cluster-for-Tmax cost.
    budget_fraction: float = 0.5

    def __init__(
        self,
        budget_slot_hours: Optional[float] = None,
        slot_rate: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if budget_slot_hours is not None and budget_slot_hours <= 0:
            raise ValueError("budget_slot_hours must be > 0")
        if slot_rate <= 0:
            raise ValueError("slot_rate must be > 0")
        self.budget_slot_hours = budget_slot_hours
        self.slot_rate = slot_rate
        #: Dollars charged so far (epoch durations x slot_rate).
        self.spent_dollars: float = 0.0
        self._exhausted = False
        self._m_spent = NULL_RECORDER.metrics.gauge("pop_budget_spent_dollars")
        self._m_remaining = NULL_RECORDER.metrics.gauge(
            "pop_budget_remaining_dollars"
        )
        self._m_affordable = NULL_RECORDER.metrics.gauge(
            "pop_budget_affordable_slots"
        )

    # ------------------------------------------------------------- budget

    def configure_budget(self, budget_slot_hours: Optional[float]) -> None:
        """Adopt an externally supplied budget (service submissions
        carry ``budget_slot_hours``; the executor calls this before the
        experiment starts).  None keeps the current/default budget."""
        if budget_slot_hours is None:
            return
        if budget_slot_hours <= 0:
            raise ValueError("budget_slot_hours must be > 0")
        self.budget_slot_hours = budget_slot_hours

    @property
    def budget_dollars(self) -> float:
        assert self.budget_slot_hours is not None
        return self.budget_slot_hours * self.slot_rate

    @property
    def remaining_dollars(self) -> float:
        return max(0.0, self.budget_dollars - self.spent_dollars)

    def bind(self, context: PolicyContext) -> None:
        super().bind(context)
        if self.budget_slot_hours is None:
            # Default: a fraction of what the full cluster would cost
            # running flat-out until Tmax.
            full_cost = (
                context.resource_manager.num_machines * context.tmax / 3600.0
            )
            self.budget_slot_hours = self.budget_fraction * full_cost
        metrics = context.recorder.metrics
        self._m_spent = metrics.gauge(
            "pop_budget_spent_dollars",
            help="Machine-time dollars charged by pop-budget so far",
        )
        self._m_remaining = metrics.gauge(
            "pop_budget_remaining_dollars",
            help="Budget dollars pop-budget has left to spend",
        )
        self._m_affordable = metrics.gauge(
            "pop_budget_affordable_slots",
            help="Parallelism the remaining budget can sustain",
        )
        self._m_spent.set(0.0)
        self._m_remaining.set(self.budget_dollars)

    # ------------------------------------------------------------ up-calls

    def application_stat(self, stat: AppStat) -> None:
        """Charge the epoch's machine time against the budget."""
        super().application_stat(stat)
        self.spent_dollars += (stat.duration / 3600.0) * self.slot_rate
        self._m_spent.set(self.spent_dollars)
        self._m_remaining.set(self.remaining_dollars)
        if self._exhausted or self.spent_dollars < self.budget_dollars:
            return
        self._exhausted = True
        ctx = self.ctx
        ctx.recorder.audit.record(
            "pop_budget_exhausted",
            spent_dollars=self.spent_dollars,
            budget_dollars=self.budget_dollars,
            epoch=stat.epoch,
            job_id=stat.job_id,
        )
        if ctx.stop_experiment is not None:
            ctx.stop_experiment("budget_exhausted")

    # ----------------------------------------------------------- POP hooks

    def _affordable_slots(self) -> Optional[int]:
        """Parallelism the remaining budget sustains until Tmax.

        ``remaining_dollars / (remaining_hours * rate)`` machines can
        run side by side for the rest of the experiment without going
        over.  None when the experiment clock has effectively run out
        (the time limit binds before the money does).
        """
        time_remaining = self.ctx.tmax - self.ctx.now()
        if time_remaining <= 0:
            return None
        hours_remaining = time_remaining / 3600.0
        return int(self.remaining_dollars / (hours_remaining * self.slot_rate))

    def _allocatable_slots(self) -> int:
        base = super()._allocatable_slots()
        affordable = self._affordable_slots()
        if affordable is None:
            return base
        # Never clamp below one slot: with any budget left the best
        # config keeps training (a zero-slot pool would idle the money
        # away while the clock runs).
        slots = max(1, min(base, affordable))
        self._m_affordable.set(slots)
        return slots

    def _priority_for(self, job: Job) -> float:
        """Confidence per expected remaining dollar, not raw confidence:
        of two similar-``p`` configs the cheaper finisher trains first."""
        assert job.confidence is not None
        ert = job.expected_remaining_time
        if not ert or ert <= 0:
            return job.confidence
        expected_cost = (ert / 3600.0) * self.slot_rate
        return job.confidence / (expected_cost + 1e-9)
