"""Dynamic slot allocation between promising and opportunistic pools.

Section 3.2: for a candidate confidence threshold ``p``,

* ``S_desired(p) = N_satisfying(p) · k`` — slots the configurations
  meeting the threshold would like (``k`` slots each);
* ``S_deserved(p) = S · p`` — slots that confidence level has earned;
* ``S_effective(p) = min(S_desired(p), S_deserved(p))``.

The threshold actually used is the ``p`` maximising ``S_effective`` —
graphically, the crossing of the non-increasing desired curve and the
increasing deserved line (Fig. 4a/4b).  The resulting slot count is the
promising pool; remaining slots are shared round-robin by the
opportunistic pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["SlotAllocation", "compute_slot_allocation", "slot_curves"]


@dataclass(frozen=True)
class SlotAllocation:
    """Result of one allocation decision.

    Attributes:
        threshold: the confidence threshold ``p*`` chosen.
        promising_slots: integer slots dedicated to promising configs.
        effective_slots: the (possibly fractional) maximised
            ``S_effective(p*)``.
        num_promising: configurations at/above the threshold.
    """

    threshold: float
    promising_slots: int
    effective_slots: float
    num_promising: int


def _n_satisfying(p_values: np.ndarray, threshold: float) -> int:
    return int(np.sum(p_values >= threshold))


def compute_slot_allocation(
    confidences: Sequence[float],
    total_slots: int,
    slots_per_config: int = 1,
) -> SlotAllocation:
    """Choose the dynamic threshold and promising-pool size.

    Args:
        confidences: prediction confidence ``p`` of every active
            configuration that has one (unpredicted configurations
            simply aren't candidates yet).
        total_slots: cluster slot count ``S``.
        slots_per_config: ``k``, dedicated slots per promising config
            (1 = sequential execution of each configuration).

    Returns:
        A :class:`SlotAllocation`.  With no confidences (early in an
        experiment) the threshold is 1.0 and zero slots are promising —
        everything is exploration, matching Fig. 4c's start.
    """
    if total_slots < 1:
        raise ValueError("total_slots must be >= 1")
    if slots_per_config < 1:
        raise ValueError("slots_per_config must be >= 1")
    p_values = np.asarray([p for p in confidences if p is not None], dtype=float)
    if p_values.size == 0:
        return SlotAllocation(
            threshold=1.0, promising_slots=0, effective_slots=0.0, num_promising=0
        )
    if np.any((p_values < 0) | (p_values > 1)):
        raise ValueError("confidences must lie in [0, 1]")

    # Candidate thresholds: the observed confidence values.  S_desired
    # only changes at these points and S_deserved is increasing, so the
    # maximiser of min(desired, deserved) is attained at one of them.
    best = SlotAllocation(
        threshold=1.0, promising_slots=0, effective_slots=0.0, num_promising=0
    )
    for threshold in sorted(set(p_values.tolist())):
        desired = _n_satisfying(p_values, threshold) * slots_per_config
        deserved = total_slots * threshold
        effective = min(float(desired), deserved)
        # Prefer the higher threshold on ties: same effective slots
        # from more-confident configurations.
        if effective > best.effective_slots or (
            effective == best.effective_slots and threshold > best.threshold
        ):
            best = SlotAllocation(
                threshold=float(threshold),
                promising_slots=int(effective),
                effective_slots=effective,
                num_promising=_n_satisfying(p_values, threshold),
            )
    return best


def slot_curves(
    confidences: Sequence[float],
    total_slots: int,
    slots_per_config: int = 1,
    grid_points: int = 101,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Desired and deserved slot curves over a threshold grid.

    Returns ``(p_grid, desired, deserved)`` — the data behind
    Fig. 4a/4b.
    """
    if grid_points < 2:
        raise ValueError("need at least 2 grid points")
    p_values = np.asarray(list(confidences), dtype=float)
    p_grid = np.linspace(0.0, 1.0, grid_points)
    desired = np.array(
        [_n_satisfying(p_values, p) * slots_per_config for p in p_grid],
        dtype=float,
    )
    deserved = total_slots * p_grid
    return p_grid, desired, deserved
