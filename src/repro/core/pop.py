"""The POP scheduling policy (§3, §5.3).

Per ``on_iteration_finish``:

1. Domain poor-check: a job that has not escaped the kill threshold
   after its grace period is terminated before any prediction runs.
2. At evaluation boundaries (every ``b`` epochs), the hosting Node
   Agent predicts the job's future curve; ERT and confidence ``p`` are
   computed per §3.1.1.
3. Jobs with ``p`` below the 0.05 lower bound are terminated.
4. The dynamic threshold ``p*`` is recomputed from all active jobs'
   confidences (the desired/deserved crossing of §3.2); every active
   job is (re)classified and promising jobs are labelled with
   ``priority = p``.
5. The current job continues if promising; if opportunistic and other
   idle jobs are waiting, it is suspended so the opportunistic pool
   round-robins.

``allocate_jobs`` fills the promising pool first (highest confidence
first, up to the pool size), then round-robins the remaining slots over
opportunistic jobs.  Allocation is work-conserving: a machine is never
left idle while any runnable job exists.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..framework.events import Decision, IterationFinished
from ..framework.job import Job
from ..framework.policy_api import PolicyContext, SchedulingPolicy
from ..observability import NULL_RECORDER
from .allocation import compute_slot_allocation
from .classification import (
    CONFIDENCE_LOWER_BOUND,
    Category,
    classify,
    is_poor_by_domain,
)
from .ert import estimate_remaining_time

__all__ = ["POPPolicy"]


class POPPolicy(SchedulingPolicy):
    """Promising / Opportunistic / Poor scheduling.

    Args:
        eval_boundary: ``b``; None uses the workload domain's value
            (10 supervised / 20 RL epochs, per §5.3).
        grace_multiplier: the kill-threshold grace period, in units of
            ``b`` ("a few iterations", §2.1/§5.3).
        confidence_lower_bound: terminate when ``p`` falls below this.
        slots_per_config: ``k`` in the desired-slots computation.
    """

    name = "pop"

    def __init__(
        self,
        eval_boundary: Optional[int] = None,
        grace_multiplier: int = 2,
        confidence_lower_bound: float = CONFIDENCE_LOWER_BOUND,
        slots_per_config: int = 1,
        confidence_smoothing: float = 0.4,
    ) -> None:
        super().__init__()
        if grace_multiplier < 1:
            raise ValueError("grace_multiplier must be >= 1")
        if not 0.0 <= confidence_smoothing < 1.0:
            raise ValueError("confidence_smoothing must be in [0, 1)")
        self._eval_boundary = eval_boundary
        self.grace_multiplier = grace_multiplier
        self.confidence_lower_bound = confidence_lower_bound
        self.slots_per_config = slots_per_config
        self.confidence_smoothing = confidence_smoothing
        #: Current promising-pool size (read by the scheduler's
        #: timeline logging and by allocate_jobs).
        self.promising_slots: int = 0
        #: Current dynamic threshold p*.
        self.threshold: float = 1.0
        #: Predictions made per job (confidence kills require >= 2:
        #: a single early estimate is too noisy to end a job on).
        self._prediction_counts: Dict[str, int] = {}
        #: Why the latest ``on_iteration_finish`` decided what it did —
        #: consumed by the scheduler's decision audit trail so every
        #: TERMINATE record carries the inputs that justified it.
        self.last_decision_rationale: Optional[Dict[str, Any]] = None
        # Instrument handles; rebound to the live registry in bind().
        self._m_threshold = NULL_RECORDER.metrics.gauge("pop_threshold")
        self._m_reclassifications = NULL_RECORDER.metrics.counter(
            "pop_reclassifications_total"
        )
        self._m_best_ert = NULL_RECORDER.metrics.gauge("pop_best_ert_seconds")

    def bind(self, context: PolicyContext) -> None:
        super().bind(context)
        metrics = context.recorder.metrics
        self._m_threshold = metrics.gauge(
            "pop_threshold", help="Dynamic confidence threshold p* (§3.2)"
        )
        self._m_reclassifications = metrics.counter(
            "pop_reclassifications_total",
            help="POP reclassification rounds at evaluation boundaries",
        )
        self._m_best_ert = metrics.gauge(
            "pop_best_ert_seconds",
            help="Lowest expected remaining time across active jobs",
        )

    # --------------------------------------------------------------- knobs

    @property
    def eval_boundary(self) -> int:
        if self._eval_boundary is not None:
            return self._eval_boundary
        return self.ctx.domain.eval_boundary

    @property
    def grace_epochs(self) -> int:
        return self.grace_multiplier * self.eval_boundary

    # ------------------------------------------------------------ up-calls

    def allocate_jobs(self) -> None:
        ctx = self.ctx
        while True:
            idle_jobs = ctx.job_manager.idle_jobs()
            if not idle_jobs:
                return
            promising_idle = [job for job in idle_jobs if job.promising]
            opportunistic_idle = [job for job in idle_jobs if not job.promising]
            running_promising = sum(
                1 for job in ctx.job_manager.running_jobs() if job.promising
            )

            job = self._pick_next(
                promising_idle, opportunistic_idle, running_promising
            )
            if job is None:
                return
            machine_id = ctx.resource_manager.reserve_idle_machine()
            if machine_id is None:
                return
            ctx.start(job.job_id, machine_id)

    def _pick_next(
        self,
        promising_idle: List[Job],
        opportunistic_idle: List[Job],
        running_promising: int,
    ) -> Optional[Job]:
        """Pool-aware pick: promising first while the pool has room,
        then opportunistic round-robin; work-conserving otherwise."""
        if promising_idle and running_promising < self.promising_slots:
            return promising_idle[0]  # idle_jobs() already priority-sorted
        if opportunistic_idle:
            return opportunistic_idle[0]
        if promising_idle:
            return promising_idle[0]
        return None

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        ctx = self.ctx
        job = ctx.job_manager.get(event.job_id)

        # (1) Domain poor-check before any prediction (§5.3).
        if is_poor_by_domain(job.metrics, ctx.domain, self.grace_epochs):
            self.last_decision_rationale = {
                "reason": "domain_poor",
                "kill_threshold": ctx.domain.kill_threshold,
                "grace_epochs": self.grace_epochs,
                "best_metric": max(job.metrics),
            }
            return Decision.TERMINATE

        if event.epoch % self.eval_boundary != 0:
            self.last_decision_rationale = {"reason": "between_boundaries"}
            return Decision.CONTINUE

        # (2) Predict and compute ERT + confidence at the boundary.
        self._update_estimate(job)

        # (3) Confidence lower bound.  A job is only killed on
        # confidence once at least two predictions agree (the smoothed
        # value is below the bound on a non-first boundary): one noisy
        # early estimate must not end a potential achiever.
        if (
            job.confidence is not None
            and job.confidence < self.confidence_lower_bound
            and self._prediction_counts.get(job.job_id, 0) >= 2
        ):
            self.last_decision_rationale = {
                "reason": "confidence_below_bound",
                "p": job.confidence,
                "bound": self.confidence_lower_bound,
                "predictions": self._prediction_counts[job.job_id],
            }
            return Decision.TERMINATE

        # (4) Recompute the dynamic threshold and reclassify everyone.
        self._reclassify_all()

        # (5) Decide for the current job.
        if job.promising:
            self.last_decision_rationale = {
                "reason": "promising",
                "p": job.confidence,
                "p_star": self.threshold,
            }
            return Decision.CONTINUE
        if ctx.job_manager.num_idle > 0:
            self.last_decision_rationale = {
                "reason": "opportunistic_rotation",
                "p": job.confidence,
                "p_star": self.threshold,
                "idle_jobs": ctx.job_manager.num_idle,
            }
            return Decision.SUSPEND
        self.last_decision_rationale = {
            "reason": "work_conserving",
            "p": job.confidence,
            "p_star": self.threshold,
        }
        return Decision.CONTINUE

    # ------------------------------------------------------------ internals

    def _update_estimate(self, job: Job) -> None:
        """Run curve prediction for ``job`` and store ERT/confidence."""
        ctx = self.ctx
        epoch_duration = job.mean_epoch_duration
        if epoch_duration is None:
            return
        time_remaining = ctx.tmax - ctx.now()
        epochs_left = ctx.domain.max_epochs - job.epochs_completed
        horizon = min(
            epochs_left, max(1, int(time_remaining // epoch_duration))
        )
        if horizon < 1 or time_remaining <= 0:
            job.confidence = 0.0
            job.expected_remaining_time = 0.0
            return
        try:
            prediction = ctx.predict(job.job_id, horizon)
        except ValueError:
            return  # history still too short for the predictor
        estimate = estimate_remaining_time(
            prediction,
            target=ctx.normalized_target,
            epoch_duration=epoch_duration,
            time_remaining=time_remaining,
        )
        if ctx.recorder.enabled:
            ctx.recorder.audit.record(
                "prediction",
                job_id=job.job_id,
                epoch=job.epochs_completed,
                confidence=estimate.confidence,
                expected_remaining_seconds=estimate.expected_remaining_seconds,
                horizon_epochs=estimate.horizon_epochs,
                prediction_accuracy=estimate.prediction_accuracy,
            )
        # Exponentially smooth the confidence so single noisy
        # predictions do not flap a job between pools (or kill it).
        if job.confidence is None or self.confidence_smoothing == 0.0:
            job.confidence = estimate.confidence
        else:
            alpha = self.confidence_smoothing
            job.confidence = (
                alpha * job.confidence + (1.0 - alpha) * estimate.confidence
            )
        job.expected_remaining_time = estimate.expected_remaining_seconds
        self._prediction_counts[job.job_id] = (
            self._prediction_counts.get(job.job_id, 0) + 1
        )

    def _allocatable_slots(self) -> int:
        """Slots the desired/deserved computation divides.  In-service,
        not nominal: under a broker lease reclaim the drained machines
        must stop counting.  Subclasses may clamp further (e.g. the
        budget-aware variant caps at what the budget can afford)."""
        ctx = self.ctx
        return (
            getattr(ctx.resource_manager, "num_in_service", None)
            or ctx.resource_manager.num_machines
        )

    def _priority_for(self, job: Job) -> float:
        """Priority label for a promising job (§5.3 uses ``p``)."""
        assert job.confidence is not None
        return job.confidence

    def _reclassify_all(self) -> None:
        """Recompute p*, the pool size, and every job's category."""
        ctx = self.ctx
        active = ctx.job_manager.active_jobs()
        confidences = [
            job.confidence for job in active if job.confidence is not None
        ]
        total_slots = self._allocatable_slots()
        allocation = compute_slot_allocation(
            confidences,
            total_slots=total_slots,
            slots_per_config=self.slots_per_config,
        )
        self.threshold = allocation.threshold
        self.promising_slots = allocation.promising_slots
        self._m_threshold.set(self.threshold)
        self._m_reclassifications.inc()
        erts = [
            job.expected_remaining_time
            for job in active
            if job.expected_remaining_time
        ]
        if erts:
            self._m_best_ert.set(min(erts))
        categories: Optional[Dict[str, str]] = (
            {} if ctx.recorder.enabled else None
        )

        for job in active:
            category = classify(
                confidence=job.confidence,
                threshold=self.threshold,
                metrics=job.metrics,
                domain=ctx.domain,
                grace_epochs=self.grace_epochs,
                confidence_lower_bound=self.confidence_lower_bound,
            )
            if categories is not None:
                categories[job.job_id] = category.value
            promising = (
                category is Category.PROMISING and self.promising_slots > 0
            )
            job.promising = promising
            if promising and job.confidence is not None:
                # Label promising jobs with priority = p (§5.3);
                # subclasses may reweight (e.g. value per dollar).
                ctx.job_manager.label_job(job.job_id, self._priority_for(job))
            elif job.priority is not None and not promising:
                job.priority = None

        if categories is not None:
            # One audit record per reclassification round: the inputs
            # (confidences, slot math) and the resulting category map.
            ctx.recorder.audit.record(
                "pop_classification",
                threshold=self.threshold,
                promising_slots=self.promising_slots,
                effective_slots=allocation.effective_slots,
                num_promising=allocation.num_promising,
                active_jobs=len(active),
                confidences={
                    job.job_id: job.confidence
                    for job in active
                    if job.confidence is not None
                },
                categories=categories,
            )
