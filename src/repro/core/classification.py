"""Configuration classification: Promising / Opportunistic / Poor (§2).

Poor configurations are identified with model-owner domain knowledge
(the kill threshold — e.g. "still at random accuracy" or "at the RL
crash reward") plus POP's confidence lower bound.  The promising-vs-
opportunistic split is made against the dynamic threshold computed by
:mod:`repro.core.allocation`.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from ..workloads.base import DomainSpec

__all__ = ["Category", "is_poor_by_domain", "classify"]

#: POP terminates configurations whose confidence drops below this
#: (§5.3: "if it is less than 0.05 we terminate it").
CONFIDENCE_LOWER_BOUND = 0.05


class Category(enum.Enum):
    PROMISING = "promising"
    OPPORTUNISTIC = "opportunistic"
    POOR = "poor"


def is_poor_by_domain(
    metrics: Sequence[float],
    domain: DomainSpec,
    grace_epochs: int,
    flat_check_epochs: Optional[int] = None,
) -> bool:
    """Domain-knowledge poor check (§2.1).

    Two stages:

    * A configuration that is below the kill threshold *and flat* (no
      upward trend at all) is killed as soon as ``flat_check_epochs``
      observations exist — these are the "not learning at all, accuracy
      similar to random" configurations that "can be identified within
      few training iterations".
    * Any configuration still below the kill threshold after the full
      ``grace_epochs`` is killed regardless of trend, so slow learners
      get a longer benefit of the doubt.

    Args:
        metrics: raw metric history.
        domain: the model owner's domain spec.
        grace_epochs: epochs before the unconditional check applies.
        flat_check_epochs: epochs before the flat-curve check applies
            (defaults to half the grace period).
    """
    if grace_epochs < 1:
        raise ValueError("grace_epochs must be >= 1")
    if flat_check_epochs is None:
        flat_check_epochs = max(2, grace_epochs // 2)
    n = len(metrics)
    if n < flat_check_epochs:
        return False
    if max(metrics) >= domain.kill_threshold:
        return False
    if n >= grace_epochs:
        return True
    # Flat check: compare the two halves of the (normalised) history;
    # a genuine learner shows an upward trend even while still below
    # the kill threshold.
    normalized = [domain.normalize(value) for value in metrics]
    half = n // 2
    early = sum(normalized[:half]) / half
    late = sum(normalized[half:]) / (n - half)
    return (late - early) < 0.01


def classify(
    confidence: Optional[float],
    threshold: float,
    metrics: Sequence[float],
    domain: DomainSpec,
    grace_epochs: int,
    confidence_lower_bound: float = CONFIDENCE_LOWER_BOUND,
) -> Category:
    """Full POP classification of one configuration.

    Order matters: the domain poor-check applies before any prediction
    is consulted (§5.3), then the confidence lower bound, then the
    dynamic promising threshold.

    Args:
        confidence: latest prediction confidence ``p`` (None if the
            configuration has not been predicted yet).
        threshold: the dynamic threshold ``p*`` from the allocator.
        metrics: raw metric history.
        domain: domain knowledge.
        grace_epochs: grace period for the poor check.
        confidence_lower_bound: POP's termination bound on ``p``.
    """
    if is_poor_by_domain(metrics, domain, grace_epochs):
        return Category.POOR
    if confidence is None:
        return Category.OPPORTUNISTIC
    if confidence < confidence_lower_bound:
        return Category.POOR
    if confidence >= threshold:
        return Category.PROMISING
    return Category.OPPORTUNISTIC
