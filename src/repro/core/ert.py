"""Expected remaining time (ERT) and prediction confidence (§3.1.1).

Given a curve prediction for configuration *i*, the probability that
the target is first reached at future epoch *m* is the increment of the
achieve-by CDF:

    p_m = P(y(m) >= y_target) - P(y(m-1) >= y_target)

The expected remaining epochs are ``x_i = Σ m · p_m`` and the expected
remaining time ``ERT_i = x_i · Epoch_i``.  Following the paper, the
summation stops early once the accumulated ERT exceeds the remaining
experiment time ``Tmax − Tpass`` (the search will never run longer), so
the probability mass Σ p_m may be < 1; that sum is the *prediction
confidence* ``p``: the probability the configuration achieves the
target within the user's time budget.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..curves.predictor import CurvePrediction

__all__ = ["ERTEstimate", "estimate_remaining_time"]


@dataclass(frozen=True)
class ERTEstimate:
    """ERT and confidence for one configuration.

    Attributes:
        expected_remaining_epochs: ``x_i`` (eq. 2).
        expected_remaining_seconds: ``ERT_i`` (eq. 3), capped at the
            remaining experiment time.
        confidence: ``p`` = Σ p_m over the epochs actually summed.
        horizon_epochs: how many future epochs the estimate considered
            (``M_i``, bounded by remaining time and epoch budget).
        prediction_accuracy: spread across predictor samples (the PA
            diagnostic from §3.1.1).
    """

    expected_remaining_epochs: float
    expected_remaining_seconds: float
    confidence: float
    horizon_epochs: int
    prediction_accuracy: float


def estimate_remaining_time(
    prediction: CurvePrediction,
    target: float,
    epoch_duration: float,
    time_remaining: float,
) -> ERTEstimate:
    """Compute ERT and confidence from a curve prediction.

    Args:
        prediction: posterior over the configuration's future curve
            (in normalised metric space).
        target: normalised target performance ``y_target``.
        epoch_duration: measured mean epoch duration ``Epoch_i``.
        time_remaining: ``Tmax − Tpass`` in seconds.

    Returns:
        The :class:`ERTEstimate`.  With no remaining time (or a
        prediction horizon of zero usable epochs) the confidence is 0
        and the ERT equals the remaining time.
    """
    if epoch_duration <= 0:
        raise ValueError("epoch_duration must be positive")
    if time_remaining <= 0:
        return ERTEstimate(
            expected_remaining_epochs=0.0,
            expected_remaining_seconds=0.0,
            confidence=0.0,
            horizon_epochs=0,
            prediction_accuracy=prediction.prediction_accuracy,
        )

    # M_i = (Tmax − Tpass) / Epoch_i, additionally bounded by how far
    # the predictor actually looked ahead.
    max_epochs_by_time = int(time_remaining // epoch_duration)
    horizon = min(max_epochs_by_time, prediction.horizon.size)
    if horizon < 1:
        return ERTEstimate(
            expected_remaining_epochs=0.0,
            expected_remaining_seconds=float(time_remaining),
            confidence=0.0,
            horizon_epochs=0,
            prediction_accuracy=prediction.prediction_accuracy,
        )

    achieve_by = prediction.achieve_by_probabilities(target)[:horizon]
    expected_epochs = 0.0
    confidence = 0.0
    previous = 0.0
    for m in range(1, horizon + 1):
        p_m = float(achieve_by[m - 1]) - previous
        previous = float(achieve_by[m - 1])
        if p_m <= 0.0:
            continue
        expected_epochs += m * p_m
        confidence += p_m
        # Paper: stop summing once the running ERT exceeds the time the
        # search could possibly still spend.
        if expected_epochs * epoch_duration > time_remaining:
            expected_epochs = time_remaining / epoch_duration
            break

    ert_seconds = min(expected_epochs * epoch_duration, time_remaining)
    if confidence == 0.0:
        # No sampled future reaches the target inside the budget.
        ert_seconds = float(time_remaining)
    return ERTEstimate(
        expected_remaining_epochs=expected_epochs,
        expected_remaining_seconds=float(ert_seconds),
        confidence=float(min(confidence, 1.0)),
        horizon_epochs=horizon,
        prediction_accuracy=prediction.prediction_accuracy,
    )
