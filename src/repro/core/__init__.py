"""POP scheduling algorithm: ERT, allocation, classification, policy."""

from .allocation import SlotAllocation, compute_slot_allocation, slot_curves
from .classification import (
    CONFIDENCE_LOWER_BOUND,
    Category,
    classify,
    is_poor_by_domain,
)
from .ert import ERTEstimate, estimate_remaining_time
from .pop import POPPolicy

__all__ = [
    "SlotAllocation",
    "compute_slot_allocation",
    "slot_curves",
    "Category",
    "classify",
    "is_poor_by_domain",
    "CONFIDENCE_LOWER_BOUND",
    "ERTEstimate",
    "estimate_remaining_time",
    "POPPolicy",
]
