"""Cluster membership: heartbeat failure detection.

The Job & Resource Manager in the paper learns about node failures from
its GRPC channel to each Node Agent (§4).  Here the head pings every
worker on a fixed interval; a worker that misses ``miss_threshold``
consecutive pings is declared **down**, which frees its slot in the
``ResourceManager`` and triggers job migration (handled by the cluster
runtime via the :attr:`HeartbeatMonitor.on_down` callback).

Two distinct paths lead to *down*:

* **Socket death** — the connection drops (worker SIGKILLed, machine
  gone).  The transport's reader thread notices EOF immediately, so
  death is declared without waiting out the miss threshold.
* **Silent node** — the connection is up but pongs stop (GC pause,
  overload, injected ``drop_heartbeats`` fault).  Misses accumulate per
  ping interval until the threshold trips.

A node that answers again after being declared down (the silent-node
case, or a reconnect after backoff) is declared **up** again through
:attr:`HeartbeatMonitor.on_up`; the runtime recovers the machine in the
resource pool.

All transitions are recorded on the audit trail and reflected in the
``cluster_nodes_up`` gauge; pong round-trips feed the
``cluster_heartbeat_rtt_seconds`` histogram.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Callable, Dict, List, Optional

from ..observability import NULL_RECORDER

__all__ = ["NodeState", "HeartbeatMonitor"]


class NodeState:
    UP = "up"
    DOWN = "down"


class _NodeHealth:
    __slots__ = (
        "machine_id", "state", "connected", "misses", "last_seq",
        "expected_reason",
    )

    def __init__(self, machine_id: str) -> None:
        self.machine_id = machine_id
        self.state = NodeState.DOWN  # until the first hello
        self.connected = False
        self.misses = 0
        self.last_seq = -1
        #: When set, the next down transition is an announced departure
        #: (drain, spot revocation), not a failure.
        self.expected_reason: Optional[str] = None


class HeartbeatMonitor:
    """Periodic ping/pong membership over a :class:`ClusterTransport`.

    Args:
        transport: head-side transport (pings go through it; its
            connected/disconnected/pong callbacks feed this monitor).
        machine_ids: the full expected membership.
        interval: seconds between ping rounds (wall-clock; heartbeats
            are an infrastructure concern, not experiment time).
        miss_threshold: consecutive unanswered pings before a
            connected-but-silent node is declared down.
        recorder: observability sink (gauge, histogram, audit events).
    """

    def __init__(
        self,
        transport,
        machine_ids: List[str],
        interval: float = 0.2,
        miss_threshold: int = 3,
        recorder=NULL_RECORDER,
    ) -> None:
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self._transport = transport
        self._interval = interval
        self._miss_threshold = miss_threshold
        self._recorder = recorder
        self._lock = threading.Lock()
        self._nodes: Dict[str, _NodeHealth] = {
            machine_id: _NodeHealth(machine_id) for machine_id in machine_ids
        }
        self._seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._all_up = threading.Event()
        self.on_down: Optional[Callable[[str], None]] = None
        self.on_up: Optional[Callable[[str], None]] = None
        #: Invoked instead of ``on_down`` for expected departures
        #: (``expect_departure`` was called first): ``(machine_id,
        #: reason)``.  Keeps drains and spot revocations out of the
        #: failure/migration-retry path.
        self.on_departed: Optional[Callable[[str, str], None]] = None
        self._nodes_up_gauge = recorder.metrics.gauge(
            "cluster_nodes_up", help="Cluster nodes currently alive"
        )
        self._rtt_histogram = recorder.metrics.histogram(
            "cluster_heartbeat_rtt_seconds",
            help="Heartbeat round-trip time per node",
        )
        transport.on_node_connected = self.note_connected
        transport.on_node_disconnected = self.note_disconnected
        transport.on_pong = self.note_pong

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._ping_loop, name="heartbeat-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def wait_all_up(self, timeout: float) -> bool:
        """Block until every expected node has said hello (startup barrier)."""
        return self._all_up.wait(timeout)

    # ----------------------------------------------------------- membership

    def add_node(self, machine_id: str) -> None:
        """Start tracking a machine that joined after boot (scale-up)."""
        with self._lock:
            if machine_id not in self._nodes:
                self._nodes[machine_id] = _NodeHealth(machine_id)

    def remove_node(self, machine_id: str) -> None:
        """Forget a departed machine entirely (post-drain cleanup)."""
        with self._lock:
            self._nodes.pop(machine_id, None)
        self._nodes_up_gauge.set(self.nodes_up)

    def wait_node_up(self, machine_id: str, timeout: float) -> bool:
        """Block until one specific node says hello (scale-up barrier)."""
        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            with self._lock:
                node = self._nodes.get(machine_id)
                if node is not None and node.state == NodeState.UP:
                    return True
            if self._stop.wait(min(0.01, self._interval)):
                return False
        return False

    def expect_departure(self, machine_id: str, reason: str) -> None:
        """Announce that ``machine_id`` is about to leave on purpose.

        Its next down transition is recorded as a
        ``cluster_node_departed`` audit event carrying ``reason`` and
        routed to :attr:`on_departed` — it does **not** count as a
        ``cluster_node_down`` failure and never enters the migration
        retry-budget path.
        """
        with self._lock:
            node = self._nodes.get(machine_id)
            if node is not None:
                node.expected_reason = reason

    # -------------------------------------------------------------- queries

    def state(self, machine_id: str) -> str:
        with self._lock:
            return self._nodes[machine_id].state

    def is_up(self, machine_id: str) -> bool:
        """Whether the node is currently tracked and UP.  A forgotten
        node (removed after a drain or expected departure) is simply
        not up — callers probe candidates without tracking removal."""
        with self._lock:
            node = self._nodes.get(machine_id)
            return node is not None and node.state == NodeState.UP

    @property
    def nodes_up(self) -> int:
        with self._lock:
            return sum(
                1 for node in self._nodes.values() if node.state == NodeState.UP
            )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-node health for dashboards: shipped through the
        telemetry aggregator's ``meta`` channel so ``repro top`` can
        show membership without scraping the audit trail."""
        with self._lock:
            return {
                machine_id: {
                    "state": node.state,
                    "connected": node.connected,
                    "misses": node.misses,
                    "last_seq": node.last_seq,
                    "expected_departure": node.expected_reason,
                }
                for machine_id, node in sorted(self._nodes.items())
            }

    # ---------------------------------------------------- transport callbacks

    def note_connected(self, machine_id: str) -> None:
        """A worker said hello (initial connect or reconnect)."""
        if self._stop.is_set():
            return  # tear-down noise, not membership
        came_up = False
        with self._lock:
            node = self._nodes.get(machine_id)
            if node is None:
                return  # a stranger; transport accepted it, we ignore it
            node.connected = True
            node.misses = 0
            node.expected_reason = None  # a comeback cancels the goodbye
            if node.state != NodeState.UP:
                node.state = NodeState.UP
                came_up = True
            all_up = all(
                n.state == NodeState.UP for n in self._nodes.values()
            )
        if all_up:
            self._all_up.set()
        if came_up:
            self._transition(machine_id, NodeState.UP, "connected")

    def note_disconnected(self, machine_id: str) -> None:
        """A worker's socket died: immediate death, no miss-counting."""
        if self._stop.is_set():
            return  # expected EOFs while the head shuts workers down
        went_down = False
        expected: Optional[str] = None
        with self._lock:
            node = self._nodes.get(machine_id)
            if node is None:
                return
            node.connected = False
            if node.state == NodeState.UP:
                node.state = NodeState.DOWN
                went_down = True
                expected = node.expected_reason
                node.expected_reason = None
        if went_down:
            if expected is not None:
                self._departed(machine_id, expected)
            else:
                self._transition(machine_id, NodeState.DOWN, "connection_lost")

    def note_pong(self, machine_id: str, seq: int, rtt: float) -> None:
        """A heartbeat answer arrived (possibly from a silent node)."""
        if self._stop.is_set():
            return
        came_up = False
        with self._lock:
            node = self._nodes.get(machine_id)
            if node is None:
                return
            node.misses = 0
            node.last_seq = seq
            if node.state == NodeState.DOWN and node.connected:
                # Pongs resumed on a live socket: a silent node woke up.
                node.state = NodeState.UP
                came_up = True
        self._rtt_histogram.observe(rtt, machine_id=machine_id)
        if came_up:
            self._transition(machine_id, NodeState.UP, "heartbeats_resumed")

    # ------------------------------------------------------------- internal

    def _ping_loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._seq += 1
            newly_down = []
            with self._lock:
                targets = [
                    node.machine_id
                    for node in self._nodes.values()
                    if node.connected
                ]
            for machine_id in targets:
                sent = self._transport.ping(machine_id, self._seq)
                with self._lock:
                    node = self._nodes.get(machine_id)
                    if node is None:
                        continue  # removed mid-round (scale-down)
                    if not node.connected or node.state != NodeState.UP:
                        continue
                    if not sent:
                        # Link already torn down; the disconnect callback
                        # handles the transition.
                        continue
                    node.misses += 1
                    if node.misses >= self._miss_threshold:
                        node.state = NodeState.DOWN
                        expected = node.expected_reason
                        node.expected_reason = None
                        newly_down.append((machine_id, expected))
            for machine_id, expected in newly_down:
                if expected is not None:
                    self._departed(machine_id, expected)
                else:
                    self._transition(
                        machine_id, NodeState.DOWN, "heartbeat_timeout"
                    )

    def _transition(self, machine_id: str, state: str, reason: str) -> None:
        self._nodes_up_gauge.set(self.nodes_up)
        self._recorder.audit.record(
            "cluster_node_" + state, machine_id=machine_id, reason=reason
        )
        callback = self.on_up if state == NodeState.UP else self.on_down
        if callback is not None:
            callback(machine_id)

    def _departed(self, machine_id: str, reason: str) -> None:
        self._nodes_up_gauge.set(self.nodes_up)
        self._recorder.audit.record(
            "cluster_node_departed", machine_id=machine_id, reason=reason
        )
        if self.on_departed is not None:
            self.on_departed(machine_id, reason)
