"""Socket transport carrying the MessageBus discipline between processes.

The in-process runtimes wire components through
:class:`~repro.framework.transport.MessageBus`: typed envelopes,
per-subscriber FIFO mailboxes, explicit addresses, strict delivery.
The cluster runtime keeps exactly that discipline but lets topics live
in other processes:

* :class:`ClusterTransport` (head side) **is a** ``MessageBus``.  Local
  topics (driver threads, RPC reply mailboxes) behave as before; a
  topic registered by a connected worker routes over that worker's TCP
  connection instead.  Scheduler and policy code cannot tell the
  difference — which is the point.
* :class:`WorkerEndpoint` (worker side) exposes the same ``send`` /
  ``Mailbox`` surface inside a node-agent process, plus
  exponential-backoff reconnect for transient link loss.

Heartbeats ride the same framed protocol (``ping``/``pong`` kinds) but
are handled in the reader threads, bypassing the mailboxes, so a worker
busy training still answers pings promptly.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional

from ..framework.transport import Mailbox, Message, MessageBus
from .faults import FaultPlan
from .protocol import FrameError, recv_frame, send_frame

__all__ = ["NodeFailure", "ClusterTransport", "WorkerEndpoint"]

logger = logging.getLogger(__name__)

#: Frame kinds with transport-level meaning (never hit mailboxes).
HELLO = "hello"
PING = "ping"
PONG = "pong"

#: Topic/kind workers ship telemetry batches on (metric snapshots plus
#: span/audit deltas; see ``repro.cluster.worker.TelemetryShipper``).
TELEMETRY = "telemetry"


class NodeFailure(ConnectionError):
    """An operation targeted a node that is dead or unreachable."""

    def __init__(self, machine_id: str, reason: str) -> None:
        super().__init__(f"node {machine_id}: {reason}")
        self.machine_id = machine_id
        self.reason = reason


class _Connection:
    """One accepted worker connection on the head."""

    def __init__(self, sock: socket.socket, machine_id: str) -> None:
        self.sock = sock
        self.machine_id = machine_id
        self.send_lock = threading.Lock()
        self.closed = False

    def send(self, document: Dict[str, Any]) -> None:
        with self.send_lock:
            if self.closed:
                raise NodeFailure(self.machine_id, "connection closed")
            send_frame(self.sock, document)

    def close(self) -> None:
        with self.send_lock:
            if not self.closed:
                self.closed = True
                try:
                    self.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                self.sock.close()


class ClusterTransport(MessageBus):
    """Head-side message bus whose topics may live in worker processes.

    Callbacks (set before :meth:`start`):

    * ``on_node_connected(machine_id)`` — a worker said hello (first
      connection or a reconnect).
    * ``on_node_disconnected(machine_id)`` — a worker's connection
      dropped (EOF, reset) and no replacement has registered.
    * ``on_pong(machine_id, seq, rtt_seconds)`` — a heartbeat answer.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__()
        self._listener = socket.create_server((host, port))
        self._connections: Dict[str, _Connection] = {}
        self._routes_lock = threading.Lock()
        self._threads: list = []
        self._closing = threading.Event()
        self.on_node_connected: Optional[Callable[[str], None]] = None
        self.on_node_disconnected: Optional[Callable[[str], None]] = None
        self.on_pong: Optional[Callable[[str, int, float], None]] = None

    # ------------------------------------------------------------ addresses

    @property
    def address(self) -> tuple:
        """(host, port) workers should connect to."""
        return self._listener.getsockname()[:2]

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        accept = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)

    def close(self) -> None:
        """Stop accepting, close every worker connection (idempotent)."""
        if self._closing.is_set():
            return
        self._closing.set()
        # A blocked accept() does not reliably wake when another thread
        # closes the listener; poke it with a throwaway connection so
        # the accept thread observes _closing and exits promptly.
        try:
            poke = socket.create_connection(self.address, timeout=0.5)
            poke.close()
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._routes_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.close()
        for thread in self._threads:
            thread.join(timeout=2.0)

    # ------------------------------------------------------------- delivery

    def send(
        self,
        topic: str,
        kind: str,
        payload: Any,
        sender: str,
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Deliver locally, or route to the worker owning ``topic``."""
        with self._routes_lock:
            connection = self._connections.get(topic)
        if connection is None:
            super().send(topic, kind, payload, sender, trace=trace)
            return
        document = {"topic": topic, "kind": kind, "payload": payload,
                    "sender": sender}
        if trace is not None:
            document["trace"] = trace
        try:
            connection.send(document)
        except (OSError, FrameError) as exc:
            raise NodeFailure(topic, f"send failed: {exc}") from exc

    def ping(self, machine_id: str, seq: int) -> bool:
        """Send one heartbeat ping; False if the link is already gone."""
        with self._routes_lock:
            connection = self._connections.get(machine_id)
        if connection is None:
            return False
        try:
            connection.send(
                {"topic": machine_id, "kind": PING,
                 "payload": {"seq": seq, "sent": time.monotonic()},
                 "sender": "head"}
            )
            return True
        except (OSError, FrameError, NodeFailure):
            return False

    def has_connection(self, machine_id: str) -> bool:
        with self._routes_lock:
            return machine_id in self._connections

    def disconnect(self, machine_id: str) -> None:
        """Forcibly drop a worker's connection (shutdown path)."""
        with self._routes_lock:
            connection = self._connections.pop(machine_id, None)
        if connection is not None:
            connection.close()

    # ------------------------------------------------------------- internal

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection, args=(sock,),
                name="cluster-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, sock: socket.socket) -> None:
        try:
            hello = recv_frame(sock)
        except (FrameError, OSError):
            sock.close()
            return
        if hello is None or hello.get("kind") != HELLO:
            sock.close()
            return
        machine_id = hello["payload"]["machine_id"]
        connection = _Connection(sock, machine_id)
        with self._routes_lock:
            previous = self._connections.get(machine_id)
            self._connections[machine_id] = connection
        if previous is not None:
            previous.close()
        if self.on_node_connected is not None:
            self.on_node_connected(machine_id)
        try:
            self._reader_loop(connection)
        finally:
            connection.close()
            with self._routes_lock:
                current = self._connections.get(machine_id)
                still_routed = current is connection
                if still_routed:
                    del self._connections[machine_id]
            if (
                still_routed
                and not self._closing.is_set()
                and self.on_node_disconnected is not None
            ):
                self.on_node_disconnected(machine_id)

    def _reader_loop(self, connection: _Connection) -> None:
        while True:
            try:
                frame = recv_frame(connection.sock)
            except (FrameError, OSError):
                return
            if frame is None:
                return
            if frame.get("kind") == PONG:
                if self.on_pong is not None:
                    payload = frame.get("payload") or {}
                    rtt = time.monotonic() - float(payload.get("sent", 0.0))
                    self.on_pong(
                        connection.machine_id, int(payload.get("seq", -1)), rtt
                    )
                continue
            try:
                super().send(
                    frame["topic"], frame["kind"], frame.get("payload"),
                    frame.get("sender", connection.machine_id),
                    trace=frame.get("trace"),
                )
            except KeyError:
                # A reply that outlived its waiter (e.g. the head gave
                # up on a slow RPC).  Dropping is correct; log for
                # debugging.
                logger.debug(
                    "dropping frame for unknown topic %r from %s",
                    frame.get("topic"), connection.machine_id,
                )


class WorkerEndpoint:
    """Worker-side connection to the head, same bus discipline.

    The endpoint owns one local mailbox (the worker's own topic);
    everything sent from the worker routes to the head.  Link loss
    triggers exponential-backoff reconnection; the worker main loop
    observes :attr:`connection_generation` to learn that a reconnect
    happened (its hosted job has been rescheduled by then, so it must
    drop local state).
    """

    def __init__(
        self,
        host: str,
        port: int,
        machine_id: str,
        fault_plan: Optional[FaultPlan] = None,
        reconnect_base_seconds: float = 0.05,
        reconnect_max_attempts: int = 6,
    ) -> None:
        self.machine_id = machine_id
        self._address = (host, port)
        self.mailbox = Mailbox(machine_id)
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._reader: Optional[threading.Thread] = None
        self._closed = threading.Event()
        self.connection_generation = 0
        self._reconnect_base = reconnect_base_seconds
        self._reconnect_max_attempts = reconnect_max_attempts
        # Deterministic fault state (counts, not clocks).
        plan = fault_plan if fault_plan is not None else FaultPlan()
        self._drops = [
            {"after": f.after, "count": f.count, "dropped": 0}
            for f in plan.heartbeat_drops(machine_id)
        ]
        self._delays = plan.send_delays(machine_id)
        self._pings_answered = 0
        self._frames_sent = 0

    # ------------------------------------------------------------ lifecycle

    def connect(self) -> None:
        """Dial the head and say hello (raises on failure)."""
        sock = socket.create_connection(self._address, timeout=10.0)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._send_lock:
            self._sock = sock
        send_frame(
            sock,
            {"topic": "head", "kind": HELLO,
             "payload": {"machine_id": self.machine_id}, "sender": self.machine_id},
        )
        self.connection_generation += 1
        self._reader = threading.Thread(
            target=self._reader_loop, args=(sock,),
            name=f"worker-reader-{self.machine_id}", daemon=True,
        )
        self._reader.start()

    def reconnect(self) -> bool:
        """Exponential-backoff redial; True once reconnected."""
        delay = self._reconnect_base
        for _attempt in range(self._reconnect_max_attempts):
            if self._closed.is_set():
                return False
            try:
                self.connect()
                return True
            except OSError:
                time.sleep(delay)
                delay *= 2.0
        return False

    def close(self) -> None:
        self._closed.set()
        with self._send_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # ------------------------------------------------------------- delivery

    def send(
        self,
        topic: str,
        kind: str,
        payload: Any,
        sender: Optional[str] = None,
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Send one message to a head-side topic."""
        self._frames_sent += 1
        for fault in self._delays:
            if self._frames_sent > fault.after:
                time.sleep(fault.seconds)
        document = {"topic": topic, "kind": kind, "payload": payload,
                    "sender": sender or self.machine_id}
        if trace is not None:
            document["trace"] = trace
        with self._send_lock:
            sock = self._sock
            if sock is None:
                raise NodeFailure(self.machine_id, "not connected")
            try:
                send_frame(sock, document)
            except OSError as exc:
                raise NodeFailure(self.machine_id, f"send failed: {exc}") from exc

    # ------------------------------------------------------------- internal

    def _reader_loop(self, sock: socket.socket) -> None:
        while not self._closed.is_set():
            try:
                frame = recv_frame(sock)
            except (FrameError, OSError):
                frame = None
            if frame is None:
                # Link lost: hand a poison pill to the main loop so it
                # can decide to reconnect or exit.
                if not self._closed.is_set():
                    self.mailbox.put(
                        Message(
                            topic=self.machine_id, kind="connection_lost",
                            payload=None, sender="transport",
                        )
                    )
                return
            if frame.get("kind") == PING:
                self._handle_ping(frame)
                continue
            self.mailbox.put(
                Message(
                    topic=frame["topic"], kind=frame["kind"],
                    payload=frame.get("payload"),
                    sender=frame.get("sender", "head"),
                    trace=frame.get("trace"),
                )
            )

    def _handle_ping(self, frame: Dict[str, Any]) -> None:
        for fault in self._drops:
            if (
                self._pings_answered >= fault["after"]
                and fault["dropped"] < fault["count"]
            ):
                fault["dropped"] += 1
                return  # swallowed: the head sees a heartbeat miss
        self._pings_answered += 1
        try:
            self.send("head", PONG, frame.get("payload"))
        except NodeFailure:
            pass
