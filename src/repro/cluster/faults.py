"""Deterministic fault injection for the cluster runtime.

A :class:`FaultPlan` is a per-machine list of fault specs shipped to
worker processes at spawn time.  Every trigger counts *events* (epochs
trained on the worker, pings answered, frames sent) rather than wall
time, so two runs with the same plan inject faults at identical points
in the execution — the property the determinism tests assert.

Fault kinds:

``kill_at_epoch``
    SIGKILL the worker process the moment it finishes training its
    N-th epoch, *before* the epoch result is reported — the crash
    destroys that epoch's work, exactly like a real mid-epoch failure.

``drop_heartbeats``
    Suppress ``count`` pong replies starting after the worker has
    answered ``after`` pings.  The connection stays open; the head's
    miss-threshold logic must declare the node dead (and recover it
    when pongs resume).

``delay_send``
    Sleep ``seconds`` before every frame the worker sends once its
    ``after``-th send has happened.  Models a degraded link; used to
    exercise RPC timeouts without killing anything.

``spot_revocation``
    After training its ``epoch``-th epoch the worker sends a
    revocation notice to the head, keeps serving for a ``grace``
    window (scaled seconds), then SIGKILLs itself — the spot-instance
    two-minute warning in miniature.  The head must migrate the hosted
    job off the doomed node before the kill lands; membership
    classifies the eventual disconnect as an expected revocation.

Plans parse from compact CLI strings (``repro cluster-demo --kill
machine-01@epoch:3``) and serialise to/from JSON dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "KillAtEpoch",
    "DropHeartbeats",
    "DelaySend",
    "SpotRevocation",
    "FaultPlan",
]


@dataclass(frozen=True)
class KillAtEpoch:
    """SIGKILL the worker after it trains its ``epoch``-th epoch."""

    machine_id: str
    epoch: int

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError("kill epoch must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "kill_at_epoch", "machine_id": self.machine_id,
                "epoch": self.epoch}


@dataclass(frozen=True)
class DropHeartbeats:
    """Suppress ``count`` pongs after answering ``after`` pings."""

    machine_id: str
    after: int
    count: int

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "drop_heartbeats", "machine_id": self.machine_id,
                "after": self.after, "count": self.count}


@dataclass(frozen=True)
class DelaySend:
    """Delay every outbound frame by ``seconds`` after the ``after``-th."""

    machine_id: str
    seconds: float
    after: int = 0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("delay seconds must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "delay_send", "machine_id": self.machine_id,
                "seconds": self.seconds, "after": self.after}


@dataclass(frozen=True)
class SpotRevocation:
    """Announce revocation after ``epoch`` epochs, die ``grace`` later.

    ``grace`` is in experiment seconds (workers scale it by their
    ``time_scale``), so the window tracks the simulated clock the
    scheduler plans against.
    """

    machine_id: str
    epoch: int
    grace: float = 30.0

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError("revocation epoch must be >= 1")
        if self.grace < 0:
            raise ValueError("grace must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "spot_revocation", "machine_id": self.machine_id,
                "epoch": self.epoch, "grace": self.grace}


_FAULT_KINDS = {
    "kill_at_epoch": KillAtEpoch,
    "drop_heartbeats": DropHeartbeats,
    "delay_send": DelaySend,
    "spot_revocation": SpotRevocation,
}


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule of one cluster run."""

    faults: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if type(fault) not in _FAULT_KINDS.values():
                raise TypeError(f"unknown fault type {type(fault).__name__}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_machine(self, machine_id: str) -> "FaultPlan":
        """The sub-plan shipped to one worker process."""
        return FaultPlan(
            tuple(f for f in self.faults if f.machine_id == machine_id)
        )

    def kill_epoch(self, machine_id: str) -> Optional[int]:
        """Earliest ``kill_at_epoch`` trigger for ``machine_id``."""
        epochs = [
            f.epoch
            for f in self.faults
            if isinstance(f, KillAtEpoch) and f.machine_id == machine_id
        ]
        return min(epochs) if epochs else None

    def heartbeat_drops(self, machine_id: str) -> List[DropHeartbeats]:
        return [
            f
            for f in self.faults
            if isinstance(f, DropHeartbeats) and f.machine_id == machine_id
        ]

    def send_delays(self, machine_id: str) -> List[DelaySend]:
        return [
            f
            for f in self.faults
            if isinstance(f, DelaySend) and f.machine_id == machine_id
        ]

    def spot_revocation(self, machine_id: str) -> Optional[SpotRevocation]:
        """Earliest-epoch spot revocation planned for ``machine_id``."""
        revocations = [
            f
            for f in self.faults
            if isinstance(f, SpotRevocation) and f.machine_id == machine_id
        ]
        if not revocations:
            return None
        return min(revocations, key=lambda f: f.epoch)

    # -------------------------------------------------------- serialisation

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [fault.to_dict() for fault in self.faults]

    @classmethod
    def from_dicts(cls, specs: List[Dict[str, Any]]) -> "FaultPlan":
        faults = []
        for spec in specs:
            spec = dict(spec)
            kind = spec.pop("kind", None)
            if kind not in _FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            faults.append(_FAULT_KINDS[kind](**spec))
        return cls(tuple(faults))

    @classmethod
    def parse(cls, kill: List[str] = (), drop_heartbeats: List[str] = (),
              delay_send: List[str] = (), revoke: List[str] = ()) -> "FaultPlan":
        """Build a plan from CLI-style fault strings.

        Formats::

            --kill            machine-01@epoch:3
            --drop-heartbeats machine-02@after:5,count:4
            --delay-send      machine-00@seconds:0.2[,after:10]
            --revoke          machine-03@epoch:4[,grace:30]
        """
        faults: List[Any] = []
        for text in kill:
            machine_id, params = _split_spec(text, "kill")
            faults.append(KillAtEpoch(machine_id, int(_require(params, "epoch", "kill"))))
        for text in drop_heartbeats:
            machine_id, params = _split_spec(text, "drop-heartbeats")
            faults.append(DropHeartbeats(
                machine_id,
                after=int(_require(params, "after", "drop-heartbeats")),
                count=int(_require(params, "count", "drop-heartbeats")),
            ))
        for text in delay_send:
            machine_id, params = _split_spec(text, "delay-send")
            faults.append(DelaySend(
                machine_id,
                seconds=float(_require(params, "seconds", "delay-send")),
                after=int(params.get("after", 0)),
            ))
        for text in revoke:
            machine_id, params = _split_spec(text, "revoke")
            faults.append(SpotRevocation(
                machine_id,
                epoch=int(_require(params, "epoch", "revoke")),
                grace=float(params.get("grace", 30.0)),
            ))
        return cls(tuple(faults))


def _split_spec(text: str, flag: str):
    machine_id, sep, rest = text.partition("@")
    if not sep or not machine_id or not rest:
        raise ValueError(
            f"bad --{flag} spec {text!r}: expected machine-id@key:value[,...]"
        )
    params: Dict[str, str] = {}
    for part in rest.split(","):
        key, sep, value = part.partition(":")
        if not sep or not key or not value:
            raise ValueError(f"bad --{flag} parameter {part!r} in {text!r}")
        params[key.strip()] = value.strip()
    return machine_id, params


def _require(params: Dict[str, str], key: str, flag: str) -> str:
    if key not in params:
        raise ValueError(f"--{flag} spec is missing required {key!r}")
    return params[key]
