"""The cluster runtime: scheduler at the head, Node Agents in worker
processes.

This is the closest the repo gets to the paper's deployed shape (§4):
the Job & Resource Manager (our :class:`HyperDriveScheduler`) runs in
the head process and drives per-machine Node Agents over a network
protocol.  Every worker is a real OS process hosting a real
:class:`~repro.framework.node_agent.NodeAgent`; the head talks to it
through :class:`~repro.cluster.agent.RemoteAgent` proxies over the
framed TCP transport.

Control flow mirrors :mod:`repro.runtime.local` exactly — one driver
thread per machine, training outside the scheduler lock, scaled-wall
sleeps for epoch durations — so live and cluster results are directly
comparable.  What the cluster adds:

* **Membership** — heartbeats detect dead or silent workers
  (:mod:`repro.cluster.membership`).
* **Failure recovery** — a dead node's job is suspended, its history
  truncated to the last snapshot, and the POP policy reallocates it to
  a survivor, which resumes from the snapshot and pays its suspend
  latency again as resume cost.  Each job has a bounded retry budget;
  exhausting it terminates the job instead of migrating it forever.
* **Fault injection** — a :class:`~repro.cluster.faults.FaultPlan`
  ships deterministic kill/drop/delay triggers to the workers.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..autoscale import (
    ON_DEMAND,
    SPOT,
    Autoscaler,
    CostMeter,
    FleetControl,
    FleetOptions,
    machine_classes,
)
from ..curves.predictor import CurvePredictor
from ..framework.experiment import ExperimentResult, ExperimentSpec
from ..framework.scheduler import FollowUpAction, HyperDriveScheduler
from ..generators.base import ExhaustedSpaceError, HyperparameterGenerator
from ..observability import NULL_RECORDER
from ..observability.aggregator import TelemetryAggregator
from ..policies.base import SchedulingPolicy
from ..sim.runner import default_predictor
from ..workloads.base import EpochResult, Workload
from .agent import RemoteAgent
from .faults import FaultPlan
from .membership import HeartbeatMonitor
from .transport import TELEMETRY, ClusterTransport, NodeFailure
from .worker import worker_main

__all__ = ["run_cluster", "ClusterStartupError"]

logger = logging.getLogger(__name__)

_START = "start"
_STOP = "stop"


class ClusterStartupError(RuntimeError):
    """The worker fleet failed to assemble within the startup window."""


class _ClusterExperiment:
    """One cluster run: worker processes + head-side driver threads."""

    def __init__(
        self,
        workload: Workload,
        policy: SchedulingPolicy,
        spec: ExperimentSpec,
        predictor: CurvePredictor,
        time_scale: float,
        fault_plan: FaultPlan,
        recorder=None,
        heartbeat_interval: float = 0.1,
        miss_threshold: int = 3,
        retry_budget: int = 3,
        rpc_timeout: float = 60.0,
        startup_timeout: float = 30.0,
        cancel_event: Optional[threading.Event] = None,
        progress_hook: Optional[Callable] = None,
        progress_every_epochs: int = 50,
        setup_hook: Optional[Callable] = None,
        aggregator: Optional[TelemetryAggregator] = None,
        telemetry_interval: float = 0.25,
        fleet: Optional[FleetOptions] = None,
        fleet_control: Optional[FleetControl] = None,
    ) -> None:
        self.spec = spec
        self.time_scale = time_scale
        self.fault_plan = fault_plan
        self.retry_budget = retry_budget
        self.startup_timeout = startup_timeout
        self.cancel_event = cancel_event
        self.progress_hook = progress_hook
        self.progress_every_epochs = progress_every_epochs
        self.setup_hook = setup_hook
        self._workload = workload
        self._predictor = predictor
        self._t0 = time.monotonic()
        self.lock = threading.Lock()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._m_lock_wait = self.recorder.metrics.histogram(
            "runtime_lock_wait_seconds",
            help="Wall seconds driver threads waited on the scheduler lock",
        )
        self._m_migrations = self.recorder.metrics.counter(
            "cluster_migrations_total",
            help="Jobs rescheduled off dead nodes onto survivors",
        )
        self.transport = ClusterTransport()
        # Node Agents live in worker processes; the scheduler gets
        # socket proxies and must not build a head-side prediction
        # pool (predictions are remote, §5.2's distributed shape).
        self.scheduler = HyperDriveScheduler(
            workload=workload,
            policy=policy,
            spec=spec,
            clock=self._clock,
            predictor=None,
            recorder=recorder,
            agent_factory=lambda machine_id, **_ignored: RemoteAgent(
                machine_id, self.transport, rpc_timeout=rpc_timeout,
                clock=self._clock,
            ),
        )
        self.machine_ids = self.scheduler.resource_manager.machine_ids
        # ---- elastic fleet / cost metering (repro.autoscale) ----
        self.fleet = fleet
        self.fleet_control = fleet_control
        if fleet is not None and fleet.autoscale is not None:
            self._fleet_min, self._fleet_max = fleet.autoscale
        else:
            self._fleet_min = self._fleet_max = len(self.machine_ids)
        # Elastic runs boot only the minimum fleet; the rest of the
        # machine ledger stays drained until a grow spawns processes.
        self._initial_machines = self.machine_ids[: self._fleet_min]
        self._desired_capacity = len(self._initial_machines)
        # Once the broker starts steering capacity, the internal
        # demand autoscaler stands down.
        self._external_capacity: Optional[int] = None
        spot_fraction = fleet.spot_fraction if fleet is not None else 0.0
        self._classes = machine_classes(self.machine_ids, spot_fraction)
        self.cost_meter: Optional[CostMeter] = None
        self._fleet_autoscaler: Optional[Autoscaler] = None
        if fleet is not None:
            self.cost_meter = CostMeter(
                fleet.experiment_id,
                model=fleet.cost_model,
                budget_slot_hours=fleet.budget_slot_hours,
                recorder=self.recorder,
                cost_path=fleet.cost_path,
                exporter=fleet.cost_exporter,
            )
            if fleet.autoscale is not None:
                self._fleet_autoscaler = Autoscaler(
                    self._fleet_min,
                    self._fleet_max,
                    # Cooldown in wall seconds, scaled so fast-clock
                    # test runs still get a few control rounds.
                    cooldown_seconds=max(0.2, 5.0 * time_scale),
                )
                # Daemon hook: the broker's capacity sync discovers
                # this handle and routes pool grants through
                # request_capacity before resizing.
                self.scheduler.fleet_manager = self
        self._m_workers_up = self.recorder.metrics.gauge(
            "cost_workers_up", help="Worker processes alive, by machine class"
        )
        self._last_cost_clock: Optional[float] = None
        self._next_cost_record = 0.0
        self._budget_exhausted_logged = False
        # Head-local driver mailboxes: distinct from the machine topics,
        # which route over sockets once workers register.  Declared
        # before anything can send to them (no startup race).
        self._drive = {
            machine_id: self.transport.declare_topic(f"drive/{machine_id}")
            for machine_id in self.machine_ids
        }
        self._membership_box = self.transport.declare_topic("membership")
        # Workers ship telemetry unconditionally; the mailbox is always
        # declared so the frames never trip strict delivery.  They are
        # only *used* when an aggregator exists.
        self._telemetry_box = self.transport.declare_topic(TELEMETRY)
        self.telemetry_interval = telemetry_interval
        if aggregator is None and self.recorder.enabled:
            aggregator = TelemetryAggregator()
        self.aggregator = aggregator
        if self.aggregator is not None:
            self.aggregator.on_event = self._on_shipped_event
        self.heartbeat = HeartbeatMonitor(
            self.transport,
            self._initial_machines,
            interval=heartbeat_interval,
            miss_threshold=miss_threshold,
            recorder=self.recorder,
        )
        self.stop_event = threading.Event()
        self._threads: List[threading.Thread] = []
        self._processes: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._retries: Dict[str, int] = {}
        # Jobs knocked off dead machines, awaiting their restart (the
        # policy may resume them immediately or queue them until a
        # survivor frees up).  Guarded by the scheduler lock.
        self._displaced: Dict[str, Dict[str, float]] = {}
        # Resume latency charged to a machine's next epoch after it
        # picks up a migrated job (guarded by the scheduler lock).
        self._resume_charges: Dict[str, float] = {}

    # ----------------------------------------------------------------- time

    def _clock(self) -> float:
        return (time.monotonic() - self._t0) / self.time_scale

    def _sleep(self, simulated_seconds: float) -> None:
        self.stop_event.wait(max(simulated_seconds, 0.0) * self.time_scale)

    @contextmanager
    def _locked(self):
        if self.recorder.enabled:
            waited = time.perf_counter()
            self.lock.acquire()
            self._m_lock_wait.observe(time.perf_counter() - waited)
        else:
            self.lock.acquire()
        try:
            yield
        finally:
            self.lock.release()

    # ------------------------------------------------------------ telemetry

    def _on_shipped_event(self, node: str, event: Dict[str, Any]) -> None:
        """Re-export a worker's shipped span/audit event, tagged with
        its node, into the head's journal (if one is attached)."""
        exporter = getattr(self.recorder, "exporter", None)
        if exporter is not None:
            exporter.export({**event, "node": node})

    def _drain_telemetry(self) -> None:
        messages = self._telemetry_box.drain()
        if self.aggregator is None:
            return
        for message in messages:
            self.aggregator.ingest(message.sender, message.payload)

    def _ingest_head(self) -> None:
        """Fold the head's own registry (scheduler, membership, bus
        gauges — including the node-labelled heartbeat RTT histogram)
        into the aggregator under ``node="head"``."""
        if self.aggregator is None or not self.recorder.enabled:
            return
        self.aggregator.ingest_registry(
            "head", self.recorder.metrics,
            meta={"heartbeat": self.heartbeat.snapshot()},
        )

    # ------------------------------------------------------------- start-up

    def _spawn_worker(self, machine_id: str) -> None:
        """Launch (or relaunch) one worker process for ``machine_id``."""
        host, port = self.transport.address
        context = multiprocessing.get_context("spawn")
        # Seed by ledger position, not spawn order, so a respawned
        # machine trains identically to its first incarnation.
        index = self.machine_ids.index(machine_id)
        process = context.Process(
            target=worker_main,
            args=(
                host,
                port,
                machine_id,
                self._workload,
                self._predictor,
                self.spec.seed + index,
                self.fault_plan.for_machine(machine_id).to_dicts(),
                self.time_scale,
                self.telemetry_interval,
            ),
            name=f"cluster-worker-{machine_id}",
            daemon=True,
        )
        process.start()
        self._processes[machine_id] = process

    def spawn_workers(self) -> None:
        """Start the transport and launch the initial worker fleet."""
        self.transport.start()
        for machine_id in self._initial_machines:
            self._spawn_worker(machine_id)
        self.heartbeat.start()
        if not self.heartbeat.wait_all_up(self.startup_timeout):
            missing = [
                machine_id
                for machine_id in self._initial_machines
                if not self.heartbeat.is_up(machine_id)
            ]
            raise ClusterStartupError(
                f"workers never registered within {self.startup_timeout}s: "
                + ", ".join(missing)
            )
        # Membership callbacks attach only after the startup barrier, so
        # the initial hellos do not masquerade as recoveries.
        self.heartbeat.on_down = self._on_down_signal
        self.heartbeat.on_up = self._on_up_signal
        self.heartbeat.on_departed = self._on_departed_signal

    # ------------------------------------------------------------ membership

    def _on_down_signal(self, machine_id: str) -> None:
        """Heartbeat verdict: fail RPCs *now*, defer the scheduler work.

        Runs on a transport reader thread (socket death) or the
        heartbeat thread (miss threshold).  ``mark_dead`` happens here,
        before anything queues, so a driver blocked in an RPC against
        this node wakes with :class:`NodeFailure` within its poll slice
        instead of waiting out its timeout.  The migration itself runs
        on the membership thread: it issues RPCs of its own, and those
        must never execute on a connection's reader thread (the reply
        would have to be delivered by the very thread awaiting it).
        """
        self.scheduler.agents[machine_id].mark_dead()
        self.transport.send("membership", "down", machine_id, sender="heartbeat")

    def _on_up_signal(self, machine_id: str) -> None:
        self.transport.send("membership", "up", machine_id, sender="heartbeat")

    def _on_departed_signal(self, machine_id: str, reason: str) -> None:
        """An *announced* departure (drain, spot revocation) landed."""
        self.scheduler.agents[machine_id].mark_dead()
        self.transport.send(
            "membership",
            "departed",
            {"machine_id": machine_id, "reason": reason},
            sender="heartbeat",
        )

    def _membership_loop(self) -> None:
        """Serialise node up/down handling off the transport threads."""
        while not self.stop_event.is_set():
            message = self._membership_box.get(timeout=0.02)
            if message is None:
                continue
            if message.kind == "down":
                self._node_down(message.payload)
            elif message.kind == "up":
                self._node_up(message.payload)
            elif message.kind == "revocation":
                payload = message.payload or {}
                self._node_revoked(
                    payload["machine_id"],
                    float(payload.get("grace", 0.0)),
                    source="worker",
                )
            elif message.kind == "departed":
                payload = message.payload or {}
                self._node_departed(
                    payload["machine_id"], payload.get("reason", "")
                )

    def _node_down(self, machine_id: str) -> None:
        """A worker died or went silent: free its slot, migrate its job."""
        agent: RemoteAgent = self.scheduler.agents[machine_id]
        agent.mark_dead()
        if self.stop_event.is_set():
            return
        with self._locked():
            if self.scheduler.resource_manager.is_failed(machine_id):
                return  # raced with another down-path for the same node
            displaced = agent.job_id
            self.scheduler.machine_failed(machine_id)
            agent.forget()
            if displaced is not None:
                self._retries[displaced] = self._retries.get(displaced, 0) + 1
                if self._retries[displaced] > self.retry_budget:
                    # The job keeps landing on dying machines; stop
                    # feeding it slots.
                    self._displaced.pop(displaced, None)
                    self.scheduler.job_manager.terminate_job(displaced)
                    self.scheduler.appstat_db.drop_snapshot(displaced)
                    self.recorder.audit.record(
                        "cluster_retry_budget_exhausted",
                        job_id=displaced,
                        machine_id=machine_id,
                        retries=self._retries[displaced],
                    )
                else:
                    snapshot = self.scheduler.appstat_db.load_snapshot(displaced)
                    self._displaced[displaced] = {
                        "resume_epoch": snapshot.epoch if snapshot else 0,
                        "resume_latency": snapshot.latency if snapshot else 0.0,
                    }
            if self.scheduler.done:
                started = []
            else:
                self.scheduler.policy.allocate_jobs()
                started = self._take_started()
        self._notify_started(started)

    def _node_up(self, machine_id: str) -> None:
        """A down node answered again (reconnect or resumed pongs)."""
        agent: RemoteAgent = self.scheduler.agents[machine_id]
        if self.stop_event.is_set():
            return
        with self._locked():
            # Always re-arm RPCs: a freshly (re)spawned scale-up worker
            # says hello while its machine is still parked drained — it
            # is not "failed", but its agent must accept calls again.
            agent.mark_alive()
            if not self.scheduler.resource_manager.is_failed(machine_id):
                return
            self.scheduler.machine_recovered(machine_id)
            started = self._take_started()
        self._notify_started(started)

    def _node_revoked(
        self, machine_id: str, grace: float, source: str = "worker"
    ) -> None:
        """A spot revocation notice arrived: migrate before the kill.

        The machine is marked as an *expected* departure (so its death
        is not a failure), then gracefully evicted: its job suspends at
        the next epoch boundary through the normal drain path — losing
        zero epochs — and resumes from the snapshot on a survivor.
        Quarantine keeps capacity grows from resurrecting the doomed
        instance between the notice and the kill.
        """
        if self.stop_event.is_set():
            return
        self.recorder.audit.record(
            "cluster_spot_revocation",
            machine_id=machine_id,
            grace=grace,
            source=source,
        )
        self.heartbeat.expect_departure(machine_id, "spot_revocation")
        with self._locked():
            if self.scheduler.resource_manager.is_failed(machine_id):
                return
            self.scheduler.evict_machine(machine_id, quarantine=True)

    def _node_departed(self, machine_id: str, reason: str) -> None:
        """An announced departure completed (the process is gone)."""
        agent: RemoteAgent = self.scheduler.agents[machine_id]
        agent.mark_dead()
        if self.stop_event.is_set():
            return
        if agent.job_id is not None:
            # The grace window was shorter than the epoch boundary: the
            # job never migrated off.  That *is* a failure — fall back
            # to the truncate-to-snapshot migration path.
            self._node_down(machine_id)
            return
        # Clean exit: the job (if any) already moved; just stop
        # tracking the corpse.  The machine stays drained in the RM —
        # quarantined (revoked) machines are never resurrected, drained
        # ones may be respawned by a later grow.
        self.heartbeat.remove_node(machine_id)

    def _take_started(self) -> List[str]:
        """Collect newly started machines; settle displaced-job landings.

        Called under the scheduler lock.  A job knocked off a dead node
        may restart immediately (a survivor was idle) or minutes later
        (the policy queued it) — either way its first restart passes
        through here, where the snapshot's suspend latency is charged
        to the new machine as resume cost and the migration is audited.
        """
        started = self.scheduler.take_started_machines()
        for machine_id in started:
            job_id = self.scheduler.agents[machine_id].job_id
            if job_id is None or job_id not in self._displaced:
                continue
            charge = self._displaced.pop(job_id)
            self._resume_charges[machine_id] = charge["resume_latency"]
            self._m_migrations.inc()
            self.recorder.audit.record(
                "cluster_migration",
                job_id=job_id,
                machine_id=machine_id,
                resume_epoch=charge["resume_epoch"],
                resume_latency=charge["resume_latency"],
            )
        return started

    # -------------------------------------------------------------- drivers

    def _notify_started(self, started: Sequence[str]) -> None:
        for machine_id in started:
            self.transport.send(
                f"drive/{machine_id}", _START, None, sender="scheduler"
            )

    def _driver(self, machine_id: str) -> None:
        mailbox = self._drive[machine_id]
        while not self.stop_event.is_set():
            message = mailbox.get(timeout=0.02)
            if message is None:
                continue
            if message.kind == _STOP:
                return
            try:
                self._run_assignment(machine_id)
            except NodeFailure:
                # The node died under us; membership handles recovery.
                continue

    def _run_assignment(self, machine_id: str) -> None:
        """Drive the hosted job epoch by epoch (the live runtime's loop,
        with every agent call crossing the wire)."""
        agent: RemoteAgent = self.scheduler.agents[machine_id]
        tracer = self.recorder.tracer
        with self._locked():
            extra_delay = self._resume_charges.pop(machine_id, 0.0)
        scale = 1.0
        while not self.stop_event.is_set():
            if agent.run is None:
                return
            # One root span per epoch: the train RPC it issues carries
            # this trace id to the worker, and the settlement's
            # ``scheduler.process_epoch`` span nests inside it — head
            # scheduler → worker epoch → head settlement, one trace.
            with tracer.span(
                "cluster.epoch",
                machine_id=machine_id,
                job_id=agent.job_id or "",
            ) as epoch_span:
                raw = agent.train_epoch()
                epoch_span.set(epoch=raw.epoch)
                result = EpochResult(
                    epoch=raw.epoch,
                    duration=raw.duration
                    * scale
                    / self.scheduler.machine_speed(machine_id),
                    metric=raw.metric,
                    done=raw.done,
                    extras=raw.extras,
                )
                self._sleep(extra_delay + result.duration)
                if self.stop_event.is_set():
                    return
                with self._locked():
                    if agent.dead or agent.job_id is None:
                        # Declared dead while we slept out the epoch;
                        # the result belongs to a failed machine and
                        # must not be recorded.
                        return
                    followup = self.scheduler.process_epoch(machine_id, result)
                    started = self._take_started()
            self._notify_started(started)

            if followup.action is FollowUpAction.NEXT_EPOCH:
                extra_delay, scale = followup.delay, followup.epoch_scale
                continue
            if followup.action is FollowUpAction.RELEASE_MACHINE:
                self._sleep(followup.delay)
                if self.stop_event.is_set():
                    return
                with self._locked():
                    if self.scheduler.resource_manager.is_failed(machine_id):
                        return
                    self.scheduler.machine_released(machine_id)
                    started = self._take_started()
                self._notify_started(started)
                return
            # EXPERIMENT_DONE
            self.stop_event.set()
            return

    # ------------------------------------------------------------------ run

    def run(self) -> ExperimentResult:
        self.spawn_workers()
        membership = threading.Thread(
            target=self._membership_loop, name="cluster-membership", daemon=True
        )
        membership.start()
        self._threads.append(membership)
        with self.lock:
            if len(self._initial_machines) < len(self.machine_ids):
                # Elastic start: only the booted minimum is in service;
                # the rest of the ledger waits drained for a grow.
                self.scheduler.resize(len(self._initial_machines))
            if self.setup_hook is not None:
                self.setup_hook(self.scheduler)
            self.scheduler.begin()
            started = self._take_started()
        for machine_id in self.machine_ids:
            thread = threading.Thread(
                target=self._driver,
                args=(machine_id,),
                name=f"cluster-driver-{machine_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._notify_started(started)
        try:
            self._monitor()
        except BaseException:
            self._shutdown(strict=False)
            raise
        self._shutdown(strict=True)
        if self.cost_meter is not None:
            self._meter_costs(publish=True)
            self.cost_meter.close()
        with self.lock:
            return self.scheduler.finalize()

    def _monitor(self) -> None:
        deadline = time.monotonic() + self.spec.tmax * self.time_scale + 30.0
        last_progress = 0
        next_head_ingest = 0.0
        while not self.stop_event.is_set() and time.monotonic() < deadline:
            time.sleep(0.02)
            if self.cancel_event is not None and self.cancel_event.is_set():
                return
            if self.recorder.enabled:
                self.transport.export_metrics(self.recorder.metrics)
            self._drain_telemetry()
            now = time.monotonic()
            if now >= next_head_ingest:
                next_head_ingest = now + self.telemetry_interval
                self._ingest_head()
            if self.fleet is not None:
                self._fleet_tick()
            with self.lock:
                quiescent = (
                    self.scheduler.resource_manager.num_busy == 0
                    and self.scheduler.job_manager.num_idle == 0
                )
                epochs = self.scheduler.result.epochs_trained
                started: Sequence[str] = ()
                if (
                    self.progress_hook is not None
                    and epochs - last_progress >= self.progress_every_epochs
                ):
                    last_progress = epochs
                    self.progress_hook(self.scheduler)
                    # A hook may resize the pool (broker sync): jobs
                    # started on regrown machines need their wake-up.
                    started = self._take_started()
            self._notify_started(started)
            if quiescent:
                return
            if self.heartbeat.nodes_up == 0:
                # The whole fleet is gone; nothing can make progress.
                logger.error("all cluster nodes are down; aborting run")
                return

    # ---------------------------------------------------------------- fleet

    def request_capacity(self, target: int) -> int:
        """Steer the fleet toward ``target`` machines (broker sync hook).

        Called under the scheduler lock from the daemon's capacity
        sync.  Shrinks apply immediately (the caller resizes the
        scheduler; drained processes are reaped by the monitor);
        grows are deferred until real worker processes have booted.
        Returns the capacity the caller may resize to *right now*.
        """
        clamped = max(self._fleet_min, min(self._fleet_max, target))
        self._desired_capacity = clamped
        self._external_capacity = clamped
        rm = self.scheduler.resource_manager
        in_service = rm.num_in_service
        if clamped <= in_service:
            return clamped
        # Grow: only machines that are already up can join immediately
        # — and only as the resurrection-order prefix, since that is
        # the order set_target_capacity will un-drain them in.
        extra = 0
        for machine_id in rm.drained_machines:
            if rm.is_quarantined(machine_id):
                continue
            if not self.heartbeat.is_up(machine_id):
                break
            extra += 1
            if in_service + extra >= clamped:
                break
        return min(clamped, in_service + extra)

    def _fleet_tick(self) -> None:
        """One monitor-loop round of fleet work: deliver head-initiated
        revocations, run the demand autoscaler, reconcile processes
        with the desired capacity, and meter cost."""
        if self.fleet_control is not None:
            for request in self.fleet_control.drain_revocations():
                self._deliver_revocation(request)
        if self._fleet_autoscaler is not None:
            if self._external_capacity is None:
                with self._locked():
                    rm = self.scheduler.resource_manager
                    size = rm.num_in_service
                    busy = rm.num_busy
                    queue_depth = self.scheduler.job_manager.num_idle
                decision = self._fleet_autoscaler.evaluate(
                    size=size, busy=busy, queue_depth=queue_depth
                )
                if decision is not None:
                    self._desired_capacity = decision.target
                    self.recorder.audit.record(
                        "autoscale",
                        scope="fleet",
                        target=decision.target,
                        direction=decision.direction,
                        reason=decision.reason,
                        pressure=round(decision.pressure, 4),
                    )
            self._reconcile_fleet()
        self._meter_costs()

    def _reconcile_fleet(self) -> None:
        """Drive processes and the scheduler toward the desired size."""
        target = self._desired_capacity
        rm = self.scheduler.resource_manager
        with self._locked():
            in_service = rm.num_in_service
            resurrectable = [
                machine_id
                for machine_id in rm.drained_machines
                if not rm.is_quarantined(machine_id)
            ]
        grow_prefix: List[str] = []
        if in_service < target:
            grow_prefix = resurrectable[: target - in_service]
            for machine_id in grow_prefix:
                process = self._processes.get(machine_id)
                if process is None or not process.is_alive():
                    self.heartbeat.add_node(machine_id)
                    self._spawn_worker(machine_id)
                    self.recorder.audit.record(
                        "cluster_node_spawned", machine_id=machine_id
                    )
            # Two-phase grow: resize only once every joining machine is
            # genuinely up, so the scheduler never assigns work to a
            # still-booting process.
            if grow_prefix and all(
                self.heartbeat.is_up(machine_id) for machine_id in grow_prefix
            ):
                with self._locked():
                    self.scheduler.resize(target)
                    started = self._take_started()
                self._notify_started(started)
        elif in_service > target:
            with self._locked():
                self.scheduler.resize(target)
        # Reap worker processes of machines that finished draining —
        # except those a pending grow is about to resurrect, and except
        # quarantined (revoked) machines, which die on their own timer.
        keep = set(grow_prefix)
        for machine_id in resurrectable:
            if machine_id in keep:
                continue
            process = self._processes.get(machine_id)
            if process is None or not process.is_alive():
                continue
            if not self.heartbeat.is_up(machine_id):
                continue  # still booting or already on its way out
            self.heartbeat.expect_departure(machine_id, "drain")
            agent: RemoteAgent = self.scheduler.agents[machine_id]
            try:
                agent.shutdown()
            except NodeFailure:
                pass
            self.recorder.audit.record(
                "cluster_node_reaped", machine_id=machine_id
            )

    def _deliver_revocation(self, request) -> None:
        """Turn one ``FleetControl`` revocation into a doomed worker."""
        rm = self.scheduler.resource_manager
        machine_id = request.machine_id
        if machine_id is None:
            candidates = [
                candidate
                for candidate, cls in sorted(self._classes.items())
                if cls == SPOT
                and self.heartbeat.is_up(candidate)
                and not rm.is_quarantined(candidate)
            ]
            machine_id = candidates[0] if candidates else None
        if machine_id is None or not self.heartbeat.is_up(machine_id):
            self.recorder.audit.record(
                "cluster_spot_revocation_skipped",
                machine_id=machine_id or "",
                reason="no eligible spot worker",
            )
            return
        grace = request.grace
        if grace is None:
            grace = self.fleet.grace_seconds if self.fleet else 30.0
        self._node_revoked(machine_id, grace, source="head")
        try:
            self.scheduler.agents[machine_id].revoke(grace)
        except (NodeFailure, RuntimeError):
            pass  # it died early; membership handles the fallout

    def _meter_costs(self, publish: bool = False) -> None:
        """Charge wall-metered machine-seconds (experiment clock) for
        every live worker process, and periodically journal a tick."""
        if self.cost_meter is None:
            return
        now = self._clock()
        last = self._last_cost_clock
        self._last_cost_clock = now
        up = {ON_DEMAND: 0, SPOT: 0}
        delta = now - last if last is not None else 0.0
        for machine_id, process in self._processes.items():
            if not process.is_alive():
                continue
            cls = self._classes[machine_id]
            up[cls] += 1
            if delta > 0:
                self.cost_meter.charge(cls, delta, machine_id)
        for cls, count in up.items():
            self._m_workers_up.set(float(count), **{"class": cls})
        if self.cost_meter.exhausted and not self._budget_exhausted_logged:
            self._budget_exhausted_logged = True
            spent = round(self.cost_meter.spent_dollars, 6)
            self.recorder.audit.record(
                "cost_budget_exhausted",
                experiment=self.cost_meter.exp_id,
                spent_dollars=spent,
            )
            self.cost_meter.record("budget_exhausted", spent_dollars=spent)
        wall = time.monotonic()
        if publish or wall >= self._next_cost_record:
            self._next_cost_record = wall + max(self.telemetry_interval, 0.25)
            self.cost_meter.record(
                "cost_tick",
                clock=round(now, 3),
                workers_up=dict(up),
                spent_dollars=round(self.cost_meter.spent_dollars, 6),
            )
            if self.fleet_control is not None:
                self.fleet_control.publish(
                    {
                        "workers_up": dict(up),
                        "desired_capacity": self._desired_capacity,
                        "classes": dict(self._classes),
                        "cost": self.cost_meter.summary(),
                    }
                )

    def _shutdown(self, strict: bool) -> None:
        self.stop_event.set()
        for machine_id in self.machine_ids:
            try:
                self.transport.send(
                    f"drive/{machine_id}", _STOP, None, sender="scheduler"
                )
            except KeyError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        stuck = [thread.name for thread in self._threads if thread.is_alive()]
        self.heartbeat.stop()
        for machine_id in self.machine_ids:
            agent: RemoteAgent = self.scheduler.agents[machine_id]
            if not agent.dead and self.transport.has_connection(machine_id):
                agent.shutdown()
        self.transport.close()
        for process in self._processes.values():
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        # Frames that arrived between the monitor's last drain and the
        # transport teardown (notably the workers' shutdown flushes) are
        # still queued; fold them in so the final export is complete.
        self._drain_telemetry()
        self._ingest_head()
        if stuck and strict:
            raise RuntimeError(
                "cluster driver threads failed to stop within 5s: "
                + ", ".join(stuck)
                + "; experiment state may be inconsistent"
            )


def run_cluster(
    workload: Workload,
    policy: SchedulingPolicy,
    generator: Optional[HyperparameterGenerator] = None,
    spec: Optional[ExperimentSpec] = None,
    predictor: Optional[CurvePredictor] = None,
    configs: Optional[Sequence[Dict[str, Any]]] = None,
    time_scale: float = 1e-3,
    fault_plan: Optional[FaultPlan] = None,
    recorder=None,
    heartbeat_interval: float = 0.1,
    miss_threshold: int = 3,
    retry_budget: int = 3,
    rpc_timeout: float = 60.0,
    startup_timeout: float = 30.0,
    cancel_event: Optional[threading.Event] = None,
    progress_hook: Optional[Callable] = None,
    progress_every_epochs: int = 50,
    setup_hook: Optional[Callable] = None,
    aggregator: Optional[TelemetryAggregator] = None,
    telemetry_interval: float = 0.25,
    fleet: Optional[FleetOptions] = None,
    fleet_control: Optional[FleetControl] = None,
) -> ExperimentResult:
    """Run one experiment on the multi-process cluster runtime.

    Args:
        workload: the training problem (must be picklable — it ships to
            worker processes at spawn).
        policy: the SAP under test (runs unchanged at the head).
        generator: HG minting configurations (or pass ``configs``).
        spec: experiment parameters; ``spec.num_machines`` worker
            processes are spawned.
        predictor: curve predictor, instantiated *in each worker*
            (§5.2's distributed prediction, now genuinely distributed).
        configs: explicit configuration list.
        time_scale: wall seconds per simulated second.
        fault_plan: deterministic fault injection schedule.
        recorder: observability facade; cluster membership, heartbeat
            RTT, and migration metrics land here.
        heartbeat_interval: seconds between ping rounds.
        miss_threshold: consecutive missed pings before a silent node
            is declared dead.
        retry_budget: migrations allowed per job before it is
            terminated instead of rescheduled.
        rpc_timeout: seconds before one head→worker call fails.
        startup_timeout: seconds to wait for the fleet to register.
        cancel_event / progress_hook / progress_every_epochs /
            setup_hook: as in :func:`repro.runtime.local.run_live`.
        aggregator: telemetry sink merging per-node registries shipped
            by the workers; auto-created whenever a real recorder is
            attached (pass your own to share one across runs, as the
            service daemon does).
        telemetry_interval: wall seconds between worker telemetry
            batches (and head self-ingests).
        fleet: elasticity and economics: ``autoscale=(min, max)``
            worker-process bounds (``max`` must equal
            ``spec.num_machines`` — the ledger is the upper bound),
            spot fraction, revocation grace, cost model and budget.
            ``None`` keeps the fixed-fleet, unmetered behaviour.
        fleet_control: live command/status handle (the daemon queues
            spot revocations and reads fleet status through it).

    Returns:
        The finalised :class:`ExperimentResult` on the simulated-seconds
        axis, comparable to ``run_live`` and ``run_simulation`` output.

    Raises:
        ClusterStartupError: a worker never said hello.
        RuntimeError: a driver thread failed to stop during shutdown.
    """
    if spec is None:
        spec = ExperimentSpec()
    if (generator is None) == (configs is None):
        raise ValueError("provide exactly one of generator or configs")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    if retry_budget < 0:
        raise ValueError("retry_budget must be >= 0")
    if progress_every_epochs < 1:
        raise ValueError("progress_every_epochs must be >= 1")
    if fleet is not None and fleet.autoscale is not None:
        if fleet.autoscale[1] != spec.num_machines:
            raise ValueError(
                "fleet.autoscale max must equal spec.num_machines "
                f"({fleet.autoscale[1]} != {spec.num_machines})"
            )

    experiment = _ClusterExperiment(
        workload=workload,
        policy=policy,
        spec=spec,
        predictor=predictor if predictor is not None else default_predictor(),
        time_scale=time_scale,
        fault_plan=fault_plan if fault_plan is not None else FaultPlan(),
        recorder=recorder,
        heartbeat_interval=heartbeat_interval,
        miss_threshold=miss_threshold,
        retry_budget=retry_budget,
        rpc_timeout=rpc_timeout,
        startup_timeout=startup_timeout,
        cancel_event=cancel_event,
        progress_hook=progress_hook,
        progress_every_epochs=progress_every_epochs,
        setup_hook=setup_hook,
        aggregator=aggregator,
        telemetry_interval=telemetry_interval,
        fleet=fleet,
        fleet_control=fleet_control,
    )
    if configs is not None:
        for index, config in enumerate(configs):
            experiment.scheduler.add_job(f"job-{index:04d}", config)
    else:
        assert generator is not None
        for _ in range(spec.num_configs):
            try:
                job_id, config = generator.create_job()
            except ExhaustedSpaceError:
                break
            experiment.scheduler.add_job(job_id, config)
    return experiment.run()
