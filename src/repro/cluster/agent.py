"""Head-side proxy with the Node Agent's exact surface.

The scheduler is constructed with an ``agent_factory`` that returns
:class:`RemoteAgent` instances instead of in-process
:class:`~repro.framework.node_agent.NodeAgent` objects.  Every method
becomes a synchronous RPC over the cluster transport; the scheduler and
the POP policy cannot tell the difference — the decoupling the paper
gets from GRPC (§5) and this repo demonstrates by running the same
experiment spec on both runtimes in one test.

Concurrency contract: one RPC at a time per machine (``_rpc_lock``),
matching the worker's serial mailbox loop.  Replies correlate by
sequence number; stale replies (from an RPC the head abandoned) are
discarded.  RPCs against a machine marked dead — or whose link dies
mid-call — raise :class:`~repro.cluster.transport.NodeFailure`, which
the cluster runtime's driver threads catch outside the scheduler lock.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from ..curves.predictor import CurvePrediction
from ..framework.snapshot import Snapshot
from ..observability.tracing import current_trace
from ..workloads.base import EpochResult
from .transport import ClusterTransport, NodeFailure
from .worker import RPC, RPC_REPLY, snapshot_from_wire, snapshot_to_wire

import numpy as np

__all__ = ["RemoteAgent"]


class _RunView:
    """Stands in for ``agent.run``: the scheduler only reads ``finished``."""

    __slots__ = ("finished",)

    def __init__(self, finished: bool) -> None:
        self.finished = finished


class RemoteAgent:
    """Node-Agent surface whose implementation lives in a worker process."""

    def __init__(
        self,
        machine_id: str,
        transport: ClusterTransport,
        rpc_timeout: float = 60.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.machine_id = machine_id
        self._transport = transport
        self._timeout = rpc_timeout
        # Experiment clock shipped on every RPC so the worker can stamp
        # its spans on the head's time axis.
        self._clock = clock
        self._reply_topic = f"reply/{machine_id}"
        self._replies = transport.declare_topic(self._reply_topic)
        self._rpc_lock = threading.Lock()
        self._seq = 0
        self._dead = threading.Event()
        self._job_id: Optional[str] = None
        self._run_finished = False
        self.predictions_made = 0

    # ----------------------------------------------------------- membership

    def mark_dead(self) -> None:
        """Fail any in-flight and future RPCs against this machine."""
        self._dead.set()

    def mark_alive(self) -> None:
        """Re-arm after the node recovered (reconnect / resumed pongs)."""
        self._dead.clear()

    @property
    def dead(self) -> bool:
        return self._dead.is_set()

    # -------------------------------------------------- Node Agent surface

    @property
    def busy(self) -> bool:
        return self._job_id is not None

    @property
    def job_id(self) -> Optional[str]:
        return self._job_id

    @property
    def run(self) -> Optional[_RunView]:
        if self._job_id is None:
            return None
        return _RunView(self._run_finished)

    def assign(
        self,
        job_id: str,
        config: Dict[str, Any],
        seed: int = 0,
        snapshot: Optional[Snapshot] = None,
    ) -> None:
        if self.busy:
            raise RuntimeError(
                f"{self.machine_id} already hosts job {self._job_id!r}"
            )
        self._call(
            "assign",
            job_id=job_id,
            config=dict(config),
            seed=seed,
            snapshot=snapshot_to_wire(snapshot),
        )
        self._job_id = job_id
        self._run_finished = False

    def train_epoch(self) -> EpochResult:
        value = self._call("train_epoch")
        self._run_finished = bool(value["run_finished"])
        return EpochResult(
            epoch=int(value["epoch"]),
            duration=float(value["duration"]),
            metric=float(value["metric"]),
            done=bool(value["done"]),
            extras=dict(value.get("extras") or {}),
        )

    def capture_snapshot(self) -> Snapshot:
        snapshot = snapshot_from_wire(self._call("capture_snapshot"))
        assert snapshot is not None
        return snapshot

    def predict(self, n_future: int) -> CurvePrediction:
        value = self._call("predict", n_future=n_future)
        self.predictions_made += 1
        return CurvePrediction(
            observed=np.asarray(value["observed"], dtype=float),
            horizon=np.asarray(value["horizon"]),
            samples=np.asarray(value["samples"], dtype=float),
        )

    @property
    def curve_history(self) -> List[float]:
        return list(self._call("curve_history"))

    def release(self) -> None:
        self._job_id = None
        self._run_finished = False
        if self._dead.is_set():
            return  # nothing to tell a dead node
        try:
            self._call("release")
        except NodeFailure:
            # Released *because* the node died: local bookkeeping above
            # is all that matters.
            pass

    def forget(self) -> None:
        """Drop local job state without an RPC (node died mid-job)."""
        self._job_id = None
        self._run_finished = False

    def shutdown(self) -> None:
        """Ask the worker process to exit its loop (best effort)."""
        try:
            self._call("shutdown", timeout=5.0)
        except NodeFailure:
            pass

    def revoke(self, grace: float) -> None:
        """Arm a head-initiated spot kill ``grace`` experiment-seconds
        out (the worker dies silently; the head already knows)."""
        self._call("revoke", grace=grace)

    # ------------------------------------------------------------- internal

    def _call(self, method: str, timeout: Optional[float] = None, **args: Any) -> Any:
        deadline = timeout if timeout is not None else self._timeout
        context = current_trace()
        trace: Optional[Dict[str, Any]] = None
        if context is not None or self._clock is not None:
            trace = {} if context is None else dict(context.to_dict())
            if self._clock is not None:
                trace["clock"] = self._clock()
        with self._rpc_lock:
            if self._dead.is_set():
                raise NodeFailure(self.machine_id, "node is down")
            self._seq += 1
            seq = self._seq
            self._transport.send(
                self.machine_id,
                RPC,
                {"seq": seq, "method": method, "args": args},
                sender="head",
                trace=trace,
            )
            return self._await_reply(seq, method, deadline)

    def _await_reply(self, seq: int, method: str, deadline: float) -> Any:
        remaining = deadline
        poll = 0.1
        while remaining > 0:
            if self._dead.is_set():
                raise NodeFailure(self.machine_id, f"died during rpc {method!r}")
            wait = min(poll, remaining)
            message = self._replies.get(timeout=wait)
            remaining -= wait
            if message is None:
                continue
            payload = message.payload or {}
            if payload.get("seq") != seq:
                continue  # stale reply from an abandoned call
            if not payload.get("ok"):
                raise RuntimeError(
                    f"rpc {method!r} on {self.machine_id} failed: "
                    f"{payload.get('error')}"
                )
            return payload.get("value")
        raise NodeFailure(self.machine_id, f"rpc {method!r} timed out")
