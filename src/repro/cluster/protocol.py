"""Wire protocol for the cluster runtime (the GRPC stand-in, §5).

Frames are length-prefixed JSON documents over a TCP stream: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Every frame carries the :class:`~repro.framework.transport.Message`
envelope fields (``topic``, ``kind``, ``payload``, ``sender``) so the
socket hop preserves the in-process bus discipline exactly.  Frames
may additionally carry a ``trace`` field — the sender's trace context
(``{"trace_id", "span_id"}``, plus the head's experiment clock on
RPCs) — so spans recorded on either side of the socket join one
distributed trace (see ``docs/observability.md``).

Payloads may contain numpy arrays and scalars (model weights inside
suspend snapshots, curve-prediction sample matrices); those are encoded
as tagged JSON objects::

    {"__nd__": {"dtype": "float64", "shape": [3, 2], "data": "<base64>"}}
    {"__bytes__": "<base64>"}

so the protocol stays inspectable with ``nc``/``tcpdump`` while still
round-tripping binary state bit-exactly.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_payload",
    "decode_payload",
    "pack_frame",
    "send_frame",
    "recv_frame",
]

#: Upper bound on one frame's body.  CRIU-style snapshots reach ~44 MB
#: (Fig. 10); 256 MB leaves headroom while catching corrupt length
#: prefixes before they turn into absurd allocations.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(ConnectionError):
    """The stream ended mid-frame or carried a malformed frame."""


def encode_payload(value: Any) -> Any:
    """Recursively map a payload onto JSON-representable values."""
    if isinstance(value, np.ndarray):
        return {
            "__nd__": {
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode("ascii"),
            }
        }
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(key): encode_payload(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_payload(item) for item in value]
    return value


def decode_payload(value: Any) -> Any:
    """Invert :func:`encode_payload` (tagged objects back to binary)."""
    if isinstance(value, dict):
        if set(value) == {"__nd__"}:
            spec = value["__nd__"]
            raw = base64.b64decode(spec["data"])
            array = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
            return array.reshape(spec["shape"]).copy()
        if set(value) == {"__bytes__"}:
            return base64.b64decode(value["__bytes__"])
        return {key: decode_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_payload(item) for item in value]
    return value


def pack_frame(document: Dict[str, Any]) -> bytes:
    """Serialise one frame (length prefix + JSON body)."""
    body = json.dumps(encode_payload(document), separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds protocol maximum")
    return _LENGTH.pack(len(body)) + body


def send_frame(sock: socket.socket, document: Dict[str, Any]) -> None:
    """Write one frame to ``sock`` (atomic from the reader's view)."""
    sock.sendall(pack_frame(document))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None  # clean EOF on a frame boundary
            raise FrameError("stream ended mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame, or None on clean EOF.

    Raises:
        FrameError: on a truncated stream, an oversized length prefix,
            or a body that is not a JSON object.
    """
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds protocol maximum")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("stream ended mid-frame")
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame body: {exc}") from exc
    if not isinstance(document, dict):
        raise FrameError("frame body must be a JSON object")
    return decode_payload(document)
