"""Multi-process cluster runtime (the paper's deployed shape, §4-5).

Node Agents run in separate worker processes behind a length-prefixed
JSON protocol over TCP; the head process runs the unchanged
:class:`~repro.framework.scheduler.HyperDriveScheduler` against
socket-backed agent proxies, with heartbeat failure detection and
snapshot-based job migration off dead nodes.
"""

from .agent import RemoteAgent
from .faults import (
    DelaySend,
    DropHeartbeats,
    FaultPlan,
    KillAtEpoch,
    SpotRevocation,
)
from .membership import HeartbeatMonitor, NodeState
from .protocol import (
    FrameError,
    decode_payload,
    encode_payload,
    pack_frame,
    recv_frame,
    send_frame,
)
from .runtime import ClusterStartupError, run_cluster
from .transport import ClusterTransport, NodeFailure, WorkerEndpoint

__all__ = [
    "run_cluster",
    "ClusterStartupError",
    "RemoteAgent",
    "ClusterTransport",
    "WorkerEndpoint",
    "NodeFailure",
    "HeartbeatMonitor",
    "NodeState",
    "FaultPlan",
    "KillAtEpoch",
    "DropHeartbeats",
    "DelaySend",
    "SpotRevocation",
    "FrameError",
    "encode_payload",
    "decode_payload",
    "pack_frame",
    "send_frame",
    "recv_frame",
]
