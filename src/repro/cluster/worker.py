"""The worker process: a real Node Agent behind an RPC mailbox.

Each cluster worker is one OS process hosting one
:class:`~repro.framework.node_agent.NodeAgent` — the paper's
per-machine execution daemon (§4.2 ➅) — behind a
:class:`~repro.cluster.transport.WorkerEndpoint`.  The head drives it
with ``rpc`` frames mirroring the agent's method surface
(``assign`` / ``train_epoch`` / ``capture_snapshot`` / ``predict`` /
``release`` / ``shutdown``); the worker processes requests serially
from its mailbox and replies to the head-local ``reply/<machine-id>``
topic.

Observability: each worker owns a full
:class:`~repro.observability.recorder.Recorder` — metrics registry,
span tracer on a head-synchronised experiment clock, audit trail — and
a :class:`TelemetryShipper` thread that periodically ships metric
snapshots plus span/audit deltas to the head as TELEMETRY frames.  RPC
frames carry the head's trace context (and experiment clock); the
worker re-activates it around dispatch so ``worker.train_epoch`` and
the agent's snapshot/predict spans join the head-minted trace.

Fault injection hooks live here and in the endpoint:

* ``kill_at_epoch`` — after the agent finishes its N-th epoch *in this
  process*, the worker SIGKILLs itself before replying, so the epoch's
  work is genuinely lost (the head must fall back to the last
  snapshot).
* ``spot_revocation`` — after the agent finishes its N-th epoch the
  worker sends a ``revocation`` notice to the head's membership topic
  and arms a SIGKILL ``grace`` experiment-seconds out; the head uses
  the window to migrate the job off before the kill lands.
* ``drop_heartbeats`` / ``delay_send`` — enforced inside
  :class:`~repro.cluster.transport.WorkerEndpoint`.

Workers are spawned with the ``spawn`` multiprocessing context: a fresh
interpreter imports this module and calls :func:`worker_main` with
picklable arguments (workload, predictor, fault sub-plan).
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from typing import Any, Dict, Optional

from ..curves.predictor import CurvePrediction, CurvePredictor
from ..framework.node_agent import NodeAgent
from ..framework.snapshot import Snapshot, cost_model_for_domain
from ..observability import Recorder
from ..observability.tracing import TraceContext, trace_context
from ..workloads.base import Workload
from .faults import FaultPlan, SpotRevocation
from .transport import TELEMETRY, NodeFailure, WorkerEndpoint

__all__ = [
    "worker_main",
    "snapshot_to_wire",
    "snapshot_from_wire",
    "TelemetryShipper",
]

logger = logging.getLogger(__name__)

RPC = "rpc"
RPC_REPLY = "rpc_reply"


class _WorkerClock:
    """The head's experiment clock, reconstructed worker-side.

    Every RPC envelope carries the head's clock reading; the worker
    anchors there and extrapolates between RPCs by scaled wall time, so
    worker spans land on the same time axis as head spans (modulo one
    network hop of skew — fine for timelines, not for ordering proofs).
    """

    __slots__ = ("_time_scale", "_base", "_anchored_at")

    def __init__(self, time_scale: float) -> None:
        self._time_scale = time_scale
        self._base = 0.0
        self._anchored_at = time.monotonic()

    def sync(self, head_clock: float) -> None:
        self._base = float(head_clock)
        self._anchored_at = time.monotonic()

    def __call__(self) -> float:
        elapsed = time.monotonic() - self._anchored_at
        return self._base + elapsed / self._time_scale


class TelemetryShipper:
    """Ships a node's telemetry to the head on a fixed wall interval.

    Metrics go as full snapshots (latest wins at the aggregator, so a
    lost frame costs staleness, not correctness); finished spans and
    audit records go as deltas tracked by list cursors.  A failed send
    leaves the cursors untouched — the next tick retries the same
    delta.  Shipping must never hurt the worker: every failure is
    swallowed (logged at debug level).
    """

    def __init__(
        self,
        endpoint: WorkerEndpoint,
        recorder: Recorder,
        interval: float = 0.25,
    ) -> None:
        self._endpoint = endpoint
        self._recorder = recorder
        self.interval = interval
        self._seq = 0
        self._spans_sent = 0
        self._audit_sent = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop,
            name=f"telemetry-{self._endpoint.machine_id}",
            daemon=True,
        )
        self._thread.start()

    def stop(self, flush: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if flush:
            self.ship()

    def _loop(self) -> None:
        # First batch immediately: the node announces itself to the
        # aggregator as soon as it is up, so even a worker that dies
        # young (kill_at_epoch faults, real crashes) leaves a record.
        self.ship()
        while not self._stop.wait(self.interval):
            self.ship()

    def ship(self) -> bool:
        """Send one batch; True on success (cursors advanced)."""
        try:
            spans = self._recorder.tracer.spans
            audit = self._recorder.audit.records
            new_spans = [s.to_dict() for s in spans[self._spans_sent:]]
            new_audit = [r.to_dict() for r in audit[self._audit_sent:]]
            batch = {
                "seq": self._seq,
                "metrics": self._recorder.metrics.to_dict(),
                "spans": new_spans,
                "audit": new_audit,
            }
            self._endpoint.send(TELEMETRY, TELEMETRY, batch)
        except NodeFailure:
            return False  # link down; retry the same delta next tick
        except Exception:  # noqa: BLE001 — telemetry must not kill training
            logger.debug("telemetry batch failed", exc_info=True)
            return False
        self._seq += 1
        self._spans_sent += len(new_spans)
        self._audit_sent += len(new_audit)
        return True


def snapshot_to_wire(snapshot: Optional[Snapshot]) -> Optional[Dict[str, Any]]:
    """Flatten a Snapshot for the frame codec (ndarrays survive)."""
    if snapshot is None:
        return None
    return {
        "job_id": snapshot.job_id,
        "epoch": snapshot.epoch,
        "state": snapshot.state,
        "size_bytes": snapshot.size_bytes,
        "latency": snapshot.latency,
        "timestamp": snapshot.timestamp,
    }


def snapshot_from_wire(wire: Optional[Dict[str, Any]]) -> Optional[Snapshot]:
    if wire is None:
        return None
    return Snapshot(
        job_id=wire["job_id"],
        epoch=int(wire["epoch"]),
        state=wire["state"],
        size_bytes=float(wire["size_bytes"]),
        latency=float(wire["latency"]),
        timestamp=float(wire.get("timestamp", 0.0)),
    )


def prediction_to_wire(prediction: CurvePrediction) -> Dict[str, Any]:
    return {
        "observed": prediction.observed,
        "horizon": prediction.horizon,
        "samples": prediction.samples,
    }


class _WorkerHost:
    """Dispatches RPC frames onto the hosted Node Agent."""

    def __init__(
        self,
        machine_id: str,
        endpoint: WorkerEndpoint,
        agent: NodeAgent,
        kill_epoch: Optional[int],
        recorder: Optional[Recorder] = None,
        clock: Optional[_WorkerClock] = None,
        shipper: Optional[TelemetryShipper] = None,
        revocation: Optional[SpotRevocation] = None,
        time_scale: float = 1e-3,
    ) -> None:
        self.machine_id = machine_id
        self.endpoint = endpoint
        self.agent = agent
        self._kill_epoch = kill_epoch
        self._recorder = recorder if recorder is not None else Recorder()
        self._clock = clock
        self._shipper = shipper
        self._revocation = revocation
        self._time_scale = time_scale
        self._revocation_sent = False
        self._epochs_trained = 0
        self.running = True

    # ------------------------------------------------------------- dispatch

    def handle(self, payload: Dict[str, Any],
               trace: Optional[Dict[str, Any]] = None) -> None:
        seq = payload.get("seq")
        method = payload.get("method")
        args = payload.get("args") or {}
        # The head's clock rides on every RPC; re-anchor before any span
        # opens so worker timestamps stay on the head's time axis.
        if self._clock is not None and trace and "clock" in trace:
            self._clock.sync(trace["clock"])
        try:
            with trace_context(TraceContext.from_dict(trace)):
                value = self._invoke(method, args)
        except Exception as exc:  # noqa: BLE001 — errors travel to the head
            logger.exception("worker %s: rpc %s failed", self.machine_id, method)
            self._reply({"seq": seq, "ok": False,
                         "error": f"{type(exc).__name__}: {exc}"})
            return
        self._reply({"seq": seq, "ok": True, "value": value})

    def _reply(self, payload: Dict[str, Any]) -> None:
        try:
            self.endpoint.send(f"reply/{self.machine_id}", RPC_REPLY, payload)
        except NodeFailure:
            pass  # link died; the head has already given up on this RPC

    def _invoke(self, method: Optional[str], args: Dict[str, Any]) -> Any:
        if method == "assign":
            if self.agent.busy:
                # The head is authoritative.  A worker declared dead for
                # silence (dropped heartbeats) keeps hosting its old run
                # even though the head has migrated that job elsewhere;
                # when the head trusts this node again its first assign
                # supersedes the stale state.
                self.agent.release()
            self.agent.assign(
                args["job_id"],
                args["config"],
                seed=int(args.get("seed", 0)),
                snapshot=snapshot_from_wire(args.get("snapshot")),
            )
            return None
        if method == "train_epoch":
            with self._recorder.tracer.span(
                "worker.train_epoch",
                machine_id=self.machine_id,
                job_id=self.agent.job_id or "",
            ) as span:
                result = self.agent.train_epoch()
                span.set(epoch=result.epoch, duration=result.duration)
            self._epochs_trained += 1
            if (
                self._kill_epoch is not None
                and self._epochs_trained >= self._kill_epoch
            ):
                # Injected crash: die before the result frame leaves the
                # process, losing the epoch exactly as a real mid-epoch
                # failure would.
                os.kill(os.getpid(), signal.SIGKILL)
            if (
                self._revocation is not None
                and not self._revocation_sent
                and self._epochs_trained >= self._revocation.epoch
            ):
                # Spot revocation notice: announce to the head *now*,
                # arm the kill for grace seconds out, and keep serving
                # RPCs in between — the head uses the window to migrate
                # the job off this machine before the kill lands.
                self._announce_revocation(self._revocation.grace)
            run = self.agent.run
            return {
                "epoch": result.epoch,
                "duration": result.duration,
                "metric": result.metric,
                "done": result.done,
                "extras": dict(result.extras),
                "run_finished": bool(run is not None and run.finished),
            }
        if method == "capture_snapshot":
            return snapshot_to_wire(self.agent.capture_snapshot())
        if method == "predict":
            prediction = self.agent.predict(int(args["n_future"]))
            return prediction_to_wire(prediction)
        if method == "release":
            self.agent.release()
            return None
        if method == "curve_history":
            return self.agent.curve_history
        if method == "revoke":
            # Head-initiated revocation (daemon /fleet/revoke): the
            # head already knows, so arm the kill without a notice.
            self._arm_kill(float(args.get("grace", 0.0)))
            return None
        if method == "shutdown":
            # Final telemetry flush *before* the reply: the head tears
            # the link down right after it hears back, and the last
            # spans/audit records should not die with the process.
            if self._shipper is not None:
                self._shipper.ship()
            self.running = False
            return None
        raise ValueError(f"unknown rpc method {method!r}")

    # ----------------------------------------------------------- revocation

    def _announce_revocation(self, grace: float) -> None:
        self._revocation_sent = True
        self._recorder.audit.record(
            "worker_spot_revocation",
            machine_id=self.machine_id,
            grace=grace,
        )
        try:
            self.endpoint.send(
                "membership",
                "revocation",
                {"machine_id": self.machine_id, "grace": grace},
            )
        except NodeFailure:
            pass  # link down; the kill still lands, as a plain failure
        self._arm_kill(grace)

    def _arm_kill(self, grace: float) -> None:
        # Grace is in *experiment* seconds; the wall timer scales it.
        delay = max(0.0, grace) * self._time_scale
        timer = threading.Timer(
            delay, os.kill, args=(os.getpid(), signal.SIGKILL)
        )
        timer.daemon = True
        timer.start()


def worker_main(
    host: str,
    port: int,
    machine_id: str,
    workload: Workload,
    predictor: Optional[CurvePredictor],
    seed: int,
    fault_specs: list,
    time_scale: float = 1e-3,
    telemetry_interval: float = 0.25,
) -> None:
    """Entry point of one worker process (multiprocessing spawn target)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the head owns shutdown
    plan = FaultPlan.from_dicts(fault_specs)
    clock = _WorkerClock(time_scale)
    recorder = Recorder(clock=clock, trace=True)
    # Guaranteed non-empty registry: every node renders at least one
    # node-labelled sample on the merged export from its first batch.
    recorder.metrics.gauge(
        "worker_up", help="1 while this worker process is alive"
    ).set(1.0)
    agent = NodeAgent(
        machine_id=machine_id,
        workload=workload,
        snapshot_cost_model=cost_model_for_domain(workload.domain.kind),
        predictor=predictor,
        seed=seed,
        recorder=recorder,
    )
    endpoint = WorkerEndpoint(
        host, port, machine_id, fault_plan=plan.for_machine(machine_id)
    )
    try:
        endpoint.connect()
    except OSError:
        if not endpoint.reconnect():
            return
    shipper = TelemetryShipper(endpoint, recorder, interval=telemetry_interval)
    shipper.start()
    host_loop = _WorkerHost(
        machine_id, endpoint, agent, plan.kill_epoch(machine_id),
        recorder=recorder, clock=clock, shipper=shipper,
        revocation=plan.spot_revocation(machine_id),
        time_scale=time_scale,
    )
    try:
        while host_loop.running:
            message = endpoint.mailbox.get(timeout=1.0)
            if message is None:
                continue
            if message.kind == "connection_lost":
                # The head will have rescheduled our job elsewhere by
                # the time we are back, so local run state is stale.
                agent.release()
                if not endpoint.reconnect():
                    return
                continue
            if message.kind == RPC:
                host_loop.handle(message.payload, trace=message.trace)
    finally:
        shipper.stop(flush=True)
        endpoint.close()
