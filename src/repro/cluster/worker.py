"""The worker process: a real Node Agent behind an RPC mailbox.

Each cluster worker is one OS process hosting one
:class:`~repro.framework.node_agent.NodeAgent` — the paper's
per-machine execution daemon (§4.2 ➅) — behind a
:class:`~repro.cluster.transport.WorkerEndpoint`.  The head drives it
with ``rpc`` frames mirroring the agent's method surface
(``assign`` / ``train_epoch`` / ``capture_snapshot`` / ``predict`` /
``release`` / ``shutdown``); the worker processes requests serially
from its mailbox and replies to the head-local ``reply/<machine-id>``
topic.

Fault injection hooks live here and in the endpoint:

* ``kill_at_epoch`` — after the agent finishes its N-th epoch *in this
  process*, the worker SIGKILLs itself before replying, so the epoch's
  work is genuinely lost (the head must fall back to the last
  snapshot).
* ``drop_heartbeats`` / ``delay_send`` — enforced inside
  :class:`~repro.cluster.transport.WorkerEndpoint`.

Workers are spawned with the ``spawn`` multiprocessing context: a fresh
interpreter imports this module and calls :func:`worker_main` with
picklable arguments (workload, predictor, fault sub-plan).
"""

from __future__ import annotations

import logging
import os
import signal
from typing import Any, Dict, Optional

from ..curves.predictor import CurvePrediction, CurvePredictor
from ..framework.node_agent import NodeAgent
from ..framework.snapshot import Snapshot, cost_model_for_domain
from ..workloads.base import Workload
from .faults import FaultPlan
from .transport import NodeFailure, WorkerEndpoint

__all__ = ["worker_main", "snapshot_to_wire", "snapshot_from_wire"]

logger = logging.getLogger(__name__)

RPC = "rpc"
RPC_REPLY = "rpc_reply"


def snapshot_to_wire(snapshot: Optional[Snapshot]) -> Optional[Dict[str, Any]]:
    """Flatten a Snapshot for the frame codec (ndarrays survive)."""
    if snapshot is None:
        return None
    return {
        "job_id": snapshot.job_id,
        "epoch": snapshot.epoch,
        "state": snapshot.state,
        "size_bytes": snapshot.size_bytes,
        "latency": snapshot.latency,
        "timestamp": snapshot.timestamp,
    }


def snapshot_from_wire(wire: Optional[Dict[str, Any]]) -> Optional[Snapshot]:
    if wire is None:
        return None
    return Snapshot(
        job_id=wire["job_id"],
        epoch=int(wire["epoch"]),
        state=wire["state"],
        size_bytes=float(wire["size_bytes"]),
        latency=float(wire["latency"]),
        timestamp=float(wire.get("timestamp", 0.0)),
    )


def prediction_to_wire(prediction: CurvePrediction) -> Dict[str, Any]:
    return {
        "observed": prediction.observed,
        "horizon": prediction.horizon,
        "samples": prediction.samples,
    }


class _WorkerHost:
    """Dispatches RPC frames onto the hosted Node Agent."""

    def __init__(
        self,
        machine_id: str,
        endpoint: WorkerEndpoint,
        agent: NodeAgent,
        kill_epoch: Optional[int],
    ) -> None:
        self.machine_id = machine_id
        self.endpoint = endpoint
        self.agent = agent
        self._kill_epoch = kill_epoch
        self._epochs_trained = 0
        self.running = True

    # ------------------------------------------------------------- dispatch

    def handle(self, payload: Dict[str, Any]) -> None:
        seq = payload.get("seq")
        method = payload.get("method")
        args = payload.get("args") or {}
        try:
            value = self._invoke(method, args)
        except Exception as exc:  # noqa: BLE001 — errors travel to the head
            logger.exception("worker %s: rpc %s failed", self.machine_id, method)
            self._reply({"seq": seq, "ok": False,
                         "error": f"{type(exc).__name__}: {exc}"})
            return
        self._reply({"seq": seq, "ok": True, "value": value})

    def _reply(self, payload: Dict[str, Any]) -> None:
        try:
            self.endpoint.send(f"reply/{self.machine_id}", RPC_REPLY, payload)
        except NodeFailure:
            pass  # link died; the head has already given up on this RPC

    def _invoke(self, method: Optional[str], args: Dict[str, Any]) -> Any:
        if method == "assign":
            if self.agent.busy:
                # The head is authoritative.  A worker declared dead for
                # silence (dropped heartbeats) keeps hosting its old run
                # even though the head has migrated that job elsewhere;
                # when the head trusts this node again its first assign
                # supersedes the stale state.
                self.agent.release()
            self.agent.assign(
                args["job_id"],
                args["config"],
                seed=int(args.get("seed", 0)),
                snapshot=snapshot_from_wire(args.get("snapshot")),
            )
            return None
        if method == "train_epoch":
            result = self.agent.train_epoch()
            self._epochs_trained += 1
            if (
                self._kill_epoch is not None
                and self._epochs_trained >= self._kill_epoch
            ):
                # Injected crash: die before the result frame leaves the
                # process, losing the epoch exactly as a real mid-epoch
                # failure would.
                os.kill(os.getpid(), signal.SIGKILL)
            run = self.agent.run
            return {
                "epoch": result.epoch,
                "duration": result.duration,
                "metric": result.metric,
                "done": result.done,
                "extras": dict(result.extras),
                "run_finished": bool(run is not None and run.finished),
            }
        if method == "capture_snapshot":
            return snapshot_to_wire(self.agent.capture_snapshot())
        if method == "predict":
            prediction = self.agent.predict(int(args["n_future"]))
            return prediction_to_wire(prediction)
        if method == "release":
            self.agent.release()
            return None
        if method == "curve_history":
            return self.agent.curve_history
        if method == "shutdown":
            self.running = False
            return None
        raise ValueError(f"unknown rpc method {method!r}")


def worker_main(
    host: str,
    port: int,
    machine_id: str,
    workload: Workload,
    predictor: Optional[CurvePredictor],
    seed: int,
    fault_specs: list,
) -> None:
    """Entry point of one worker process (multiprocessing spawn target)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the head owns shutdown
    plan = FaultPlan.from_dicts(fault_specs)
    agent = NodeAgent(
        machine_id=machine_id,
        workload=workload,
        snapshot_cost_model=cost_model_for_domain(workload.domain.kind),
        predictor=predictor,
        seed=seed,
    )
    endpoint = WorkerEndpoint(
        host, port, machine_id, fault_plan=plan.for_machine(machine_id)
    )
    try:
        endpoint.connect()
    except OSError:
        if not endpoint.reconnect():
            return
    host_loop = _WorkerHost(
        machine_id, endpoint, agent, plan.kill_epoch(machine_id)
    )
    try:
        while host_loop.running:
            message = endpoint.mailbox.get(timeout=1.0)
            if message is None:
                continue
            if message.kind == "connection_lost":
                # The head will have rescheduled our job elsewhere by
                # the time we are back, so local run state is stale.
                agent.release()
                if not endpoint.reconnect():
                    return
                continue
            if message.kind == RPC:
                host_loop.handle(message.payload)
    finally:
        endpoint.close()
