"""Synthetic datasets for the real-training MLP workload.

HyperDrive's schedulers are dataset-agnostic; these generators exist so
the repository has a genuine end-to-end training path (real gradients,
real generalisation gaps) without shipping CIFAR-10 binaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "make_blobs", "make_spirals"]


@dataclass(frozen=True)
class Dataset:
    """A train/validation split of a classification problem."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.y_train.max()) + 1

    @property
    def num_features(self) -> int:
        return self.x_train.shape[1]

    @property
    def random_accuracy(self) -> float:
        """Expected accuracy of uniform random guessing."""
        return 1.0 / self.num_classes


def _split(
    x: np.ndarray, y: np.ndarray, val_fraction: float, rng: np.random.Generator
) -> Dataset:
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]
    n_val = max(1, int(val_fraction * x.shape[0]))
    return Dataset(
        x_train=x[n_val:],
        y_train=y[n_val:],
        x_val=x[:n_val],
        y_val=y[:n_val],
    )


def make_blobs(
    n_samples: int = 2000,
    n_features: int = 20,
    n_classes: int = 10,
    cluster_std: float = 2.2,
    val_fraction: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """Gaussian-blob classification with overlapping clusters.

    ``cluster_std`` controls difficulty: larger overlap means a wider
    gap between good and bad hyperparameter configurations.
    """
    if n_samples < n_classes * 2:
        raise ValueError("need at least two samples per class")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-4.0, 4.0, size=(n_classes, n_features))
    counts = np.full(n_classes, n_samples // n_classes)
    counts[: n_samples % n_classes] += 1
    xs, ys = [], []
    for cls, count in enumerate(counts):
        xs.append(centers[cls] + cluster_std * rng.standard_normal((count, n_features)))
        ys.append(np.full(count, cls, dtype=np.int64))
    x = np.concatenate(xs).astype(np.float64)
    y = np.concatenate(ys)
    x = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
    return _split(x, y, val_fraction, rng)


def make_spirals(
    n_samples: int = 1500,
    n_classes: int = 3,
    noise: float = 0.25,
    val_fraction: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """Interleaved 2-D spirals: a non-linearly-separable problem where
    network capacity and learning rate genuinely matter."""
    if n_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    per_class = n_samples // n_classes
    xs, ys = [], []
    for cls in range(n_classes):
        radius = np.linspace(0.2, 1.0, per_class)
        angle = (
            np.linspace(cls * 2 * np.pi / n_classes,
                        cls * 2 * np.pi / n_classes + 3.5,
                        per_class)
            + noise * rng.standard_normal(per_class) * radius
        )
        xs.append(np.stack([radius * np.sin(angle), radius * np.cos(angle)], axis=1))
        ys.append(np.full(per_class, cls, dtype=np.int64))
    x = np.concatenate(xs).astype(np.float64)
    y = np.concatenate(ys)
    return _split(x, y, val_fraction, rng)
