"""Workloads: what HyperDrive schedules.

Two calibrated synthetic workloads stand in for the paper's GPU/Gym
testbeds (see DESIGN.md §2 for the substitution argument), and one real
numpy-MLP workload demonstrates genuine end-to-end training.
"""

from .base import DomainSpec, EpochResult, TrainingRun, Workload
from .calibration import QualityCalibrator, stable_config_seed
from .cifar10 import Cifar10Workload, SyntheticSupervisedRun, cifar10_space
from .datasets import Dataset, make_blobs, make_spirals
from .lstm_sparsity import LSTMSparsityWorkload, SyntheticLSTMRun, lstm_space
from .lunarlander import LunarLanderWorkload, SyntheticRLRun, lunarlander_space
from .mlp import MLPTrainingRun, MLPWorkload, mlp_space

__all__ = [
    "DomainSpec",
    "EpochResult",
    "TrainingRun",
    "Workload",
    "QualityCalibrator",
    "stable_config_seed",
    "Cifar10Workload",
    "SyntheticSupervisedRun",
    "cifar10_space",
    "LunarLanderWorkload",
    "LSTMSparsityWorkload",
    "SyntheticLSTMRun",
    "lstm_space",
    "SyntheticRLRun",
    "lunarlander_space",
    "Dataset",
    "make_blobs",
    "make_spirals",
    "MLPWorkload",
    "MLPTrainingRun",
    "mlp_space",
]
