"""Config-quality calibration shared by the synthetic workloads.

The synthetic CIFAR-10 and LunarLander workloads must reproduce the
*distributional* facts the paper reports (e.g. 32% of supervised
configurations never beat random accuracy; >50% of RL configurations
are non-learners).  We achieve this exactly rather than by hand-tuning:

1. Each workload defines a raw ``score`` function over configurations
   expressing plausible domain structure (learning rate sweet spots,
   capacity effects, divergence cliffs).  The score makes "nearby"
   configurations behave similarly, which adaptive generators rely on.
2. A :class:`QualityCalibrator` converts raw scores into uniform
   quantiles ``u ∈ [0, 1]`` via the empirical CDF of the score over a
   large reference sample drawn from the same space.
3. The workload maps ``u`` through an explicit quantile function of the
   *target* final-performance distribution (e.g. the Fig. 2a CDF), so
   the population statistics match the paper by construction while the
   score structure decides *which* configurations are the good ones.
"""

from __future__ import annotations

from typing import Callable, Dict, Any

import numpy as np

from ..generators.space import SearchSpace

__all__ = ["QualityCalibrator", "stable_config_seed"]


class QualityCalibrator:
    """Empirical-CDF mapping from raw config scores to [0, 1] quantiles.

    Args:
        space: the search space to draw the reference sample from.
        score_fn: deterministic map from configuration to raw score
            (higher = better).
        n_reference: reference-sample size; larger = smoother CDF.
        seed: seed for the reference sample (fixed per workload so the
            mapping is reproducible).
    """

    def __init__(
        self,
        space: SearchSpace,
        score_fn: Callable[[Dict[str, Any]], float],
        n_reference: int = 4000,
        seed: int = 20170711,
    ) -> None:
        if n_reference < 10:
            raise ValueError("reference sample too small to calibrate")
        self._score_fn = score_fn
        rng = np.random.default_rng(seed)
        scores = np.array(
            [score_fn(space.sample(rng)) for _ in range(n_reference)]
        )
        if not np.all(np.isfinite(scores)):
            raise ValueError("score function produced non-finite values")
        self._sorted_scores = np.sort(scores)

    def quantile(self, config: Dict[str, Any]) -> float:
        """Quantile of ``config``'s score within the reference sample.

        Returns a value in the open interval (0, 1): mid-rank
        convention avoids exact 0/1 so downstream quantile functions
        never see their open endpoints.
        """
        score = float(self._score_fn(config))
        n = self._sorted_scores.size
        # mid-rank of `score` among reference scores
        left = np.searchsorted(self._sorted_scores, score, side="left")
        right = np.searchsorted(self._sorted_scores, score, side="right")
        rank = (left + right) / 2.0
        return float((rank + 0.5) / (n + 1.0))


_FNV_OFFSET = 1469598103934665603  # FNV-1a offset basis
_FNV_PRIME = 1099511628211
_U64_MASK = 0xFFFFFFFFFFFFFFFF

#: Per-process memo of the salt-independent FNV accumulator per encoded
#: configuration.  The character loop below is the hot spot of workload
#: construction (the calibrator hashes thousands of reference configs,
#: and every run creation hashes the config under several salts); the
#: salt is only mixed in *after* the loop, so one accumulator serves
#: every salt.  Bounded so pathological callers cannot grow it forever.
_FNV_CACHE: Dict[str, int] = {}
_FNV_CACHE_LIMIT = 65536


def _fnv_accumulate(encoded: str) -> int:
    acc = _FNV_OFFSET
    for ch in encoded:
        acc = ((acc ^ ord(ch)) * _FNV_PRIME) & _U64_MASK
    return acc


def stable_config_seed(config: Dict[str, Any], salt: int = 0) -> int:
    """A deterministic 63-bit seed derived from a configuration.

    Python's ``hash`` is randomised per process for strings, so we
    build the seed from a stable string encoding instead.  Used to give
    every configuration its own reproducible noise stream: the stream
    is a pure function of (configuration content, salt), independent of
    the order configurations are created or scheduled in.
    """
    encoded = repr(sorted((k, repr(v)) for k, v in config.items()))
    acc = _FNV_CACHE.get(encoded)
    if acc is None:
        if len(_FNV_CACHE) >= _FNV_CACHE_LIMIT:
            _FNV_CACHE.clear()
        acc = _fnv_accumulate(encoded)
        _FNV_CACHE[encoded] = acc
    acc = ((acc ^ (salt & 0x7FFFFFFF)) * _FNV_PRIME) & _U64_MASK
    return acc & 0x7FFFFFFFFFFFFFFF
