"""Real-training MLP workload: actual SGD in numpy.

Every other workload in this package synthesises learning curves; this
one earns its curves the honest way, training a two-hidden-layer MLP
with mini-batch SGD.  It exercises the identical ``Workload`` /
``TrainingRun`` contract, which is how the repository demonstrates that
HyperDrive is framework-agnostic (§4.1): the scheduler cannot tell a
Caffe CNN from this numpy network.

Suspend/resume snapshots capture the full optimiser state (weights,
velocities, RNG), so a run suspended on one "machine" and resumed on
another continues bit-for-bit — the property §5.1 gets from CRIU.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

import numpy as np

from ..generators.space import (
    Choice,
    IntUniform,
    LogUniform,
    SearchSpace,
    Uniform,
)
from .base import DomainSpec, EpochResult, TrainingRun, Workload
from .calibration import stable_config_seed
from .datasets import Dataset, make_blobs

__all__ = ["mlp_space", "MLPWorkload", "MLPTrainingRun"]

MAX_EPOCHS = 60


def mlp_space() -> SearchSpace:
    """Hyperparameter space for the numpy MLP."""
    return SearchSpace(
        [
            LogUniform("learning_rate", 1e-4, 1.0),
            Uniform("momentum", 0.0, 0.99),
            LogUniform("l2_reg", 1e-7, 1e-1),
            Choice("batch_size", (16, 32, 64, 128)),
            IntUniform("hidden1", 8, 128),
            IntUniform("hidden2", 8, 128),
            LogUniform("init_scale", 1e-3, 1.0),
            Choice("activation", ("relu", "tanh")),
        ]
    )


def _activate(z: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return np.maximum(z, 0.0)
    return np.tanh(z)


def _activate_grad(z: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return (z > 0.0).astype(z.dtype)
    return 1.0 - np.tanh(z) ** 2


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class MLPTrainingRun(TrainingRun):
    """Mini-batch SGD training of a 2-hidden-layer softmax MLP."""

    def __init__(
        self,
        config: Dict[str, Any],
        dataset: Dataset,
        seed: int,
        max_epochs: int = MAX_EPOCHS,
        measure_wall_time: bool = False,
    ) -> None:
        self._config = dict(config)
        self._dataset = dataset
        self._max_epochs = max_epochs
        self._measure_wall_time = measure_wall_time
        self._epoch = 0
        self._rng = np.random.default_rng(
            stable_config_seed(config, salt=300 + seed)
        )
        self._init_network()

    def _init_network(self) -> None:
        cfg = self._config
        d = self._dataset.num_features
        h1, h2 = int(cfg["hidden1"]), int(cfg["hidden2"])
        k = self._dataset.num_classes
        scale = float(cfg["init_scale"])
        rng = self._rng
        self._params = {
            "w1": scale * rng.standard_normal((d, h1)),
            "b1": np.zeros(h1),
            "w2": scale * rng.standard_normal((h1, h2)),
            "b2": np.zeros(h2),
            "w3": scale * rng.standard_normal((h2, k)),
            "b3": np.zeros(k),
        }
        self._velocity = {name: np.zeros_like(v) for name, v in self._params.items()}

    # ----------------------------------------------------------- training

    def _forward(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        p = self._params
        act = self._config["activation"]
        z1 = x @ p["w1"] + p["b1"]
        a1 = _activate(z1, act)
        z2 = a1 @ p["w2"] + p["b2"]
        a2 = _activate(z2, act)
        logits = a2 @ p["w3"] + p["b3"]
        return {"z1": z1, "a1": a1, "z2": z2, "a2": a2, "logits": logits}

    def _train_one_epoch(self) -> None:
        cfg = self._config
        x, y = self._dataset.x_train, self._dataset.y_train
        lr = float(cfg["learning_rate"])
        momentum = float(cfg["momentum"])
        l2 = float(cfg["l2_reg"])
        batch = int(cfg["batch_size"])
        act = cfg["activation"]
        p, vel = self._params, self._velocity

        order = self._rng.permutation(x.shape[0])
        for start in range(0, x.shape[0], batch):
            idx = order[start : start + batch]
            xb, yb = x[idx], y[idx]
            cache = self._forward(xb)
            probs = _softmax(cache["logits"])
            n = xb.shape[0]
            d_logits = probs
            d_logits[np.arange(n), yb] -= 1.0
            d_logits /= n

            grads = {
                "w3": cache["a2"].T @ d_logits + l2 * p["w3"],
                "b3": d_logits.sum(axis=0),
            }
            d_a2 = d_logits @ p["w3"].T
            d_z2 = d_a2 * _activate_grad(cache["z2"], act)
            grads["w2"] = cache["a1"].T @ d_z2 + l2 * p["w2"]
            grads["b2"] = d_z2.sum(axis=0)
            d_a1 = d_z2 @ p["w2"].T
            d_z1 = d_a1 * _activate_grad(cache["z1"], act)
            grads["w1"] = xb.T @ d_z1 + l2 * p["w1"]
            grads["b1"] = d_z1.sum(axis=0)

            for name in p:
                vel[name] = momentum * vel[name] - lr * grads[name]
                update = p[name] + vel[name]
                # Divergent configs produce inf/nan; freeze them so the
                # run keeps reporting (terrible) accuracy instead of
                # crashing — real frameworks keep emitting stats too.
                if np.all(np.isfinite(update)):
                    p[name] = update

    def validation_accuracy(self) -> float:
        """Accuracy on the held-out split."""
        logits = self._forward(self._dataset.x_val)["logits"]
        if not np.all(np.isfinite(logits)):
            return self._dataset.random_accuracy
        predictions = logits.argmax(axis=1)
        return float((predictions == self._dataset.y_val).mean())

    def _cost_model_seconds(self) -> float:
        """Deterministic epoch-duration estimate used in simulation.

        Proportional to multiply-accumulate count per epoch; scaled so
        typical configs land near one simulated minute, keeping the MLP
        workload interchangeable with the synthetic CIFAR-10 one.
        """
        cfg = self._config
        d = self._dataset.num_features
        h1, h2 = int(cfg["hidden1"]), int(cfg["hidden2"])
        k = self._dataset.num_classes
        flops = self._dataset.x_train.shape[0] * (d * h1 + h1 * h2 + h2 * k)
        return 20.0 + flops / 8000.0

    # -------------------------------------------------------- TrainingRun

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self._config)

    @property
    def epochs_completed(self) -> int:
        return self._epoch

    @property
    def finished(self) -> bool:
        return self._epoch >= self._max_epochs

    def step(self) -> EpochResult:
        if self.finished:
            raise RuntimeError("training run already finished")
        started = time.perf_counter()
        self._train_one_epoch()
        self._epoch += 1
        accuracy = self.validation_accuracy()
        if self._measure_wall_time:
            duration = time.perf_counter() - started
        else:
            duration = self._cost_model_seconds()
        return EpochResult(
            epoch=self._epoch,
            duration=duration,
            metric=accuracy,
            done=self.finished,
        )

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "epoch": self._epoch,
            "params": {k: v.copy() for k, v in self._params.items()},
            "velocity": {k: v.copy() for k, v in self._velocity.items()},
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._epoch = int(state["epoch"])
        if not 0 <= self._epoch <= self._max_epochs:
            raise ValueError(f"snapshot epoch {self._epoch} out of range")
        self._params = {k: v.copy() for k, v in state["params"].items()}
        self._velocity = {k: v.copy() for k, v in state["velocity"].items()}
        self._rng.bit_generator.state = state["rng_state"]


class MLPWorkload(Workload):
    """Real numpy-MLP training as a HyperDrive workload."""

    def __init__(
        self,
        dataset: Optional[Dataset] = None,
        max_epochs: int = MAX_EPOCHS,
        target: float = 0.75,
        measure_wall_time: bool = False,
    ) -> None:
        self._dataset = dataset if dataset is not None else make_blobs()
        self._space = mlp_space()
        self._max_epochs = max_epochs
        self._measure_wall_time = measure_wall_time
        random_acc = self._dataset.random_accuracy
        self._domain = DomainSpec(
            kind="supervised",
            metric_name="validation_accuracy",
            target=target,
            kill_threshold=min(random_acc * 1.5, target / 2.0),
            random_performance=random_acc,
            max_epochs=max_epochs,
            eval_boundary=5,
        )

    @property
    def space(self) -> SearchSpace:
        return self._space

    @property
    def domain(self) -> DomainSpec:
        return self._domain

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    def create_run(self, config: Dict[str, Any], seed: int = 0) -> MLPTrainingRun:
        self._space.validate(config)
        return MLPTrainingRun(
            config=config,
            dataset=self._dataset,
            seed=seed,
            max_epochs=self._max_epochs,
            measure_wall_time=self._measure_wall_time,
        )
