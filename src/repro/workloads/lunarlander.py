"""Synthetic LunarLander reinforcement-learning workload.

The paper trains a Keras/Theano DQN-style agent on OpenAI Gym's
LunarLander-v2, exploring 11 hyperparameters on 15 CPU machines
(§6.1, §6.3).  As with CIFAR-10, the schedulers only see per-evaluation
``(duration, reward)`` streams, so we reproduce the published stream
statistics rather than run Gym:

* rewards range over roughly [-500, 300] and are min-max normalised
  with ``r_min=-500, r_max=300`` before prediction (eq. 4);
* over 50% of configurations are non-learning, many exhibiting the
  "learning-crash": reward rises for a while, then falls to at or below
  −100 and stays there (Fig. 8);
* solved means a mean reward of 200 over 100 consecutive trials — one
  "epoch" here is exactly that 100-trial window, so the solved
  condition is simply "epoch reward ≥ 200";
* the paper's evaluation boundary of 2,000 iterations corresponds to
  20 of these 100-trial epochs.
"""

from __future__ import annotations

import math
from typing import Any, Dict

import numpy as np

from ..generators.space import (
    Choice,
    IntUniform,
    LogUniform,
    SearchSpace,
    Uniform,
)
from .base import DomainSpec, EpochResult, TrainingRun, Workload
from .calibration import QualityCalibrator, stable_config_seed

__all__ = ["lunarlander_space", "LunarLanderWorkload", "SyntheticRLRun"]

REWARD_MIN = -500.0
REWARD_MAX = 300.0
CRASH_REWARD = -100.0
RANDOM_REWARD = -200.0
SOLVED_REWARD = 200.0
MAX_EPOCHS = 200  # 200 epochs x 100 trials = the 20k trials of Fig. 8
TRIALS_PER_EPOCH = 100
BASE_EPOCH_SECONDS = 35.0

#: Population bands over the calibrated quality quantile ``u``.
_NON_LEARNER_BAND = 0.40  # u below this: never learns
_CRASH_BAND = 0.58  # u below this (and above previous): learning-crash
_SOLVER_BAND = 0.96  # u at/above this: can reach the solved condition


def lunarlander_space() -> SearchSpace:
    """The 11-hyperparameter LunarLander search space (§6.1)."""
    return SearchSpace(
        [
            LogUniform("learning_rate", 1e-5, 1e-2),
            Uniform("gamma", 0.90, 0.9999),
            LogUniform("epsilon_decay", 1e-5, 1e-2),
            Uniform("epsilon_min", 0.0, 0.2),
            Choice("batch_size", (32, 64, 128)),
            IntUniform("hidden1", 32, 256),
            IntUniform("hidden2", 32, 256),
            IntUniform("target_update", 100, 10000),
            Choice("replay_size", (10000, 50000, 100000)),
            LogUniform("l2_reg", 1e-8, 1e-3),
            Choice("activation", ("relu", "tanh")),
        ]
    )


def _score(config: Dict[str, Any]) -> float:
    """Raw quality score for an RL configuration (higher = better)."""
    lr = math.log10(float(config["learning_rate"]))
    score = -((lr + 3.2) / 0.9) ** 2
    if lr > -2.3:
        score -= 6.0 * (lr + 2.3)  # unstable Q-learning at high lr

    gamma = float(config["gamma"])
    score -= ((gamma - 0.99) / 0.03) ** 2 * 0.5

    eps_decay = math.log10(float(config["epsilon_decay"]))
    score -= 0.4 * ((eps_decay + 3.5) / 1.2) ** 2

    eps_min = float(config["epsilon_min"])
    score -= 0.5 * ((eps_min - 0.02) / 0.1) ** 2

    capacity = math.log(float(config["hidden1"]) * float(config["hidden2"]))
    score += 0.4 * math.tanh((capacity - 9.0) / 2.0)

    target_update = float(config["target_update"])
    score -= 0.3 * ((math.log10(target_update) - 3.0) / 1.0) ** 2

    replay = int(config["replay_size"])
    score += {10000: -0.15, 50000: 0.1, 100000: 0.05}[replay]

    reg = math.log10(float(config["l2_reg"]))
    score -= 0.2 * ((reg + 6.0) / 2.5) ** 2

    score += {"relu": 0.15, "tanh": -0.05}[config["activation"]]

    batch = int(config["batch_size"])
    score -= 0.1 * (math.log2(batch / 64.0)) ** 2

    noise_rng = np.random.default_rng(stable_config_seed(config, salt=23))
    score += 0.5 * noise_rng.standard_normal()
    return score


class SyntheticRLRun(TrainingRun):
    """A synthetic LunarLander training run.

    One :meth:`step` simulates 100 episode trials and reports their
    mean reward, so the solved condition ("average reward of 200 over
    100 consecutive trials") reads directly off the epoch metric.
    """

    def __init__(
        self,
        config: Dict[str, Any],
        quantile: float,
        seed: int,
        max_epochs: int = MAX_EPOCHS,
    ) -> None:
        self._config = dict(config)
        self._quantile = quantile
        self._seed = seed
        self._max_epochs = max_epochs
        self._epoch = 0
        self._rng = np.random.default_rng(
            stable_config_seed(config, salt=5000 + seed)
        )
        self._true_curve = self._build_true_curve()
        self._epoch_seconds = self._mean_epoch_seconds()

    def _build_true_curve(self) -> np.ndarray:
        """Noiseless mean-reward trajectory per 100-trial epoch."""
        shape_rng = np.random.default_rng(
            stable_config_seed(self._config, salt=91)
        )
        u = self._quantile
        epochs = np.arange(1, self._max_epochs + 1, dtype=float)

        if u < _NON_LEARNER_BAND:
            # Never learns: wanders between random-policy reward and the
            # crash floor, ending at or below the -100 non-learning value.
            base = RANDOM_REWARD + 120.0 * (u / _NON_LEARNER_BAND - 0.5)
            wander = np.cumsum(4.0 * shape_rng.standard_normal(epochs.size))
            curve = base + wander - wander[-1] * (epochs / epochs[-1])
            return np.clip(curve, REWARD_MIN, CRASH_REWARD + 30.0)

        lr = math.log10(float(self._config["learning_rate"]))
        lr_slowness = float(np.clip((-3.2 - lr) / 1.8, 0.0, 1.0))
        # As with CIFAR-10, learning speed is mostly idiosyncratic so
        # that quality and speed decouple (overtakers exist).
        slowness = float(
            np.clip(0.4 * lr_slowness + 0.6 * shape_rng.random(), 0.0, 1.0)
        )
        half = self._max_epochs * (0.10 + 0.35 * slowness)
        steep = 1.5 + 1.5 * shape_rng.random()
        growth = epochs**steep / (epochs**steep + half**steep)
        growth = growth / growth[-1]

        if u < _CRASH_BAND:
            # Learning-crash: climbs toward a modest peak, then collapses
            # to the crash floor and stays (Fig. 8's signature shape).
            frac = (u - _NON_LEARNER_BAND) / (_CRASH_BAND - _NON_LEARNER_BAND)
            peak = -60.0 + 180.0 * frac
            crash_epoch = int(
                self._max_epochs * (0.15 + 0.45 * shape_rng.random())
            )
            curve = RANDOM_REWARD + (peak - RANDOM_REWARD) * growth
            after = np.arange(crash_epoch, self._max_epochs)
            drop = CRASH_REWARD - 40.0 * shape_rng.random()
            # Collapse over ~5 epochs, then flat at the crash floor.
            for offset, idx in enumerate(after):
                blend = min(1.0, offset / 5.0)
                curve[idx] = (1.0 - blend) * curve[idx] + blend * drop
            return np.clip(curve, REWARD_MIN, REWARD_MAX)

        if u < _SOLVER_BAND:
            # Partial learner: plateaus clearly below the solved
            # threshold (the gap keeps 100-trial-mean noise from
            # spuriously "solving" the task).
            frac = (u - _CRASH_BAND) / (_SOLVER_BAND - _CRASH_BAND)
            plateau = -50.0 + (SOLVED_REWARD - 30.0 - (-50.0)) * frac
        else:
            # Solver: plateau above 200, up to ~280.
            frac = (u - _SOLVER_BAND) / (1.0 - _SOLVER_BAND)
            plateau = 205.0 + 75.0 * frac

        curve = RANDOM_REWARD + (plateau - RANDOM_REWARD) * growth
        return np.clip(curve, REWARD_MIN, REWARD_MAX)

    def _mean_epoch_seconds(self) -> float:
        """Mean seconds per 100-trial epoch (CPU training, §6.1)."""
        capacity = math.log(
            float(self._config["hidden1"]) * float(self._config["hidden2"])
        )
        capacity_factor = (capacity - 9.0) / 6.0
        batch_factor = (float(self._config["batch_size"]) / 64.0) ** 0.2
        return BASE_EPOCH_SECONDS * (1.0 + 0.4 * capacity_factor) * batch_factor

    # -------------------------------------------------------- TrainingRun

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self._config)

    @property
    def epochs_completed(self) -> int:
        return self._epoch

    @property
    def finished(self) -> bool:
        return self._epoch >= self._max_epochs

    @property
    def true_final_reward(self) -> float:
        """Noiseless end-of-training mean reward (analysis helper)."""
        return float(self._true_curve[-1])

    @property
    def is_solver(self) -> bool:
        """Whether the noiseless curve ever reaches the solved reward."""
        return bool(np.any(self._true_curve >= SOLVED_REWARD))

    def step(self) -> EpochResult:
        if self.finished:
            raise RuntimeError("training run already finished")
        self._epoch += 1
        true_value = float(self._true_curve[self._epoch - 1])
        # Standard error of a 100-trial mean with per-trial spread ~80.
        observed = true_value + 8.0 * float(self._rng.standard_normal())
        observed = float(np.clip(observed, REWARD_MIN, REWARD_MAX))
        duration = self._epoch_seconds * float(
            1.0 + 0.05 * self._rng.standard_normal()
        )
        return EpochResult(
            epoch=self._epoch,
            duration=max(duration, 1.0),
            metric=observed,
            done=self.finished,
        )

    def observed_stream(self) -> tuple:
        """The full observed stream, batched (sim fast-path hook).

        Consumes the same RNG stream ``step`` would, so the result
        matches epoch-by-epoch stepping bit for bit.  Consumes the
        run: call on a fresh run.
        """
        if self._epoch != 0:
            raise RuntimeError("observed_stream requires a fresh run")
        noise = self._rng.standard_normal(2 * self._max_epochs)
        metrics = np.clip(
            self._true_curve + 8.0 * noise[0::2], REWARD_MIN, REWARD_MAX
        )
        durations = np.maximum(
            self._epoch_seconds * (1.0 + 0.05 * noise[1::2]), 1.0
        )
        self._epoch = self._max_epochs
        return durations, metrics

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "epoch": self._epoch,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._epoch = int(state["epoch"])
        if not 0 <= self._epoch <= self._max_epochs:
            raise ValueError(f"snapshot epoch {self._epoch} out of range")
        self._rng.bit_generator.state = state["rng_state"]


class LunarLanderWorkload(Workload):
    """Calibrated synthetic LunarLander exploration problem."""

    def __init__(self, calibration_seed: int = 20170712) -> None:
        self._space = lunarlander_space()
        self._calibrator = QualityCalibrator(
            self._space, _score, seed=calibration_seed
        )
        self._domain = DomainSpec(
            kind="reinforcement",
            metric_name="reward",
            target=SOLVED_REWARD,
            kill_threshold=CRASH_REWARD,
            random_performance=RANDOM_REWARD,
            max_epochs=MAX_EPOCHS,
            eval_boundary=20,  # 2,000 trials at 100 trials per epoch
            r_min=REWARD_MIN,
            r_max=REWARD_MAX,
        )

    @property
    def space(self) -> SearchSpace:
        return self._space

    @property
    def domain(self) -> DomainSpec:
        return self._domain

    def quality_quantile(self, config: Dict[str, Any]) -> float:
        """The calibrated quality quantile of ``config`` (analysis aid)."""
        return self._calibrator.quantile(config)

    def create_run(self, config: Dict[str, Any], seed: int = 0) -> SyntheticRLRun:
        self._space.validate(config)
        return SyntheticRLRun(
            config=config,
            quantile=self._calibrator.quantile(config),
            seed=seed,
        )
