"""Synthetic CIFAR-10 hyperparameter-exploration workload.

The paper trains a cuda-convnet ``layers-18pct`` CNN on CIFAR-10 with
Caffe on K40m GPUs, exploring 14 hyperparameters (§6.1, hyperparameter
ranges following Table 3 of Domhan et al.).  We cannot (and need not)
run GPU training: the scheduling policies only ever observe per-epoch
``(duration, validation accuracy)`` pairs.  This module produces those
observations from a generative model calibrated to the paper's
published population statistics:

* ≈32% of random configurations never beat random accuracy (10%)
  — Fig. 2a's red-circle mass;
* only a few percent exceed 75% accuracy, topping out near 80%
  — Fig. 1 ("only three of 50 exceed 75%");
* learners follow saturating curves with configuration-dependent speed,
  producing the Fig. 2b "overtake" phenomenon between fast-but-mediocre
  and slow-but-good configurations;
* epochs take roughly one minute, roughly constant per configuration
  (Fig. 1 and the §9 epoch-duration assumption);
* run-to-run metric noise is ~1–2% (the §6.1 non-determinism note).

Which configurations are the good ones is decided by a smooth score
with domain structure (learning-rate sweet spot scaled by momentum,
divergence cliff at high effective learning rates, capacity and
activation effects), so adaptive generators see a learnable landscape.
"""

from __future__ import annotations

import math
from typing import Any, Dict

import numpy as np

from ..generators.space import (
    Choice,
    IntUniform,
    LogUniform,
    SearchSpace,
    Uniform,
)
from .base import DomainSpec, EpochResult, TrainingRun, Workload
from .calibration import QualityCalibrator, stable_config_seed

__all__ = ["cifar10_space", "Cifar10Workload", "SyntheticSupervisedRun"]

#: Published CIFAR-10 facts the generator is calibrated to.
RANDOM_ACCURACY = 0.10
NON_LEARNER_FRACTION = 0.32
HIGH_ACC_FRACTION = 0.06  # fraction exceeding 0.75
MAX_ACCURACY = 0.805
MAX_EPOCHS = 120
BASE_EPOCH_SECONDS = 60.0


def cifar10_space() -> SearchSpace:
    """The 14-hyperparameter CIFAR-10 search space (§6.1)."""
    return SearchSpace(
        [
            LogUniform("learning_rate", 1e-5, 1.0),
            LogUniform("lr_decay", 1e-4, 1e-1),
            IntUniform("lr_step_epochs", 20, 100),
            Uniform("momentum", 0.0, 0.99),
            LogUniform("weight_decay", 1e-6, 1e-2),
            Choice("batch_size", (32, 64, 128, 256)),
            IntUniform("conv1_filters", 16, 96),
            IntUniform("conv2_filters", 16, 96),
            IntUniform("conv3_filters", 16, 96),
            IntUniform("fc_units", 32, 256),
            Uniform("dropout", 0.0, 0.7),
            LogUniform("init_std", 1e-4, 1e-1),
            Choice("pool_type", ("max", "avg")),
            Choice("activation", ("relu", "tanh", "sigmoid")),
        ]
    )


def _score(config: Dict[str, Any]) -> float:
    """Raw quality score: higher = better final accuracy.

    Smooth in the continuous hyperparameters with one sharp cliff
    (divergence at high effective learning rate), mirroring how real
    SGD training responds to these knobs.
    """
    lr = float(config["learning_rate"])
    momentum = float(config["momentum"])
    # Momentum amplifies the effective step size by 1/(1-m).
    eff_lr = math.log10(lr / max(1.0 - momentum, 1e-3))
    score = -((eff_lr + 1.8) / 1.1) ** 2
    if eff_lr > -0.5:
        # Divergence cliff: training blows up, nothing else matters.
        score -= 25.0 * (eff_lr + 0.5)
    if eff_lr < -4.0:
        # Vanishing step size: effectively never learns.
        score -= 4.0 * (-4.0 - eff_lr)

    wd = math.log10(float(config["weight_decay"]))
    score -= 0.3 * ((wd + 3.3) / 2.2) ** 2

    dropout = float(config["dropout"])
    score -= 0.35 * ((dropout - 0.2) / 0.45) ** 2

    init = math.log10(float(config["init_std"]))
    score -= 0.4 * ((init + 2.0) / 1.4) ** 2

    capacity = math.log(
        float(config["conv1_filters"])
        * float(config["conv2_filters"])
        * float(config["conv3_filters"])
        * float(config["fc_units"])
    )
    score += 0.5 * math.tanh((capacity - 15.0) / 3.0)

    activation = config["activation"]
    score += {"relu": 0.35, "tanh": 0.05, "sigmoid": -0.55}[activation]
    if activation == "sigmoid" and init < -3.0:
        score -= 0.8  # tiny init + sigmoid saturates into no learning

    score += {"max": 0.05, "avg": -0.05}[config["pool_type"]]

    batch = int(config["batch_size"])
    score -= 0.15 * (math.log2(batch / 128.0) / 2.0) ** 2

    decay = math.log10(float(config["lr_decay"]))
    score -= 0.1 * ((decay + 2.5) / 1.5) ** 2

    # Configuration-specific residual: everything the 14 knobs don't
    # explain (interactions, initial weights drawn per config).
    noise_rng = np.random.default_rng(stable_config_seed(config, salt=11))
    score += 0.45 * noise_rng.standard_normal()
    return score


def _final_accuracy_from_quantile(u: float) -> float:
    """Quantile function of the Fig. 2a final-accuracy distribution.

    Piecewise by population band: the bottom 32% are non-learners
    hovering at/below random accuracy; the middle body climbs from just
    above random to 75%; the top few percent reach up to ~80%.
    """
    if not 0.0 < u < 1.0:
        raise ValueError("quantile must be in the open interval (0, 1)")
    learner_start = NON_LEARNER_FRACTION
    elite_start = 1.0 - HIGH_ACC_FRACTION
    if u < learner_start:
        frac = u / learner_start
        return 0.075 + frac * (0.115 - 0.075)
    if u < elite_start:
        frac = (u - learner_start) / (elite_start - learner_start)
        return 0.13 + (0.75 - 0.13) * frac**1.25
    frac = (u - elite_start) / (1.0 - elite_start)
    return 0.75 + (MAX_ACCURACY - 0.75) * frac


class SyntheticSupervisedRun(TrainingRun):
    """A synthetic CIFAR-10 training run.

    The noiseless "true" learning curve is a deterministic function of
    the configuration (via its calibrated quantile); the run seed only
    controls per-epoch observation noise, reproducing the paper's ≤2%
    run-to-run non-determinism.
    """

    def __init__(
        self,
        config: Dict[str, Any],
        quantile: float,
        seed: int,
        max_epochs: int = MAX_EPOCHS,
    ) -> None:
        self._config = dict(config)
        self._quantile = quantile
        self._seed = seed
        self._max_epochs = max_epochs
        self._epoch = 0
        self._rng = np.random.default_rng(
            stable_config_seed(config, salt=1000 + seed)
        )
        self._true_curve = self._build_true_curve()
        self._epoch_seconds = self._mean_epoch_seconds()

    # ----------------------------------------------------- curve synthesis

    def _build_true_curve(self) -> np.ndarray:
        """Noiseless accuracy after each epoch ``1..max_epochs``."""
        shape_rng = np.random.default_rng(
            stable_config_seed(self._config, salt=77)
        )
        final_acc = _final_accuracy_from_quantile(self._quantile)
        epochs = np.arange(1, self._max_epochs + 1, dtype=float)

        if final_acc <= 0.12:
            # Non-learner: a slow random walk hugging random accuracy.
            wander = np.cumsum(0.002 * shape_rng.standard_normal(epochs.size))
            curve = final_acc + wander - wander[-1]
            return np.clip(curve, 0.05, 0.14)

        # Learner: Hill-type saturating growth.  Learning speed is only
        # partially tied to quality: lower learning rates slow the rise,
        # but most of the speed variation is configuration-idiosyncratic.
        # That independence is what produces the paper's "overtake"
        # phenomenon (slow configurations with high final accuracy) and
        # its converse, fast risers that plateau short of the target.
        lr = float(self._config["learning_rate"])
        momentum = float(self._config["momentum"])
        eff_lr = math.log10(lr / max(1.0 - momentum, 1e-3))
        lr_slowness = float(np.clip((-1.8 - eff_lr) / 2.5, 0.0, 1.0))
        slowness = float(
            np.clip(0.35 * lr_slowness + 0.65 * shape_rng.random(), 0.0, 1.0)
        )
        half = self._max_epochs * (0.04 + 0.40 * slowness)
        steep = 1.3 + 1.7 * shape_rng.random()
        growth = epochs**steep / (epochs**steep + half**steep)
        growth_at_end = growth[-1]

        curve = RANDOM_ACCURACY + (final_acc - RANDOM_ACCURACY) * (
            growth / growth_at_end
        )

        # Learning-rate-step bump, as cuda-convnet style schedules show.
        step_epoch = int(self._config["lr_step_epochs"])
        if step_epoch < self._max_epochs:
            bump = 0.015 * shape_rng.random()
            curve += bump / (1.0 + np.exp(-(epochs - step_epoch) / 2.0))
            curve = np.minimum(curve, final_acc)
        return np.clip(curve, 0.0, MAX_ACCURACY)

    def _mean_epoch_seconds(self) -> float:
        """Per-configuration mean epoch duration (~1 minute).

        Larger models and smaller batches cost more; held constant per
        configuration apart from small per-epoch jitter (§9).
        """
        capacity = (
            float(self._config["conv1_filters"])
            * float(self._config["conv2_filters"])
            * float(self._config["conv3_filters"])
            * float(self._config["fc_units"])
        )
        capacity_factor = (math.log(capacity) - 15.0) / 8.0
        batch_factor = (128.0 / float(self._config["batch_size"])) ** 0.15
        return BASE_EPOCH_SECONDS * (1.0 + 0.3 * capacity_factor) * batch_factor

    # -------------------------------------------------------- TrainingRun

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self._config)

    @property
    def epochs_completed(self) -> int:
        return self._epoch

    @property
    def finished(self) -> bool:
        return self._epoch >= self._max_epochs

    @property
    def true_final_accuracy(self) -> float:
        """Noiseless end-of-training accuracy (analysis helper)."""
        return float(self._true_curve[-1])

    def step(self) -> EpochResult:
        if self.finished:
            raise RuntimeError("training run already finished")
        self._epoch += 1
        true_value = float(self._true_curve[self._epoch - 1])
        observed = true_value + 0.008 * float(self._rng.standard_normal())
        observed = float(np.clip(observed, 0.0, 1.0))
        duration = self._epoch_seconds * float(
            1.0 + 0.03 * self._rng.standard_normal()
        )
        return EpochResult(
            epoch=self._epoch,
            duration=max(duration, 1.0),
            metric=observed,
            done=self.finished,
        )

    def observed_stream(self) -> tuple:
        """The full observed stream, batched (sim fast-path hook).

        One vectorized draw consuming the same RNG stream ``step``
        would — ``standard_normal(2E)`` equals ``2E`` sequential scalar
        draws — so ``(durations, metrics)`` match epoch-by-epoch
        stepping bit for bit.  Consumes the run: call on a fresh run.
        """
        if self._epoch != 0:
            raise RuntimeError("observed_stream requires a fresh run")
        noise = self._rng.standard_normal(2 * self._max_epochs)
        metrics = np.clip(self._true_curve + 0.008 * noise[0::2], 0.0, 1.0)
        durations = np.maximum(
            self._epoch_seconds * (1.0 + 0.03 * noise[1::2]), 1.0
        )
        self._epoch = self._max_epochs
        return durations, metrics

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "epoch": self._epoch,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._epoch = int(state["epoch"])
        if not 0 <= self._epoch <= self._max_epochs:
            raise ValueError(f"snapshot epoch {self._epoch} out of range")
        self._rng.bit_generator.state = state["rng_state"]


class Cifar10Workload(Workload):
    """Calibrated synthetic CIFAR-10 exploration problem."""

    def __init__(self, calibration_seed: int = 20170711) -> None:
        self._space = cifar10_space()
        self._calibrator = QualityCalibrator(
            self._space, _score, seed=calibration_seed
        )
        self._domain = DomainSpec(
            kind="supervised",
            metric_name="validation_accuracy",
            target=0.77,
            kill_threshold=0.15,
            random_performance=RANDOM_ACCURACY,
            max_epochs=MAX_EPOCHS,
            eval_boundary=10,
        )

    @property
    def space(self) -> SearchSpace:
        return self._space

    @property
    def domain(self) -> DomainSpec:
        return self._domain

    def quality_quantile(self, config: Dict[str, Any]) -> float:
        """The calibrated quality quantile of ``config`` (analysis aid)."""
        return self._calibrator.quantile(config)

    def create_run(
        self, config: Dict[str, Any], seed: int = 0
    ) -> SyntheticSupervisedRun:
        self._space.validate(config)
        return SyntheticSupervisedRun(
            config=config,
            quantile=self._calibrator.quantile(config),
            seed=seed,
        )
