"""Synthetic LSTM structured-sparsity workload (§9 Ongoing Work).

The paper's ongoing-work section describes exploring a group-Lasso
hyperparameter λ for LSTM language models (after Wen et al., NIPS'16;
models from Zaremba et al. / Seo et al.), monitoring *two* metrics —
perplexity (the primary) and a sparsity metric — and terminating the
whole experiment through a user-defined global criterion once a model
is found that is both accurate and sparse.

This workload reproduces that setting synthetically:

* The primary metric is a perplexity-derived quality in [0, 1]
  (``1 − ppl / ppl_random``), so every scheduler works unmodified.
* Each epoch also reports ``extras = {"perplexity", "sparsity"}``.
* λ (``lasso_lambda``) drives a genuine trade-off: more sparsity, but
  past a sweet spot the perplexity degrades — the search problem the
  paper describes.
"""

from __future__ import annotations

import math
from typing import Any, Dict

import numpy as np

from ..generators.space import (
    Choice,
    IntUniform,
    LogUniform,
    SearchSpace,
    Uniform,
)
from .base import DomainSpec, EpochResult, TrainingRun, Workload
from .calibration import QualityCalibrator, stable_config_seed

__all__ = ["lstm_space", "LSTMSparsityWorkload", "SyntheticLSTMRun"]

RANDOM_PERPLEXITY = 800.0
BEST_PERPLEXITY = 65.0
MAX_EPOCHS = 60


def lstm_space() -> SearchSpace:
    """Hyperparameters of an LSTM language model with group Lasso."""
    return SearchSpace(
        [
            LogUniform("learning_rate", 1e-2, 10.0),
            LogUniform("lasso_lambda", 1e-6, 1e-2),
            IntUniform("hidden_size", 200, 1500),
            IntUniform("embed_size", 100, 800),
            Choice("num_layers", (1, 2, 3)),
            Uniform("dropout", 0.0, 0.7),
            Choice("batch_size", (16, 32, 64)),
            Choice("bptt", (20, 35, 50)),
            Uniform("lr_decay", 0.5, 0.95),
            Uniform("grad_clip", 0.25, 10.0),
        ]
    )


def _score(config: Dict[str, Any]) -> float:
    """Raw quality score (higher = lower final perplexity)."""
    lr = math.log10(float(config["learning_rate"]))
    score = -((lr - 0.0) / 0.8) ** 2  # SGD for LSTM LMs likes lr ~ 1
    lam = math.log10(float(config["lasso_lambda"]))
    # Sparsity regularisation: gentle up to ~1e-4, harmful beyond.
    score -= 1.2 * max(0.0, lam + 3.5) ** 2
    capacity = math.log(
        float(config["hidden_size"]) * float(config["embed_size"])
    ) + 0.5 * float(config["num_layers"])
    score += 0.5 * math.tanh((capacity - 13.0) / 2.0)
    dropout = float(config["dropout"])
    score -= 0.5 * ((dropout - 0.35) / 0.35) ** 2
    score -= 0.2 * ((float(config["lr_decay"]) - 0.85) / 0.2) ** 2
    clip = float(config["grad_clip"])
    score -= 0.2 * ((math.log10(clip) - 0.3) / 0.8) ** 2
    noise_rng = np.random.default_rng(stable_config_seed(config, salt=37))
    score += 0.4 * noise_rng.standard_normal()
    return score


class SyntheticLSTMRun(TrainingRun):
    """Perplexity + sparsity curves for one configuration."""

    def __init__(
        self,
        config: Dict[str, Any],
        quantile: float,
        seed: int,
        max_epochs: int = MAX_EPOCHS,
    ) -> None:
        self._config = dict(config)
        self._quantile = quantile
        self._max_epochs = max_epochs
        self._epoch = 0
        self._rng = np.random.default_rng(
            stable_config_seed(config, salt=900 + seed)
        )
        shape_rng = np.random.default_rng(stable_config_seed(config, salt=41))
        # Final perplexity from the calibrated quantile: best configs
        # approach BEST_PERPLEXITY, the worst stay near random.
        u = quantile
        self._final_ppl = float(
            BEST_PERPLEXITY
            + (RANDOM_PERPLEXITY * 0.9 - BEST_PERPLEXITY) * (1.0 - u) ** 1.5
        )
        self._half = max_epochs * (0.08 + 0.3 * shape_rng.random())
        self._steep = 1.5 + shape_rng.random()
        # Sparsity plateau grows with λ; reached faster than perplexity.
        lam = math.log10(float(config["lasso_lambda"]))
        self._sparsity_plateau = float(np.clip(0.9 / (1 + math.exp(-(lam + 4.0))), 0.02, 0.9))
        self._epoch_seconds = 45.0 * (
            1.0
            + 0.3 * (math.log(float(config["hidden_size"])) - 6.5)
        )

    def _perplexity_at(self, epoch: int) -> float:
        growth = epoch**self._steep / (
            epoch**self._steep + self._half**self._steep
        )
        end_growth = self._max_epochs**self._steep / (
            self._max_epochs**self._steep + self._half**self._steep
        )
        # Log-space interpolation from random perplexity to the final.
        log_ppl = math.log(RANDOM_PERPLEXITY) + (
            math.log(self._final_ppl) - math.log(RANDOM_PERPLEXITY)
        ) * (growth / end_growth)
        return math.exp(log_ppl)

    def _sparsity_at(self, epoch: int) -> float:
        ramp = min(1.0, epoch / (0.4 * self._max_epochs))
        return self._sparsity_plateau * ramp

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self._config)

    @property
    def epochs_completed(self) -> int:
        return self._epoch

    @property
    def finished(self) -> bool:
        return self._epoch >= self._max_epochs

    @property
    def true_final_quality(self) -> float:
        """Noiseless final primary metric (analysis helper)."""
        return 1.0 - self._final_ppl / RANDOM_PERPLEXITY

    def step(self) -> EpochResult:
        if self.finished:
            raise RuntimeError("training run already finished")
        self._epoch += 1
        ppl = self._perplexity_at(self._epoch) * float(
            1.0 + 0.01 * self._rng.standard_normal()
        )
        ppl = max(ppl, BEST_PERPLEXITY * 0.9)
        sparsity = float(
            np.clip(
                self._sparsity_at(self._epoch)
                + 0.01 * self._rng.standard_normal(),
                0.0,
                1.0,
            )
        )
        quality = float(np.clip(1.0 - ppl / RANDOM_PERPLEXITY, 0.0, 1.0))
        duration = self._epoch_seconds * float(
            1.0 + 0.03 * self._rng.standard_normal()
        )
        return EpochResult(
            epoch=self._epoch,
            duration=max(duration, 1.0),
            metric=quality,
            done=self.finished,
            extras={"perplexity": ppl, "sparsity": sparsity},
        )

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "epoch": self._epoch,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        epoch = int(state["epoch"])
        if not 0 <= epoch <= self._max_epochs:
            raise ValueError(f"snapshot epoch {epoch} out of range")
        self._epoch = epoch
        self._rng.bit_generator.state = state["rng_state"]


class LSTMSparsityWorkload(Workload):
    """Perplexity/sparsity trade-off exploration (§9 Ongoing Work)."""

    def __init__(self, calibration_seed: int = 20170713) -> None:
        self._space = lstm_space()
        self._calibrator = QualityCalibrator(
            self._space, _score, seed=calibration_seed
        )
        self._domain = DomainSpec(
            kind="supervised",
            metric_name="quality",  # 1 - perplexity / random_perplexity
            target=0.88,  # perplexity <= ~96
            kill_threshold=0.10,
            random_performance=0.0,
            max_epochs=MAX_EPOCHS,
            eval_boundary=5,
        )

    @property
    def space(self) -> SearchSpace:
        return self._space

    @property
    def domain(self) -> DomainSpec:
        return self._domain

    def quality_quantile(self, config: Dict[str, Any]) -> float:
        return self._calibrator.quantile(config)

    def create_run(self, config: Dict[str, Any], seed: int = 0) -> SyntheticLSTMRun:
        self._space.validate(config)
        return SyntheticLSTMRun(
            config=config, quantile=self._calibrator.quantile(config), seed=seed
        )
