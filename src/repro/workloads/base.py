"""Workload abstraction: what HyperDrive schedules.

A :class:`Workload` bundles a hyperparameter :class:`SearchSpace` with a
:class:`DomainSpec` (targets, kill thresholds, normalisation — the
"domain knowledge from the model owner" of §2.1) and a factory for
:class:`TrainingRun` objects.

A :class:`TrainingRun` is the unit the Node Agent drives: calling
:meth:`TrainingRun.step` trains for one epoch and returns an
:class:`EpochResult` carrying the epoch duration and the evaluation
metric.  Runs are suspendable: :meth:`TrainingRun.snapshot_state`
captures everything needed for :meth:`TrainingRun.restore_state` to
continue the run on another machine — the CRIU role from §5.1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..generators.space import SearchSpace
from ..metrics.stats import minmax_normalize

__all__ = ["DomainSpec", "EpochResult", "TrainingRun", "Workload"]


@dataclass(frozen=True)
class DomainSpec:
    """Model-owner domain knowledge consumed by scheduling policies.

    Attributes:
        kind: ``"supervised"`` or ``"reinforcement"``.
        metric_name: e.g. ``"validation_accuracy"`` or ``"reward"``.
        target: raw-scale target performance (paper: 0.77 accuracy for
            CIFAR-10; reward 200 for LunarLander).
        kill_threshold: raw-scale non-learning threshold used for early
            termination (0.15 accuracy; -100 reward).
        random_performance: raw performance of a non-learning model
            (0.10 accuracy; about -200 reward for a random lander).
        max_epochs: maximum epochs a configuration may train.
        eval_boundary: the paper's ``b``: policies act every ``b``-th
            epoch (10 for supervised, RL's 2000 iterations expressed in
            this repo's epoch units).
        r_min / r_max: min-max normalisation range for RL rewards
            (eq. 4); None for metrics already in [0, 1].
    """

    kind: str
    metric_name: str
    target: float
    kill_threshold: float
    random_performance: float
    max_epochs: int
    eval_boundary: int
    r_min: Optional[float] = None
    r_max: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("supervised", "reinforcement"):
            raise ValueError(f"unknown domain kind {self.kind!r}")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be positive")
        if self.eval_boundary < 1:
            raise ValueError("eval_boundary must be positive")
        if (self.r_min is None) != (self.r_max is None):
            raise ValueError("r_min and r_max must be given together")

    @property
    def normalizes(self) -> bool:
        return self.r_min is not None

    def normalize(self, value: float) -> float:
        """Map a raw metric into [0, 1] for the curve predictor."""
        if not self.normalizes:
            return float(min(max(value, 0.0), 1.0))
        return float(minmax_normalize([value], self.r_min, self.r_max)[0])

    @property
    def normalized_target(self) -> float:
        return self.normalize(self.target)

    @property
    def normalized_kill_threshold(self) -> float:
        return self.normalize(self.kill_threshold)


@dataclass(frozen=True)
class EpochResult:
    """One epoch of training as observed by the Node Agent.

    Attributes:
        epoch: 1-based epoch index just completed.
        duration: wall-clock seconds the epoch took (simulated time in
            the DES, measured time in the live runtime).
        metric: raw-scale evaluation metric after this epoch.
        done: True when the run has exhausted its epoch budget.
        extras: additional model-owner metrics beyond the primary one
            (§9 Ongoing Work: e.g. model sparsity alongside perplexity).
            Carried through to :class:`~repro.framework.events.AppStat`
            so SAPs can build multi-metric termination criteria.
    """

    epoch: int
    duration: float
    metric: float
    done: bool
    extras: Dict[str, float] = field(default_factory=dict)


class TrainingRun(abc.ABC):
    """A single configuration's training process."""

    @property
    @abc.abstractmethod
    def config(self) -> Dict[str, Any]:
        """The hyperparameter configuration being trained."""

    @property
    @abc.abstractmethod
    def epochs_completed(self) -> int:
        """How many epochs have been trained so far."""

    @abc.abstractmethod
    def step(self) -> EpochResult:
        """Train one epoch and return its result.

        Raises:
            RuntimeError: if called after the run finished.
        """

    @abc.abstractmethod
    def snapshot_state(self) -> Dict[str, Any]:
        """Capture resumable state (JSON-serialisable plus ndarrays)."""

    @abc.abstractmethod
    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore a state captured by :meth:`snapshot_state`."""

    @property
    def finished(self) -> bool:
        return False


class Workload(abc.ABC):
    """A schedulable hyperparameter-exploration problem."""

    @property
    @abc.abstractmethod
    def space(self) -> SearchSpace:
        """The hyperparameter search space."""

    @property
    @abc.abstractmethod
    def domain(self) -> DomainSpec:
        """Domain knowledge for scheduling policies."""

    @abc.abstractmethod
    def create_run(self, config: Dict[str, Any], seed: int = 0) -> TrainingRun:
        """Instantiate a training run for ``config``.

        Args:
            config: a point from :attr:`space`.
            seed: controls the run's stochasticity (weight init, data
                order, environment randomness).
        """
