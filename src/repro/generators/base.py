"""Hyperparameter Generator (HG) interface.

Matches the pluggable API in §4.2 of the paper::

    create_job()  -> (job_id, hyperparameters)
    report_final_performance(job_id, performance)

Random and grid HGs never use the report call; adaptive generators
(Bayesian optimisation) condition future proposals on it.
"""

from __future__ import annotations

import abc
import itertools
from typing import Any, Dict, Optional, Tuple

from .space import SearchSpace

__all__ = ["HyperparameterGenerator", "ExhaustedSpaceError"]


class ExhaustedSpaceError(RuntimeError):
    """Raised by ``create_job`` when the generator has no more points."""


class HyperparameterGenerator(abc.ABC):
    """Base class for all HGs.

    Subclasses implement :meth:`_propose`; this base assigns job ids
    and records proposals so reported performance can be matched back
    to the configuration that produced it.
    """

    def __init__(self, space: SearchSpace) -> None:
        self.space = space
        self._counter = itertools.count()
        self._proposed: Dict[str, Dict[str, Any]] = {}
        self._reported: Dict[str, float] = {}

    @abc.abstractmethod
    def _propose(self) -> Dict[str, Any]:
        """Produce the next configuration to try."""

    def create_job(self) -> Tuple[str, Dict[str, Any]]:
        """Mint a new (job_id, configuration) pair."""
        config = self._propose()
        self.space.validate(config)
        job_id = f"job-{next(self._counter):04d}"
        self._proposed[job_id] = dict(config)
        return job_id, dict(config)

    def report_final_performance(self, job_id: str, performance: float) -> None:
        """Feed back the final model performance of a finished job."""
        if job_id not in self._proposed:
            raise KeyError(f"unknown job id {job_id!r}")
        self._reported[job_id] = float(performance)
        self._observe(self._proposed[job_id], float(performance))

    def _observe(self, config: Dict[str, Any], performance: float) -> None:
        """Hook for adaptive generators; no-op by default."""

    @property
    def num_proposed(self) -> int:
        return len(self._proposed)

    @property
    def num_reported(self) -> int:
        return len(self._reported)

    def configuration_of(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The configuration proposed under ``job_id``, if any."""
        config = self._proposed.get(job_id)
        return dict(config) if config is not None else None
