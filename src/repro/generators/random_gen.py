"""Random-search Hyperparameter Generator.

The paper's evaluation uses random search with a fixed seed for every
policy so all schedulers see the same configuration sequence (§6.1);
:class:`RandomGenerator` reproduces that by being fully deterministic
given its seed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from .base import ExhaustedSpaceError, HyperparameterGenerator
from .space import SearchSpace

__all__ = ["RandomGenerator"]


class RandomGenerator(HyperparameterGenerator):
    """Uniform random sampling from the search space.

    Args:
        space: the hyperparameter space.
        seed: RNG seed; two generators with the same seed emit the same
            configuration sequence.
        max_configs: optional cap after which ``create_job`` raises
            :class:`ExhaustedSpaceError` (the paper caps at 100).
    """

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        max_configs: Optional[int] = None,
    ) -> None:
        super().__init__(space)
        if max_configs is not None and max_configs < 1:
            raise ValueError("max_configs must be positive when given")
        self._rng = np.random.default_rng(seed)
        self.max_configs = max_configs

    def _propose(self) -> Dict[str, Any]:
        if self.max_configs is not None and self.num_proposed >= self.max_configs:
            raise ExhaustedSpaceError(
                f"random generator exhausted after {self.max_configs} configs"
            )
        return self.space.sample(self._rng)
