"""Hyperparameter Generators (HGs) and search-space definitions."""

from .base import ExhaustedSpaceError, HyperparameterGenerator
from .bayesian import BayesianGenerator, GaussianProcess, expected_improvement
from .grid import GridGenerator
from .random_gen import RandomGenerator
from .tpe import TPEGenerator
from .space import Choice, Dimension, IntUniform, LogUniform, SearchSpace, Uniform

__all__ = [
    "ExhaustedSpaceError",
    "HyperparameterGenerator",
    "RandomGenerator",
    "GridGenerator",
    "BayesianGenerator",
    "TPEGenerator",
    "GaussianProcess",
    "expected_improvement",
    "SearchSpace",
    "Dimension",
    "Uniform",
    "LogUniform",
    "IntUniform",
    "Choice",
]
