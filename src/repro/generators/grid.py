"""Grid-search Hyperparameter Generator.

Enumerates the Cartesian product of per-dimension grids.  The product
is generated lazily so high-dimensional spaces (CIFAR-10 has 14
dimensions) do not materialise the full grid up front.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from .base import ExhaustedSpaceError, HyperparameterGenerator
from .space import SearchSpace

__all__ = ["GridGenerator"]


class GridGenerator(HyperparameterGenerator):
    """Cartesian-product grid over the search space.

    Args:
        space: the hyperparameter space.
        resolution: number of points per continuous dimension.
        max_configs: optional cap on how many grid points to emit.
    """

    def __init__(
        self,
        space: SearchSpace,
        resolution: int = 3,
        max_configs: Optional[int] = None,
    ) -> None:
        super().__init__(space)
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.resolution = resolution
        self.max_configs = max_configs
        axes = [dim.grid(resolution) for dim in space.dimensions]
        self._iterator = itertools.product(*axes)

    def _propose(self) -> Dict[str, Any]:
        if self.max_configs is not None and self.num_proposed >= self.max_configs:
            raise ExhaustedSpaceError(
                f"grid generator capped at {self.max_configs} configs"
            )
        try:
            point = next(self._iterator)
        except StopIteration:
            raise ExhaustedSpaceError("grid fully enumerated") from None
        return dict(zip(self.space.names, point))
