"""Typed hyperparameter search spaces.

A :class:`SearchSpace` is an ordered collection of named dimensions;
each dimension knows how to sample itself, enumerate grid points, and
validate values.  The space is the single definition shared by every
Hyperparameter Generator (random, grid, Bayesian) and by the synthetic
workloads, which map sampled configurations to learning-curve shapes.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "Dimension",
    "Uniform",
    "LogUniform",
    "IntUniform",
    "Choice",
    "SearchSpace",
]


class Dimension(abc.ABC):
    """One named hyperparameter dimension."""

    name: str

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one random value."""

    @abc.abstractmethod
    def grid(self, resolution: int) -> List[Any]:
        """Enumerate up to ``resolution`` evenly spread values."""

    @abc.abstractmethod
    def contains(self, value: Any) -> bool:
        """Whether ``value`` is a legal setting for this dimension."""

    @abc.abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a legal value into [0, 1] (used by the Bayesian HG)."""

    @abc.abstractmethod
    def from_unit(self, u: float) -> Any:
        """Inverse of :meth:`to_unit` (approximately, for discretes)."""


@dataclass(frozen=True)
class Uniform(Dimension):
    """Continuous uniform dimension on [low, high]."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise ValueError(f"{self.name}: high must exceed low")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def grid(self, resolution: int) -> List[float]:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        if resolution == 1:
            return [(self.low + self.high) / 2.0]
        return list(np.linspace(self.low, self.high, resolution))

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high

    def to_unit(self, value: Any) -> float:
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        return self.low + float(np.clip(u, 0.0, 1.0)) * (self.high - self.low)


@dataclass(frozen=True)
class LogUniform(Dimension):
    """Log-uniform dimension on [low, high]; both bounds positive.

    The canonical choice for learning rates and regularisation
    strengths, which the CIFAR-10 space uses heavily.
    """

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0:
            raise ValueError(f"{self.name}: log-uniform bounds must be > 0")
        if not self.high > self.low:
            raise ValueError(f"{self.name}: high must exceed low")

    def sample(self, rng: np.random.Generator) -> float:
        return float(
            math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        )

    def grid(self, resolution: int) -> List[float]:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        if resolution == 1:
            return [math.exp((math.log(self.low) + math.log(self.high)) / 2)]
        points = np.exp(
            np.linspace(math.log(self.low), math.log(self.high), resolution)
        )
        # exp(log(x)) can land one ulp outside the declared range.
        return [float(min(max(p, self.low), self.high)) for p in points]

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high

    def to_unit(self, value: Any) -> float:
        return (math.log(float(value)) - math.log(self.low)) / (
            math.log(self.high) - math.log(self.low)
        )

    def from_unit(self, u: float) -> float:
        log_low, log_high = math.log(self.low), math.log(self.high)
        value = math.exp(
            log_low + float(np.clip(u, 0.0, 1.0)) * (log_high - log_low)
        )
        # exp(log(high)) can overshoot by one ulp; keep the result legal.
        return min(max(value, self.low), self.high)


@dataclass(frozen=True)
class IntUniform(Dimension):
    """Integer uniform dimension on [low, high] inclusive."""

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.high >= self.low:
            raise ValueError(f"{self.name}: high must be >= low")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def grid(self, resolution: int) -> List[int]:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        count = min(resolution, self.high - self.low + 1)
        values = np.linspace(self.low, self.high, count)
        return sorted(set(int(round(v)) for v in values))

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, (int, np.integer))
            and self.low <= int(value) <= self.high
        )

    def to_unit(self, value: Any) -> float:
        if self.high == self.low:
            return 0.0
        return (int(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        span = self.high - self.low
        return self.low + int(round(float(np.clip(u, 0.0, 1.0)) * span))


@dataclass(frozen=True)
class Choice(Dimension):
    """Categorical dimension over an explicit tuple of options."""

    name: str
    options: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(self.options) == 0:
            raise ValueError(f"{self.name}: need at least one option")

    def sample(self, rng: np.random.Generator) -> Any:
        return self.options[int(rng.integers(0, len(self.options)))]

    def grid(self, resolution: int) -> List[Any]:
        return list(self.options[: max(1, resolution)])

    def contains(self, value: Any) -> bool:
        return value in self.options

    def to_unit(self, value: Any) -> float:
        idx = self.options.index(value)
        if len(self.options) == 1:
            return 0.0
        return idx / (len(self.options) - 1)

    def from_unit(self, u: float) -> Any:
        idx = int(round(float(np.clip(u, 0.0, 1.0)) * (len(self.options) - 1)))
        return self.options[idx]


class SearchSpace:
    """An ordered, named collection of hyperparameter dimensions."""

    def __init__(self, dimensions: Sequence[Dimension]) -> None:
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in {names}")
        self._dims: Dict[str, Dimension] = {d.name: d for d in dimensions}

    @property
    def dimensions(self) -> List[Dimension]:
        return list(self._dims.values())

    @property
    def names(self) -> List[str]:
        return list(self._dims)

    def __len__(self) -> int:
        return len(self._dims)

    def __getitem__(self, name: str) -> Dimension:
        return self._dims[name]

    def sample(self, rng: np.random.Generator) -> Dict[str, Any]:
        """Draw one full configuration."""
        return {name: dim.sample(rng) for name, dim in self._dims.items()}

    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise ValueError if ``config`` is not a legal point."""
        missing = set(self._dims) - set(config)
        if missing:
            raise ValueError(f"configuration missing dimensions: {sorted(missing)}")
        extra = set(config) - set(self._dims)
        if extra:
            raise ValueError(f"configuration has unknown dimensions: {sorted(extra)}")
        for name, dim in self._dims.items():
            if not dim.contains(config[name]):
                raise ValueError(
                    f"{name}={config[name]!r} outside the declared range"
                )

    def to_unit(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a configuration as a vector in the unit hypercube."""
        return np.array(
            [dim.to_unit(config[name]) for name, dim in self._dims.items()]
        )

    def from_unit(self, u: Sequence[float]) -> Dict[str, Any]:
        """Decode a unit-hypercube vector into a configuration."""
        u_arr = np.asarray(u, dtype=float)
        if u_arr.size != len(self._dims):
            raise ValueError(
                f"expected {len(self._dims)} coordinates, got {u_arr.size}"
            )
        return {
            name: dim.from_unit(u_arr[i])
            for i, (name, dim) in enumerate(self._dims.items())
        }
