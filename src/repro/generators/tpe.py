"""Tree-structured Parzen Estimator (TPE) Hyperparameter Generator.

TPE is the algorithm behind HyperOpt (Bergstra et al.), one of the
adaptive generators §4.2 names as pluggable into HyperDrive through the
HG shim.  Instead of modelling p(performance | config) like the GP
generator, TPE models two densities over the *unit-cube encoding* of
configurations:

* ``l(x)`` — density of the best γ-fraction of observed configs,
* ``g(x)`` — density of the rest,

and proposes the candidate maximising ``l(x)/g(x)``.  Densities are
per-dimension Parzen (Gaussian-kernel) estimates, which handles mixed
continuous/discrete spaces gracefully through the unit encoding.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from .base import ExhaustedSpaceError, HyperparameterGenerator
from .space import SearchSpace

__all__ = ["TPEGenerator"]


def _parzen_log_density(
    points: np.ndarray, candidates: np.ndarray, bandwidth: float
) -> np.ndarray:
    """Per-dimension product-kernel log density of candidates.

    Args:
        points: observed unit-cube points, shape (n, d).
        candidates: query points, shape (m, d).
        bandwidth: Gaussian kernel width in unit-cube units.

    Returns:
        Log densities, shape (m,).  A uniform fallback applies when no
        points exist.
    """
    if points.shape[0] == 0:
        return np.zeros(candidates.shape[0])
    # (m, n, d) kernel evaluations, product over d, mean over n.
    diffs = candidates[:, None, :] - points[None, :, :]
    log_kernels = -0.5 * (diffs / bandwidth) ** 2 - np.log(
        bandwidth * np.sqrt(2 * np.pi)
    )
    per_point = log_kernels.sum(axis=2)  # product kernel over dims
    max_per_candidate = per_point.max(axis=1, keepdims=True)
    return (
        max_per_candidate[:, 0]
        + np.log(np.exp(per_point - max_per_candidate).mean(axis=1))
    )


class TPEGenerator(HyperparameterGenerator):
    """TPE adaptive generator behind the standard HG API.

    Args:
        space: the hyperparameter space.
        seed: RNG seed.
        warmup: random proposals before TPE activates.
        gamma: fraction of observations treated as "good".
        pool_size: candidates sampled from l(x) and ranked by l/g.
        bandwidth: Parzen kernel width in unit-cube coordinates.
        exploration_fraction: probability of proposing a uniform random
            point instead of the l/g maximiser (guards against the
            good-set collapsing onto a poor local mode early).
        max_configs: optional cap on total proposals.
    """

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        warmup: int = 10,
        gamma: float = 0.25,
        pool_size: int = 128,
        bandwidth: float = 0.12,
        exploration_fraction: float = 0.15,
        max_configs: Optional[int] = None,
    ) -> None:
        super().__init__(space)
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        if pool_size < 2:
            raise ValueError("pool_size must be >= 2")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= exploration_fraction < 1.0:
            raise ValueError("exploration_fraction must be in [0, 1)")
        self._rng = np.random.default_rng(seed)
        self.warmup = warmup
        self.gamma = gamma
        self.pool_size = pool_size
        self.bandwidth = bandwidth
        self.exploration_fraction = exploration_fraction
        self.max_configs = max_configs
        self._observed_x: List[np.ndarray] = []
        self._observed_y: List[float] = []

    def _observe(self, config: Dict[str, Any], performance: float) -> None:
        self._observed_x.append(self.space.to_unit(config))
        self._observed_y.append(performance)

    def _split_observations(self):
        order = np.argsort(self._observed_y)[::-1]  # best first
        n_good = max(1, int(np.ceil(self.gamma * len(order))))
        points = np.stack(self._observed_x)
        return points[order[:n_good]], points[order[n_good:]]

    def _propose(self) -> Dict[str, Any]:
        if self.max_configs is not None and self.num_proposed >= self.max_configs:
            raise ExhaustedSpaceError(
                f"TPE generator capped at {self.max_configs} configs"
            )
        if len(self._observed_y) < self.warmup:
            return self.space.sample(self._rng)
        if self._rng.random() < self.exploration_fraction:
            return self.space.sample(self._rng)

        good, rest = self._split_observations()
        dim = len(self.space)
        # Candidates: perturbations of good points plus uniform draws.
        centers = good[self._rng.integers(0, good.shape[0], self.pool_size // 2)]
        perturbed = np.clip(
            centers + self.bandwidth * self._rng.standard_normal(centers.shape),
            0.0,
            1.0,
        )
        uniform = self._rng.random((self.pool_size - perturbed.shape[0], dim))
        candidates = np.concatenate([perturbed, uniform])

        log_l = _parzen_log_density(good, candidates, self.bandwidth)
        log_g = _parzen_log_density(rest, candidates, self.bandwidth)
        best = int(np.argmax(log_l - log_g))
        return self.space.from_unit(candidates[best])
