"""Gaussian-process Bayesian-optimisation Hyperparameter Generator.

Section 4.2 of the paper notes that adaptive generators (Spearmint,
GPyOpt, HyperOpt, Auto-WEKA) "can be plugged into HyperDrive with the
use of a shim that exposes the HG API".  This module is that shim plus
a self-contained GP-EI optimiser so the repository has a working
adaptive generator without external dependencies.

The GP uses a squared-exponential kernel over the unit-hypercube
encoding of configurations and maximises Expected Improvement over a
random candidate pool.  Before ``warmup`` observations arrive it falls
back to random sampling, which is both standard practice and what keeps
the first proposals identical to random search.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from scipy import linalg
from scipy.stats import norm

from .base import ExhaustedSpaceError, HyperparameterGenerator
from .space import SearchSpace

__all__ = ["GaussianProcess", "BayesianGenerator"]


class GaussianProcess:
    """Minimal GP regressor with an RBF kernel and white noise.

    Enough machinery for EI-based proposal ranking: fit on unit-cube
    points, predict mean and variance at candidates.
    """

    def __init__(
        self,
        length_scale: float = 0.3,
        signal_variance: float = 1.0,
        noise: float = 1e-4,
    ) -> None:
        if length_scale <= 0 or signal_variance <= 0 or noise <= 0:
            raise ValueError("GP hyperparameters must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise = noise
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_dists = np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :]
        sq_dists -= 2.0 * a @ b.T
        sq_dists = np.maximum(sq_dists, 0.0)
        return self.signal_variance * np.exp(
            -0.5 * sq_dists / self.length_scale**2
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        """Fit to observations ``x`` (n, d) in the unit cube, ``y`` (n,)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have matching first dimension")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y_norm = (y - self._y_mean) / self._y_std
        k = self._kernel(x, x) + self.noise * np.eye(x.shape[0])
        self._chol = linalg.cholesky(k, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), y_norm)
        self._x = x

    def predict(self, candidates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``candidates``."""
        if self._x is None or self._chol is None or self._alpha is None:
            raise RuntimeError("GP must be fitted before prediction")
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        k_star = self._kernel(candidates, self._x)
        mean = k_star @ self._alpha
        v = linalg.solve_triangular(self._chol, k_star.T, lower=True)
        var = self.signal_variance - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        return (
            mean * self._y_std + self._y_mean,
            np.sqrt(var) * self._y_std,
        )


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for maximisation: E[max(0, f - best - xi)] under N(mean, std^2)."""
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    z = (np.asarray(mean, dtype=float) - best - xi) / std
    return std * (z * norm.cdf(z) + norm.pdf(z))


class BayesianGenerator(HyperparameterGenerator):
    """GP-EI adaptive generator behind the standard HG API.

    Args:
        space: the hyperparameter space.
        seed: RNG seed (controls warmup randoms and candidate pools).
        warmup: number of random proposals before the GP activates.
        pool_size: random candidates scored by EI per proposal.
        max_configs: optional cap on total proposals.
    """

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        warmup: int = 8,
        pool_size: int = 256,
        max_configs: Optional[int] = None,
    ) -> None:
        super().__init__(space)
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        if pool_size < 2:
            raise ValueError("pool_size must be >= 2")
        self._rng = np.random.default_rng(seed)
        self.warmup = warmup
        self.pool_size = pool_size
        self.max_configs = max_configs
        self._observed_x: List[np.ndarray] = []
        self._observed_y: List[float] = []

    def _observe(self, config: Dict[str, Any], performance: float) -> None:
        self._observed_x.append(self.space.to_unit(config))
        self._observed_y.append(performance)

    def _propose(self) -> Dict[str, Any]:
        if self.max_configs is not None and self.num_proposed >= self.max_configs:
            raise ExhaustedSpaceError(
                f"bayesian generator capped at {self.max_configs} configs"
            )
        if len(self._observed_y) < self.warmup:
            return self.space.sample(self._rng)

        gp = GaussianProcess()
        gp.fit(np.stack(self._observed_x), np.asarray(self._observed_y))
        pool = self._rng.random((self.pool_size, len(self.space)))
        mean, std = gp.predict(pool)
        ei = expected_improvement(mean, std, best=max(self._observed_y))
        return self.space.from_unit(pool[int(np.argmax(ei))])
