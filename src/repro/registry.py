"""Named component registries shared by the CLI and the service.

One place maps user-facing names ("cifar10", "pop", "random") onto the
classes behind them, so the command line and the experiment service
(:mod:`repro.service`) accept identical vocabularies and reject unknown
names with the same error.  Adding a workload/policy/generator here
makes it reachable from ``repro run``, ``repro submit``, and the
daemon's ``POST /experiments`` at once.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .core.pop import POPPolicy
from .core.pop_budget import POPBudgetPolicy
from .generators.base import HyperparameterGenerator
from .generators.bayesian import BayesianGenerator
from .generators.grid import GridGenerator
from .generators.random_gen import RandomGenerator
from .generators.tpe import TPEGenerator
from .policies.bandit import BanditPolicy
from .policies.base import SchedulingPolicy
from .policies.default import DefaultPolicy
from .policies.earlyterm import EarlyTermPolicy
from .policies.hyperband import HyperBandPolicy, SuccessiveHalvingPolicy
from .policies.learned import LearnedPolicy, RandomInitLearnedPolicy
from .workloads.base import Workload
from .workloads.cifar10 import Cifar10Workload
from .workloads.lunarlander import LunarLanderWorkload
from .workloads.mlp import MLPWorkload

__all__ = [
    "WORKLOADS",
    "POLICIES",
    "GENERATORS",
    "build_workload",
    "build_policy",
    "build_generator",
    "default_gen_seed",
    "default_machines",
]

WORKLOADS: Dict[str, Callable] = {
    "cifar10": Cifar10Workload,
    "lunarlander": LunarLanderWorkload,
    "mlp": MLPWorkload,
}

POLICIES: Dict[str, Callable] = {
    "pop": POPPolicy,
    "pop-budget": POPBudgetPolicy,
    "bandit": BanditPolicy,
    "earlyterm": EarlyTermPolicy,
    "default": DefaultPolicy,
    "successive-halving": SuccessiveHalvingPolicy,
    "hyperband": HyperBandPolicy,
    "learned": LearnedPolicy,
    "learned-random": RandomInitLearnedPolicy,
}

GENERATORS: Dict[str, Callable] = {
    "random": RandomGenerator,
    "grid": GridGenerator,
    "bayesian": BayesianGenerator,
    "tpe": TPEGenerator,
}


def _lookup(registry: Dict[str, Callable], kind: str, name: str) -> Callable:
    try:
        return registry[name]
    except KeyError:
        choices = ", ".join(sorted(registry))
        raise ValueError(f"unknown {kind} {name!r} (choices: {choices})") from None


def default_gen_seed(workload_name: str) -> int:
    """The published generator seed for ``workload_name``."""
    from .analysis.experiments import RL_GENERATOR_SEED, SL_GENERATOR_SEED

    return RL_GENERATOR_SEED if workload_name == "lunarlander" else SL_GENERATOR_SEED


def default_machines(workload_name: str) -> int:
    """The paper's cluster size for ``workload_name``."""
    return 15 if workload_name == "lunarlander" else 4


def build_workload(name: str) -> Workload:
    """Instantiate the workload registered under ``name``."""
    return _lookup(WORKLOADS, "workload", name)()


def build_policy(name: str) -> SchedulingPolicy:
    """Instantiate the scheduling policy registered under ``name``."""
    return _lookup(POLICIES, "policy", name)()


def build_generator(
    name: str,
    workload: Workload,
    max_configs: int,
    gen_seed: Optional[int] = None,
) -> HyperparameterGenerator:
    """Instantiate the hyperparameter generator registered under ``name``.

    The grid generator is deterministic and takes a resolution instead
    of a seed; every other generator receives ``gen_seed``.
    """
    generator_cls = _lookup(GENERATORS, "generator", name)
    if name == "grid":
        return generator_cls(workload.space, resolution=3, max_configs=max_configs)
    return generator_cls(workload.space, seed=gen_seed, max_configs=max_configs)
