"""Statistics helpers shared by policies, benches, and analysis code.

Includes the min-max reward normalisation from §6.3 (eq. 4), empirical
CDFs for the distribution figures, box-plot summaries for the
time-to-target figures, and bootstrap confidence intervals used when
comparing policies across repeated experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "minmax_normalize",
    "minmax_denormalize",
    "ecdf",
    "BoxStats",
    "box_stats",
    "bootstrap_mean_ci",
    "speedup",
    "paired_bootstrap_speedup_ci",
]


def minmax_normalize(
    rewards: Sequence[float], r_min: float = -500.0, r_max: float = 300.0
) -> np.ndarray:
    """Min-max scale raw rewards into [0, 1] (paper eq. 4).

    The paper uses ``r_min = -500`` (empirical lower bound) and
    ``r_max = 300`` (environment upper bound) for LunarLander.  Values
    outside the declared range are clipped so the normalised curve is a
    valid input for the curve predictor.
    """
    if r_max <= r_min:
        raise ValueError("r_max must exceed r_min")
    arr = (np.asarray(rewards, dtype=float) - r_min) / (r_max - r_min)
    return np.clip(arr, 0.0, 1.0)


def minmax_denormalize(
    normalized: Sequence[float], r_min: float = -500.0, r_max: float = 300.0
) -> np.ndarray:
    """Inverse of :func:`minmax_normalize` (for in-range values)."""
    if r_max <= r_min:
        raise ValueError("r_max must exceed r_min")
    return np.asarray(normalized, dtype=float) * (r_max - r_min) + r_min


def ecdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions).

    Fractions are ``k / n`` for the k-th smallest value, so the last
    entry is exactly 1.0.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("ecdf of an empty sample is undefined")
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used for the paper's box-plot figures."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def spread(self) -> float:
        """Max-min range; the paper highlights POP's small spread."""
        return self.maximum - self.minimum


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute the box-plot summary of a sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("box_stats of an empty sample is undefined")
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    return BoxStats(
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
    )


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float, float]:
    """Bootstrap CI for the mean: returns (mean, low, high)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if rng is None:
        rng = np.random.default_rng(0)
    resamples = rng.choice(arr, size=(n_resamples, arr.size), replace=True)
    means = resamples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(means, [100 * alpha, 100 * (1 - alpha)])
    return float(arr.mean()), float(low), float(high)


def speedup(baseline: Sequence[float], improved: Sequence[float]) -> float:
    """Mean-over-mean speedup factor (how the paper reports 1.6x etc.)."""
    base = float(np.mean(np.asarray(baseline, dtype=float)))
    imp = float(np.mean(np.asarray(improved, dtype=float)))
    if imp <= 0:
        raise ValueError("improved times must be positive")
    return base / imp


def paired_bootstrap_speedup_ci(
    baseline: Sequence[float],
    improved: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float, float]:
    """Paired bootstrap CI around :func:`speedup`.

    ``baseline[i]`` and ``improved[i]`` must come from the *same*
    replicate (same seed / same configuration order), so resampling
    replicate indices preserves the pairing.  Returns ``(speedup,
    low, high)`` — e.g. ``(1.6, 1.3, 1.9)`` renders as
    ``1.6x [1.3, 1.9]`` — where the point estimate is the plain
    mean-over-mean :func:`speedup` and the bounds are percentile
    bootstrap over replicate resamples.

    Raises:
        ValueError: on mismatched lengths, empty samples, a
            ``confidence`` outside (0, 1), or non-positive improved
            times.
    """
    base = np.asarray(baseline, dtype=float)
    imp = np.asarray(improved, dtype=float)
    if base.shape != imp.shape or base.ndim != 1:
        raise ValueError(
            "paired samples must be 1-D and equally long "
            f"(got {base.shape} vs {imp.shape})"
        )
    if base.size == 0:
        raise ValueError("cannot bootstrap empty paired samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if np.any(imp <= 0):
        raise ValueError("improved times must be positive")
    point = float(base.mean()) / float(imp.mean())
    if rng is None:
        rng = np.random.default_rng(0)
    indices = rng.integers(0, base.size, size=(n_resamples, base.size))
    ratios = base[indices].mean(axis=1) / imp[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(ratios, [100 * alpha, 100 * (1 - alpha)])
    return point, float(low), float(high)
