"""Statistics utilities for analysis and benchmarking."""

from .stats import (
    BoxStats,
    bootstrap_mean_ci,
    box_stats,
    ecdf,
    minmax_denormalize,
    minmax_normalize,
    speedup,
)

__all__ = [
    "BoxStats",
    "bootstrap_mean_ci",
    "box_stats",
    "ecdf",
    "minmax_denormalize",
    "minmax_normalize",
    "speedup",
]
