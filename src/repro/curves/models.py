"""Parametric learning-curve families.

This module implements the eleven parametric models used by the
probabilistic learning-curve predictor of Domhan et al. (IJCAI'15),
which HyperDrive's POP policy builds on.  Each family maps a
1-indexed epoch number ``x`` to a predicted performance value
``y`` given a parameter vector ``theta``.

All families are exposed through :class:`CurveModel` instances and
registered in :data:`CURVE_MODELS`.  The registry is what the
ensemble (:mod:`repro.curves.ensemble`) and the per-model fitting code
(:mod:`repro.curves.fitting`) iterate over.

The parameterisations follow Table 1 of Domhan et al.:

===============  =============================================
name             y(x)
===============  =============================================
vapor_pressure   exp(a + b / x + c * log(x))
pow3             c - a * x ** -alpha
log_log_linear   log(a * log(x) + b)
hill3            ymax * x**eta / (kappa**eta + x**eta)
log_power        a / (1 + (x / exp(b)) ** c)
pow4             c - (a * x + b) ** -alpha
mmf              alpha - (alpha - beta) / (1 + (kappa * x)**delta)
exp4             c - exp(-a * x**alpha + b)
janoschek        alpha - (alpha - beta) * exp(-kappa * x**delta)
weibull          alpha - (alpha - beta) * exp(-(kappa * x)**delta)
ilog2            c - a / log(x + 1)
===============  =============================================

Performance values are assumed to live in ``[0, 1]`` (HyperDrive
min-max normalises reinforcement-learning rewards into this range
before prediction, see :mod:`repro.metrics.stats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "CurveModel",
    "CURVE_MODELS",
    "model_names",
    "get_model",
]

# Clip exponents to avoid overflow in np.exp while keeping gradients sane.
_EXP_MAX = 50.0

# A tiny positive floor used to keep logarithms and divisions finite.
_EPS = 1e-12


def _safe_exp(z: np.ndarray) -> np.ndarray:
    return np.exp(np.clip(z, -_EXP_MAX, _EXP_MAX))


def _as_positive(x: np.ndarray) -> np.ndarray:
    """Return ``x`` clipped away from zero so powers and logs are finite."""
    return np.maximum(np.asarray(x, dtype=float), _EPS)


@dataclass(frozen=True)
class CurveModel:
    """A single parametric learning-curve family.

    Attributes:
        name: registry key, e.g. ``"weibull"``.
        param_names: ordered parameter names for ``theta``.
        func: vectorised ``y(x, theta)``.
        lower: per-parameter lower bounds used by fitting and priors.
        upper: per-parameter upper bounds.
        default: a reasonable starting guess inside the bounds.
        increasing_only: True when the family can only describe curves
            that improve over time (used to sanity-check fits).
    """

    name: str
    param_names: Tuple[str, ...]
    func: Callable[[np.ndarray, np.ndarray], np.ndarray]
    lower: Tuple[float, ...]
    upper: Tuple[float, ...]
    default: Tuple[float, ...]
    increasing_only: bool = True

    @property
    def num_params(self) -> int:
        return len(self.param_names)

    def __call__(self, x: np.ndarray, theta: Sequence[float]) -> np.ndarray:
        """Evaluate the family at epochs ``x`` for parameters ``theta``.

        Args:
            x: epoch indices (1-based); scalars and arrays both work.
            theta: parameter vector of length :attr:`num_params`.

        Returns:
            Predicted performance values, same shape as ``x``.  Values
            are finite (inputs are clipped) but not range-limited; the
            ensemble clips into ``[0, 1]`` where needed.
        """
        x_arr = _as_positive(np.asarray(x, dtype=float))
        theta_arr = np.asarray(theta, dtype=float)
        if theta_arr.shape[-1] != self.num_params:
            raise ValueError(
                f"{self.name} expects {self.num_params} parameters "
                f"{self.param_names}, got shape {theta_arr.shape}"
            )
        with np.errstate(all="ignore"):
            y = self.func(x_arr, theta_arr)
        return np.nan_to_num(y, nan=0.0, posinf=1e6, neginf=-1e6)

    def in_bounds(self, theta: Sequence[float]) -> bool:
        theta_arr = np.asarray(theta, dtype=float)
        return bool(
            np.all(theta_arr >= np.asarray(self.lower))
            and np.all(theta_arr <= np.asarray(self.upper))
        )

    def clip_to_bounds(self, theta: Sequence[float]) -> np.ndarray:
        return np.clip(
            np.asarray(theta, dtype=float),
            np.asarray(self.lower),
            np.asarray(self.upper),
        )


def _vapor_pressure(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    a, b, c = t[..., 0], t[..., 1], t[..., 2]
    return _safe_exp(a + b / x + c * np.log(x))


def _pow3(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    c, a, alpha = t[..., 0], t[..., 1], t[..., 2]
    return c - a * np.power(x, -np.abs(alpha))


def _log_log_linear(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    a, b = t[..., 0], t[..., 1]
    inner = np.maximum(a * np.log(x) + b, _EPS)
    return np.log(inner)


def _hill3(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    ymax, eta, kappa = t[..., 0], t[..., 1], t[..., 2]
    xe = np.power(x, eta)
    return ymax * xe / (np.power(np.maximum(kappa, _EPS), eta) + xe)


def _log_power(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    a, b, c = t[..., 0], t[..., 1], t[..., 2]
    return a / (1.0 + np.power(x / _safe_exp(b), c))


def _pow4(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    c, a, b, alpha = t[..., 0], t[..., 1], t[..., 2], t[..., 3]
    base = np.maximum(a * x + b, _EPS)
    return c - np.power(base, -np.abs(alpha))


def _mmf(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    alpha, beta, kappa, delta = t[..., 0], t[..., 1], t[..., 2], t[..., 3]
    return alpha - (alpha - beta) / (
        1.0 + np.power(np.maximum(kappa, _EPS) * x, delta)
    )


def _exp4(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    c, a, b, alpha = t[..., 0], t[..., 1], t[..., 2], t[..., 3]
    return c - _safe_exp(-a * np.power(x, alpha) + b)


def _janoschek(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    alpha, beta, kappa, delta = t[..., 0], t[..., 1], t[..., 2], t[..., 3]
    return alpha - (alpha - beta) * _safe_exp(-kappa * np.power(x, delta))


def _weibull(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    alpha, beta, kappa, delta = t[..., 0], t[..., 1], t[..., 2], t[..., 3]
    return alpha - (alpha - beta) * _safe_exp(
        -np.power(np.maximum(kappa, _EPS) * x, delta)
    )


def _ilog2(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    c, a = t[..., 0], t[..., 1]
    return c - a / np.log(x + 1.0)


CURVE_MODELS: Dict[str, CurveModel] = {}


def _register(model: CurveModel) -> CurveModel:
    CURVE_MODELS[model.name] = model
    return model


_register(
    CurveModel(
        name="vapor_pressure",
        param_names=("a", "b", "c"),
        func=_vapor_pressure,
        lower=(-10.0, -10.0, -2.0),
        upper=(2.0, 2.0, 2.0),
        default=(-1.0, -1.0, 0.1),
    )
)
_register(
    CurveModel(
        name="pow3",
        param_names=("c", "a", "alpha"),
        func=_pow3,
        lower=(0.0, 0.0, 0.01),
        upper=(1.5, 2.0, 5.0),
        default=(0.7, 0.5, 0.5),
    )
)
_register(
    CurveModel(
        name="log_log_linear",
        param_names=("a", "b"),
        func=_log_log_linear,
        lower=(0.0, 1.0),
        upper=(2.0, 3.0),
        default=(0.2, 1.2),
    )
)
_register(
    CurveModel(
        name="hill3",
        param_names=("ymax", "eta", "kappa"),
        func=_hill3,
        lower=(0.0, 0.01, 0.01),
        upper=(1.5, 5.0, 200.0),
        default=(0.7, 1.0, 10.0),
    )
)
_register(
    CurveModel(
        name="log_power",
        param_names=("a", "b", "c"),
        func=_log_power,
        lower=(0.0, -5.0, -5.0),
        upper=(1.5, 5.0, 0.0),
        default=(0.7, 2.0, -1.0),
    )
)
_register(
    CurveModel(
        name="pow4",
        param_names=("c", "a", "b", "alpha"),
        func=_pow4,
        lower=(0.0, 0.0, 0.0, 0.01),
        upper=(1.5, 2.0, 10.0, 5.0),
        default=(0.7, 0.2, 1.0, 0.5),
    )
)
_register(
    CurveModel(
        name="mmf",
        param_names=("alpha", "beta", "kappa", "delta"),
        func=_mmf,
        lower=(0.0, 0.0, 0.0, 0.01),
        upper=(1.5, 1.0, 5.0, 5.0),
        default=(0.7, 0.1, 0.05, 1.0),
    )
)
_register(
    CurveModel(
        name="exp4",
        param_names=("c", "a", "b", "alpha"),
        func=_exp4,
        lower=(0.0, 0.0, -5.0, 0.01),
        upper=(1.5, 2.0, 5.0, 2.0),
        default=(0.7, 0.1, 0.0, 1.0),
    )
)
_register(
    CurveModel(
        name="janoschek",
        param_names=("alpha", "beta", "kappa", "delta"),
        func=_janoschek,
        lower=(0.0, 0.0, 0.0, 0.01),
        upper=(1.5, 1.0, 2.0, 5.0),
        default=(0.7, 0.1, 0.05, 1.0),
    )
)
_register(
    CurveModel(
        name="weibull",
        param_names=("alpha", "beta", "kappa", "delta"),
        func=_weibull,
        lower=(0.0, 0.0, 0.0, 0.01),
        upper=(1.5, 1.0, 2.0, 5.0),
        default=(0.7, 0.1, 0.05, 1.0),
    )
)
_register(
    CurveModel(
        name="ilog2",
        param_names=("c", "a"),
        func=_ilog2,
        lower=(0.0, 0.0),
        upper=(1.5, 2.0),
        default=(0.7, 0.3),
    )
)


def model_names() -> Tuple[str, ...]:
    """Names of all registered curve families, in registration order."""
    return tuple(CURVE_MODELS)


def get_model(name: str) -> CurveModel:
    """Look up a curve family by name.

    Raises:
        KeyError: if ``name`` is not registered.
    """
    try:
        return CURVE_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown curve model {name!r}; known: {sorted(CURVE_MODELS)}"
        ) from None
