"""Affine-invariant ensemble MCMC sampler (Goodman & Weare stretch move).

This is a from-scratch replacement for the ``emcee`` sampler used by the
public implementation of Domhan et al.'s learning-curve predictor that
the HyperDrive paper adapted.  The stretch move updates each walker by
proposing a point along the line through it and a randomly chosen
complementary walker:

    x_new = x_j + z * (x_k - x_j),   z ~ g(z) ∝ 1/sqrt(z) on [1/a, a]

accepted with probability ``min(1, z^(d-1) * pi(x_new)/pi(x_k))``.

The sampler is generic over any log-probability callable, which lets the
tests validate it against known distributions (Gaussians) independently
of the curve ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["EnsembleSampler", "SamplerResult"]

LogProbFn = Callable[[np.ndarray], float]
LogProbBatchFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class SamplerResult:
    """Output of an MCMC run.

    Attributes:
        chain: array of shape (n_steps, n_walkers, dim).
        log_probs: array of shape (n_steps, n_walkers).
        acceptance_rate: fraction of accepted proposals overall.
    """

    chain: np.ndarray
    log_probs: np.ndarray
    acceptance_rate: float

    def flat(self, burn: int = 0, thin: int = 1) -> np.ndarray:
        """Flatten to (n_samples, dim) after burn-in and thinning."""
        if burn >= self.chain.shape[0]:
            raise ValueError(
                f"burn={burn} discards the whole chain of "
                f"{self.chain.shape[0]} steps"
            )
        kept = self.chain[burn::thin]
        return kept.reshape(-1, kept.shape[-1])


class EnsembleSampler:
    """Goodman & Weare affine-invariant ensemble sampler.

    Args:
        n_walkers: ensemble size; must be even and > dim for the
            half-split update scheme to mix.
        dim: dimensionality of the target.
        log_prob_fn: log target density (up to a constant).
        stretch: the stretch-move scale parameter ``a`` (> 1).
        log_prob_batch_fn: optional vectorised density taking a
            ``(B, dim)`` block and returning ``(B,)`` log values.  When
            given, the sampler scores each half-ensemble's proposals in
            one call instead of one python call per walker — the bulk
            of the §5.2 prediction-cost win for the MCMC backend.  It
            must agree with ``log_prob_fn`` row-for-row: the rng stream
            and the accept/reject sequence are unchanged, so batched
            and scalar runs produce identical chains.
    """

    def __init__(
        self,
        n_walkers: int,
        dim: int,
        log_prob_fn: LogProbFn,
        stretch: float = 2.0,
        log_prob_batch_fn: Optional[LogProbBatchFn] = None,
    ) -> None:
        if n_walkers < 2 or n_walkers % 2 != 0:
            raise ValueError("n_walkers must be an even integer >= 2")
        if dim < 1:
            raise ValueError("dim must be positive")
        if stretch <= 1.0:
            raise ValueError("stretch parameter must exceed 1")
        self.n_walkers = n_walkers
        self.dim = dim
        self.log_prob_fn = log_prob_fn
        self.log_prob_batch_fn = log_prob_batch_fn
        self.stretch = stretch

    def _score(self, block: np.ndarray) -> np.ndarray:
        """Log probabilities of a (B, dim) block, batched when possible."""
        if self.log_prob_batch_fn is not None:
            return np.asarray(self.log_prob_batch_fn(block), dtype=float)
        return np.array([self.log_prob_fn(row) for row in block])

    def _draw_z(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Sample from g(z) ∝ 1/sqrt(z) on [1/a, a] via inverse CDF."""
        a = self.stretch
        u = rng.random(size)
        return (u * (np.sqrt(a) - np.sqrt(1.0 / a)) + np.sqrt(1.0 / a)) ** 2

    def run(
        self,
        initial: np.ndarray,
        n_steps: int,
        rng: Optional[np.random.Generator] = None,
    ) -> SamplerResult:
        """Run the sampler for ``n_steps`` ensemble updates.

        Args:
            initial: starting walker positions, shape (n_walkers, dim).
                Every walker must have finite log probability.
            n_steps: number of ensemble sweeps to record.
            rng: randomness source.

        Returns:
            A :class:`SamplerResult` with the recorded chain.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        walkers = np.array(initial, dtype=float, copy=True)
        if walkers.shape != (self.n_walkers, self.dim):
            raise ValueError(
                f"initial must have shape ({self.n_walkers}, {self.dim}),"
                f" got {walkers.shape}"
            )
        log_probs = self._score(walkers)
        if not np.all(np.isfinite(log_probs)):
            bad = int(np.sum(~np.isfinite(log_probs)))
            raise ValueError(
                f"{bad} initial walker(s) have non-finite log probability"
            )

        chain = np.empty((n_steps, self.n_walkers, self.dim))
        chain_lp = np.empty((n_steps, self.n_walkers))
        accepted = 0
        total = 0
        half = self.n_walkers // 2

        for step in range(n_steps):
            # Update each half of the ensemble using the other half as
            # the complementary set (keeps the move valid and allows
            # vectorised partner selection).
            for first, second in (
                (slice(0, half), slice(half, None)),
                (slice(half, None), slice(0, half)),
            ):
                active = walkers[first]
                complement = walkers[second]
                n_active = active.shape[0]
                z = self._draw_z(n_active, rng)
                partners = complement[rng.integers(0, half, size=n_active)]
                proposals = partners + z[:, None] * (active - partners)
                # Score the whole half-ensemble's proposals up front
                # (one vectorised call when a batch density is wired);
                # the accept/reject loop below consumes the rng in the
                # same order as the scalar path, so chains match.
                proposal_lps = self._score(proposals)
                for i in range(n_active):
                    idx = i if first.start in (0, None) else half + i
                    new_lp = proposal_lps[i]
                    total += 1
                    if not np.isfinite(new_lp):
                        continue
                    log_accept = (
                        (self.dim - 1) * np.log(z[i]) + new_lp - log_probs[idx]
                    )
                    if np.log(rng.random()) < log_accept:
                        walkers[idx] = proposals[i]
                        log_probs[idx] = new_lp
                        accepted += 1
            chain[step] = walkers
            chain_lp[step] = log_probs

        rate = accepted / max(total, 1)
        return SamplerResult(chain=chain, log_probs=chain_lp, acceptance_rate=rate)
