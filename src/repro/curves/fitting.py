"""Least-squares fitting of parametric curve families to partial curves.

Fitting provides two things to the rest of the curve-prediction stack:

* a maximum-likelihood starting point for the MCMC walkers
  (:mod:`repro.curves.mcmc`), and
* the fast deterministic backend of :class:`repro.curves.predictor.
  CurvePredictor`, where per-model fits are combined with weights
  proportional to their goodness of fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
from scipy import optimize

from .models import CURVE_MODELS, CurveModel

__all__ = ["ModelFit", "fit_model", "fit_all_models"]


@dataclass(frozen=True)
class ModelFit:
    """Result of fitting one curve family to an observed prefix.

    Attributes:
        model: the fitted family.
        theta: best-fit parameter vector (clipped to the family bounds).
        mse: mean squared error on the observed prefix.
        success: whether the optimiser converged to a usable fit.
        covariance: Laplace-approximation parameter covariance
            ``mse · (JᵀJ)⁻¹`` at the optimum (None when unavailable).
            Short prefixes leave asymptote parameters weakly identified;
            sampling from this covariance recovers the within-family
            uncertainty that a full MCMC posterior would carry.
    """

    model: CurveModel
    theta: np.ndarray
    mse: float
    success: bool
    covariance: Optional[np.ndarray] = None

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.model(x, self.theta)

    def sample_thetas(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` parameter vectors from the Laplace posterior,
        clipped to the family bounds.  Falls back to the point estimate
        when no covariance is available."""
        if self.covariance is None:
            return np.tile(self.theta, (n, 1))
        try:
            draws = rng.multivariate_normal(self.theta, self.covariance, size=n)
        except np.linalg.LinAlgError:
            return np.tile(self.theta, (n, 1))
        return np.clip(
            draws,
            np.asarray(self.model.lower),
            np.asarray(self.model.upper),
        )


def _initial_guesses(
    model: CurveModel, y: np.ndarray, rng: np.random.Generator, restarts: int
) -> List[np.ndarray]:
    """Build starting points: the registry default, a data-informed guess,
    and random draws within the family bounds."""
    lower = np.asarray(model.lower)
    upper = np.asarray(model.upper)
    guesses = [np.asarray(model.default, dtype=float)]

    # Data-informed guess: families whose first parameter acts as an
    # asymptote benefit from starting near slightly above the last
    # observed value.
    informed = np.asarray(model.default, dtype=float).copy()
    asymptote = float(np.clip(y[-1] + 0.1, lower[0], upper[0]))
    informed[0] = asymptote
    guesses.append(informed)

    for _ in range(max(0, restarts - 2)):
        guesses.append(rng.uniform(lower, upper))
    return guesses


def fit_model(
    model: CurveModel,
    y: Sequence[float],
    rng: Optional[np.random.Generator] = None,
    restarts: int = 4,
    max_nfev: int = 200,
) -> ModelFit:
    """Fit one family to an observed learning-curve prefix.

    Args:
        model: the curve family to fit.
        y: observed performance values for epochs ``1..len(y)``.
        rng: randomness source for restart initialisation.
        restarts: number of optimiser starts (>= 1).

    Returns:
        The best :class:`ModelFit` across restarts.  ``success`` is
        False when every restart failed, in which case ``theta`` is the
        family default and ``mse`` the corresponding error.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    y_arr = np.asarray(y, dtype=float)
    if y_arr.ndim != 1 or y_arr.size < 2:
        raise ValueError("need a 1-D curve with at least 2 observations")
    x = np.arange(1, y_arr.size + 1, dtype=float)

    lower = np.asarray(model.lower)
    upper = np.asarray(model.upper)

    def residuals(theta: np.ndarray) -> np.ndarray:
        return model(x, theta) - y_arr

    best_theta = np.asarray(model.default, dtype=float)
    best_mse = float(np.mean(residuals(best_theta) ** 2))
    best_jac: Optional[np.ndarray] = None
    succeeded = False

    for guess in _initial_guesses(model, y_arr, rng, restarts):
        try:
            result = optimize.least_squares(
                residuals,
                x0=np.clip(guess, lower, upper),
                bounds=(lower, upper),
                method="trf",
                max_nfev=max_nfev,
            )
        except (ValueError, RuntimeError):
            continue
        mse = float(np.mean(result.fun**2))
        if np.isfinite(mse) and mse < best_mse:
            best_theta = model.clip_to_bounds(result.x)
            best_mse = mse
            best_jac = np.asarray(result.jac)
            succeeded = True

    covariance = _laplace_covariance(best_jac, best_mse, model.num_params)
    return ModelFit(
        model=model,
        theta=best_theta,
        mse=best_mse,
        success=succeeded,
        covariance=covariance,
    )


def _laplace_covariance(
    jac: Optional[np.ndarray], mse: float, num_params: int
) -> Optional[np.ndarray]:
    """Parameter covariance ``sigma² (JᵀJ)⁻¹`` with a small ridge.

    The ridge keeps weakly identified directions (typically asymptote
    parameters on short prefixes) finite instead of exploding, while
    still letting them carry most of the spread.
    """
    if jac is None or not np.all(np.isfinite(jac)):
        return None
    jtj = jac.T @ jac + 1e-6 * np.eye(num_params)
    try:
        inv = np.linalg.inv(jtj)
    except np.linalg.LinAlgError:
        return None
    sigma_sq = max(mse, 1e-6)
    cov = sigma_sq * inv
    if not np.all(np.isfinite(cov)):
        return None
    return 0.5 * (cov + cov.T)


def fit_all_models(
    y: Sequence[float],
    models: Optional[Iterable[CurveModel]] = None,
    rng: Optional[np.random.Generator] = None,
    restarts: int = 4,
    max_nfev: int = 200,
) -> Dict[str, ModelFit]:
    """Fit every registered family (or a subset) to the observed prefix.

    Returns a mapping from model name to its :class:`ModelFit`.
    """
    if models is None:
        models = CURVE_MODELS.values()
    if rng is None:
        rng = np.random.default_rng(0)
    return {
        m.name: fit_model(m, y, rng=rng, restarts=restarts, max_nfev=max_nfev)
        for m in models
    }
