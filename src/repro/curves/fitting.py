"""Least-squares fitting of parametric curve families to partial curves.

Fitting provides two things to the rest of the curve-prediction stack:

* a maximum-likelihood starting point for the MCMC walkers
  (:mod:`repro.curves.mcmc`), and
* the fast deterministic backend of :class:`repro.curves.predictor.
  CurvePredictor`, where per-model fits are combined with weights
  proportional to their goodness of fit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from .models import CURVE_MODELS, CurveModel

__all__ = ["ModelFit", "fit_model", "fit_all_models", "curve_cache_key"]

#: Key type of a fit-cache prefix: (prefix length, digest of the bytes).
CurveKey = Tuple[int, bytes]


def curve_cache_key(y: np.ndarray) -> CurveKey:
    """Stable cache key of one observed-curve prefix.

    The digest is computed over the raw float64 bytes, so two prefixes
    compare equal exactly when every observation is bit-identical —
    the same criterion under which a refit would reproduce the same
    :class:`ModelFit`.
    """
    y_arr = np.ascontiguousarray(y, dtype=float)
    digest = hashlib.blake2b(y_arr.tobytes(), digest_size=16).digest()
    return (int(y_arr.size), digest)


@dataclass(frozen=True)
class ModelFit:
    """Result of fitting one curve family to an observed prefix.

    Attributes:
        model: the fitted family.
        theta: best-fit parameter vector (clipped to the family bounds).
        mse: mean squared error on the observed prefix.
        success: whether the optimiser converged to a usable fit.
        covariance: Laplace-approximation parameter covariance
            ``mse · (JᵀJ)⁻¹`` at the optimum (None when unavailable).
            Short prefixes leave asymptote parameters weakly identified;
            sampling from this covariance recovers the within-family
            uncertainty that a full MCMC posterior would carry.
    """

    model: CurveModel
    theta: np.ndarray
    mse: float
    success: bool
    covariance: Optional[np.ndarray] = None

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.model(x, self.theta)

    def sample_thetas(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` parameter vectors from the Laplace posterior,
        clipped to the family bounds.  Falls back to the point estimate
        when no covariance is available."""
        if self.covariance is None:
            return np.tile(self.theta, (n, 1))
        try:
            draws = rng.multivariate_normal(self.theta, self.covariance, size=n)
        except np.linalg.LinAlgError:
            return np.tile(self.theta, (n, 1))
        return np.clip(
            draws,
            np.asarray(self.model.lower),
            np.asarray(self.model.upper),
        )


def _initial_guesses(
    model: CurveModel, y: np.ndarray, rng: np.random.Generator, restarts: int
) -> List[np.ndarray]:
    """Build starting points: the registry default, a data-informed guess,
    and random draws within the family bounds."""
    lower = np.asarray(model.lower)
    upper = np.asarray(model.upper)
    guesses = [np.asarray(model.default, dtype=float)]

    # Data-informed guess: families whose first parameter acts as an
    # asymptote benefit from starting near slightly above the last
    # observed value.
    informed = np.asarray(model.default, dtype=float).copy()
    asymptote = float(np.clip(y[-1] + 0.1, lower[0], upper[0]))
    informed[0] = asymptote
    guesses.append(informed)

    for _ in range(max(0, restarts - 2)):
        guesses.append(rng.uniform(lower, upper))
    return guesses


def fit_model(
    model: CurveModel,
    y: Sequence[float],
    rng: Optional[np.random.Generator] = None,
    restarts: int = 4,
    max_nfev: int = 200,
    extra_guesses: Optional[Sequence[np.ndarray]] = None,
) -> ModelFit:
    """Fit one family to an observed learning-curve prefix.

    Args:
        model: the curve family to fit.
        y: observed performance values for epochs ``1..len(y)``.
        rng: randomness source for restart initialisation.
        restarts: number of optimiser starts (>= 1).
        extra_guesses: additional starting points tried after the
            generated ones — the warm-start hook used by the fit cache,
            which seeds the optimiser with the solution of the ``n-1``
            prefix.  Appending (not replacing) keeps the rng stream and
            the cold-start guesses identical to a call without them.

    Returns:
        The best :class:`ModelFit` across restarts.  ``success`` is
        False when every restart failed, in which case ``theta`` is the
        family default and ``mse`` the corresponding error.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    y_arr = np.asarray(y, dtype=float)
    if y_arr.ndim != 1 or y_arr.size < 2:
        raise ValueError("need a 1-D curve with at least 2 observations")
    x = np.arange(1, y_arr.size + 1, dtype=float)

    lower = np.asarray(model.lower)
    upper = np.asarray(model.upper)

    def residuals(theta: np.ndarray) -> np.ndarray:
        return model(x, theta) - y_arr

    best_theta = np.asarray(model.default, dtype=float)
    best_mse = float(np.mean(residuals(best_theta) ** 2))
    best_jac: Optional[np.ndarray] = None
    succeeded = False

    guesses = _initial_guesses(model, y_arr, rng, restarts)
    if extra_guesses is not None:
        guesses.extend(np.asarray(g, dtype=float) for g in extra_guesses)

    for guess in guesses:
        try:
            result = optimize.least_squares(
                residuals,
                x0=np.clip(guess, lower, upper),
                bounds=(lower, upper),
                method="trf",
                max_nfev=max_nfev,
            )
        except (ValueError, RuntimeError):
            continue
        mse = float(np.mean(result.fun**2))
        if np.isfinite(mse) and mse < best_mse:
            best_theta = model.clip_to_bounds(result.x)
            best_mse = mse
            best_jac = np.asarray(result.jac)
            succeeded = True

    covariance = _laplace_covariance(best_jac, best_mse, model.num_params)
    return ModelFit(
        model=model,
        theta=best_theta,
        mse=best_mse,
        success=succeeded,
        covariance=covariance,
    )


def _laplace_covariance(
    jac: Optional[np.ndarray], mse: float, num_params: int
) -> Optional[np.ndarray]:
    """Parameter covariance ``sigma² (JᵀJ)⁻¹`` with a small ridge.

    The ridge keeps weakly identified directions (typically asymptote
    parameters on short prefixes) finite instead of exploding, while
    still letting them carry most of the spread.
    """
    if jac is None or not np.all(np.isfinite(jac)):
        return None
    jtj = jac.T @ jac + 1e-6 * np.eye(num_params)
    try:
        inv = np.linalg.inv(jtj)
    except np.linalg.LinAlgError:
        return None
    sigma_sq = max(mse, 1e-6)
    cov = sigma_sq * inv
    if not np.all(np.isfinite(cov)):
        return None
    return 0.5 * (cov + cov.T)


def fit_all_models(
    y: Sequence[float],
    models: Optional[Iterable[CurveModel]] = None,
    rng: Optional[np.random.Generator] = None,
    restarts: int = 4,
    max_nfev: int = 200,
    cache=None,
    params_key: Optional[Tuple] = None,
) -> Dict[str, ModelFit]:
    """Fit every registered family (or a subset) to the observed prefix.

    Args:
        cache: optional prefix-keyed fit cache (duck-typed; see
            :class:`repro.curves.engine.FitCache`).  Fits are memoized
            on ``(family, curve prefix, params_key)``; a miss is
            warm-started from the cached fit of the ``n-1`` prefix so
            per-epoch refits reuse the previous solution instead of
            starting cold.
        params_key: hashable fingerprint of the fitting configuration
            (restarts, budgets, seed, ...).  Required when ``cache`` is
            given — entries fitted under different parameters must not
            alias.

    Returns a mapping from model name to its :class:`ModelFit`.
    """
    if models is None:
        models = CURVE_MODELS.values()
    if rng is None:
        rng = np.random.default_rng(0)
    if cache is None:
        return {
            m.name: fit_model(
                m, y, rng=rng, restarts=restarts, max_nfev=max_nfev
            )
            for m in models
        }
    if params_key is None:
        raise ValueError("params_key is required when a fit cache is given")
    y_arr = np.asarray(y, dtype=float)
    key = curve_cache_key(y_arr)
    prev_key = curve_cache_key(y_arr[:-1]) if y_arr.size > 2 else None
    fits: Dict[str, ModelFit] = {}
    for m in models:
        fit = cache.get(m.name, key, params_key)
        if fit is None:
            extra = None
            if prev_key is not None:
                warm = cache.peek(m.name, prev_key, params_key)
                if warm is not None and warm.success:
                    extra = [warm.theta]
            fit = fit_model(
                m, y_arr, rng=rng, restarts=restarts,
                max_nfev=max_nfev, extra_guesses=extra,
            )
            cache.put(m.name, key, params_key, fit, warm_started=extra is not None)
        fits[m.name] = fit
    return fits
