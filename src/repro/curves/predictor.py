"""Learning-curve predictors.

The POP policy asks one question of this module: given the observed
prefix ``y(1:n)`` of a configuration's learning curve, what is the
probability that the curve reaches a target value at or before each
future epoch ``m``?  (Section 3.1 of the paper, eq. 1.)

Three interchangeable backends implement :class:`CurvePredictor`:

* :class:`MCMCCurvePredictor` — the faithful reproduction of Domhan et
  al.'s model: a weighted ensemble of eleven parametric families whose
  posterior is explored with an affine-invariant MCMC sampler.
* :class:`LeastSquaresCurvePredictor` — a fast approximation that fits
  every family by bounded least squares, weights the fits by inverse
  MSE, and propagates uncertainty with residual-scaled noise.  This is
  the default for the simulator benches, mirroring the paper's own
  engineering move of cutting MCMC samples 250k → 70k for speed (§5.2).
* :class:`LastValuePredictor` — flat extrapolation of the most recent
  value; exists to reproduce the §2.2(a) ablation showing that
  instantaneous accuracy alone (as used by TuPAQ) is insufficient.

All predictors return a :class:`CurvePrediction`, which exposes sample
trajectories over the requested horizon plus the derived achieve-by
probabilities.  "Achieved by epoch m" is computed on the running
maximum of each sampled trajectory so the resulting per-epoch
probabilities are a proper (monotone) CDF — this realises the paper's
assumption that P(y(m) >= target) does not decrease with m.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .ensemble import CurveEnsemble
from .fitting import fit_all_models
from .mcmc import EnsembleSampler

__all__ = [
    "CurvePrediction",
    "CurvePredictor",
    "MCMCCurvePredictor",
    "LeastSquaresCurvePredictor",
    "LastValuePredictor",
    "InstrumentedCurvePredictor",
]


@dataclass(frozen=True)
class CurvePrediction:
    """Posterior prediction of a learning curve's future.

    Attributes:
        observed: the prefix the prediction conditioned on.
        horizon: predicted epoch indices (1-based, strictly after the
            prefix), shape (H,).
        samples: sampled future trajectories, shape (S, H).
    """

    observed: np.ndarray
    horizon: np.ndarray
    samples: np.ndarray

    @property
    def mean(self) -> np.ndarray:
        """Posterior mean trajectory over the horizon."""
        return self.samples.mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        """Posterior standard deviation per horizon epoch.

        The paper calls the scalar summary of this the *prediction
        accuracy* (PA): the spread across MCMC samples.
        """
        return self.samples.std(axis=0)

    @property
    def prediction_accuracy(self) -> float:
        """Scalar PA: standard deviation across samples at the final
        horizon epoch (larger = less certain)."""
        return float(self.samples[:, -1].std())

    def achieve_by_probabilities(self, target: float) -> np.ndarray:
        """P(curve reaches ``target`` at or before each horizon epoch).

        Uses the running maximum of each sampled trajectory (and the
        best value already observed) so the result is non-decreasing.
        """
        best_observed = float(np.max(self.observed)) if self.observed.size else -np.inf
        running = np.maximum.accumulate(self.samples, axis=1)
        running = np.maximum(running, best_observed)
        return (running >= target).mean(axis=0)

    def prob_exceeds(self, target: float, at_epoch: int) -> float:
        """Marginal P(y(m) >= target) at one horizon epoch ``m``."""
        matches = np.flatnonzero(self.horizon == at_epoch)
        if matches.size == 0:
            raise ValueError(f"epoch {at_epoch} not in prediction horizon")
        return float((self.samples[:, matches[0]] >= target).mean())


class CurvePredictor(abc.ABC):
    """Interface shared by every learning-curve prediction backend."""

    @abc.abstractmethod
    def predict(
        self, observed: Sequence[float], n_future: int
    ) -> CurvePrediction:
        """Predict ``n_future`` epochs past the observed prefix.

        Args:
            observed: performance values for epochs ``1..n`` (already
                normalised into [0, 1] for RL domains).
            n_future: number of future epochs to predict (>= 1).
        """

    def min_observations(self) -> int:
        """Smallest prefix length the backend can condition on."""
        return 3


def _check_inputs(observed: Sequence[float], n_future: int) -> np.ndarray:
    y = np.asarray(observed, dtype=float)
    if y.ndim != 1:
        raise ValueError("observed curve must be 1-D")
    if n_future < 1:
        raise ValueError("n_future must be >= 1")
    return y


class MCMCCurvePredictor(CurvePredictor):
    """Full Bayesian backend: ensemble posterior explored by MCMC.

    Defaults follow the paper's reduced budget (§5.2): 100 walkers and
    700 samples per walker.  Tests use far smaller budgets; the
    interface is identical.
    """

    def __init__(
        self,
        n_walkers: int = 100,
        n_samples: int = 700,
        burn_fraction: float = 0.5,
        thin: int = 10,
        max_posterior_samples: int = 800,
        seed: int = 0,
        model_names: Optional[Sequence[str]] = None,
        fit_cache=None,
    ) -> None:
        if not 0.0 <= burn_fraction < 1.0:
            raise ValueError("burn_fraction must be in [0, 1)")
        self.n_walkers = n_walkers
        self.n_samples = n_samples
        self.burn_fraction = burn_fraction
        self.thin = max(1, thin)
        self.max_posterior_samples = max_posterior_samples
        self.seed = seed
        self._model_names = None if model_names is None else tuple(model_names)
        #: Optional prefix-keyed fit cache
        #: (:class:`repro.curves.engine.FitCache`): the least-squares
        #: fits that seed the walkers are memoized per prefix and
        #: warm-started from the ``n-1`` prefix, so the MCMC initial
        #: state reuses the previous epoch's solution.
        self.fit_cache = fit_cache
        if model_names is None:
            self._ensemble = CurveEnsemble()
        else:
            from .models import get_model

            self._ensemble = CurveEnsemble(
                [get_model(name) for name in model_names]
            )

    def _cache_params_key(self) -> tuple:
        names = self._model_names or tuple(m.name for m in self._ensemble.models)
        return ("mcmc-init", names, self.seed)

    def predict(
        self, observed: Sequence[float], n_future: int
    ) -> CurvePrediction:
        y = _check_inputs(observed, n_future)
        if y.size < self.min_observations():
            raise ValueError(
                f"need at least {self.min_observations()} observations,"
                f" got {y.size}"
            )
        rng = np.random.default_rng(self.seed + y.size)
        ensemble = self._ensemble
        fits = None
        if self.fit_cache is not None:
            fits = fit_all_models(
                y,
                models=ensemble.models,
                rng=rng,
                cache=self.fit_cache,
                params_key=self._cache_params_key(),
            )
        center = ensemble.initial_vector(y, fits=fits, rng=rng)
        walkers = ensemble.scatter_around(center, self.n_walkers, rng)
        sampler = EnsembleSampler(
            n_walkers=self.n_walkers,
            dim=ensemble.dim,
            log_prob_fn=lambda v: ensemble.log_posterior(v, y),
            log_prob_batch_fn=lambda vs: ensemble.log_posterior_batch(vs, y),
        )
        result = sampler.run(walkers, self.n_samples, rng=rng)
        burn = int(self.burn_fraction * self.n_samples)
        flat = result.flat(burn=burn, thin=self.thin)
        if flat.shape[0] > self.max_posterior_samples:
            keep = rng.choice(
                flat.shape[0], size=self.max_posterior_samples, replace=False
            )
            flat = flat[keep]

        horizon = np.arange(y.size + 1, y.size + n_future + 1, dtype=float)
        # Batched posterior-sample evaluation: every family is applied
        # once to the stacked parameter block instead of once per
        # posterior vector.  Row-major noise draws keep the rng stream
        # identical to the historical per-vector loop.
        means = ensemble.predict_batch(horizon, flat)
        sigmas = np.exp(np.clip(flat[:, -1], -12.0, 2.0))
        noise = rng.standard_normal((flat.shape[0], n_future))
        samples = means + sigmas[:, None] * noise
        samples = np.clip(samples, 0.0, 1.0)
        return CurvePrediction(
            observed=y, horizon=horizon.astype(int), samples=samples
        )


class LeastSquaresCurvePredictor(CurvePredictor):
    """Fast backend: inverse-MSE-weighted least-squares ensemble.

    Sample trajectories are generated by (a) choosing a family with
    probability proportional to its fit weight, (b) jittering its
    extrapolation by the family's own extrapolation disagreement, and
    (c) adding residual-scaled observation noise.  The spread across
    families therefore captures model uncertainty much as the MCMC
    posterior does, at a tiny fraction of the cost.
    """

    #: Curve families used by the speed-oriented configuration: the
    #: slowest-to-fit families (pow4, exp4) are dropped; the retained
    #: seven cover the same qualitative shapes.
    FAST_MODEL_SUBSET = (
        "vapor_pressure",
        "pow3",
        "hill3",
        "mmf",
        "janoschek",
        "weibull",
        "ilog2",
    )

    def __init__(
        self,
        n_sample_curves: int = 200,
        restarts: int = 3,
        min_noise: float = 0.005,
        seed: int = 0,
        model_names: Optional[Sequence[str]] = None,
        max_nfev: int = 200,
        horizon_inflation: float = 0.15,
        fit_cache=None,
    ) -> None:
        if n_sample_curves < 2:
            raise ValueError("need at least 2 sample curves")
        if horizon_inflation < 0:
            raise ValueError("horizon_inflation cannot be negative")
        self.n_sample_curves = n_sample_curves
        self.restarts = restarts
        self.min_noise = min_noise
        self.seed = seed
        self.horizon_inflation = horizon_inflation
        self._model_names = None if model_names is None else tuple(model_names)
        if model_names is None:
            self._models = None
        else:
            from .models import get_model

            self._models = [get_model(name) for name in model_names]
        self.max_nfev = max_nfev
        #: Optional prefix-keyed fit cache
        #: (:class:`repro.curves.engine.FitCache`).  When attached,
        #: per-family fits are memoized on the exact observed prefix
        #: and warm-started from the ``n-1`` prefix; the sampling rng
        #: then switches to a stream decoupled from fit computation so
        #: a cache hit and a cold refit yield the identical prediction.
        #: When None (the default) the legacy code path runs unchanged.
        self.fit_cache = fit_cache

    def _cache_params_key(self) -> tuple:
        names = self._model_names
        if names is None:
            from .models import model_names as all_names

            names = tuple(all_names())
        return ("ls", names, self.restarts, self.max_nfev, self.seed)

    def predict(
        self, observed: Sequence[float], n_future: int
    ) -> CurvePrediction:
        y = _check_inputs(observed, n_future)
        if y.size < self.min_observations():
            raise ValueError(
                f"need at least {self.min_observations()} observations,"
                f" got {y.size}"
            )
        rng = np.random.default_rng(self.seed + 7919 * y.size)
        if self.fit_cache is not None:
            fits = fit_all_models(
                y,
                models=self._models,
                rng=rng,
                restarts=self.restarts,
                max_nfev=self.max_nfev,
                cache=self.fit_cache,
                params_key=self._cache_params_key(),
            )
            # Fresh sampling stream, independent of how many fits the
            # cache skipped: hot and cold calls sample identically.
            rng = np.random.default_rng(
                (self.seed + 7919 * y.size) ^ 0x5F3759DF
            )
        else:
            fits = fit_all_models(
                y,
                models=self._models,
                rng=rng,
                restarts=self.restarts,
                max_nfev=self.max_nfev,
            )
        usable = [f for f in fits.values() if np.isfinite(f.mse)]
        horizon = np.arange(y.size + 1, y.size + n_future + 1, dtype=float)

        inv_mse = np.array([1.0 / max(f.mse, 1e-8) for f in usable])
        weights = inv_mse / inv_mse.sum()

        resid_std = float(
            np.sqrt(
                np.sum(
                    weights
                    * np.array([max(f.mse, self.min_noise**2) for f in usable])
                )
            )
        )

        # Each sample trajectory: choose a family by fit weight, then
        # draw its parameters from the family's Laplace posterior.  The
        # parameter draws carry the within-family uncertainty (weakly
        # identified asymptotes on short prefixes) that the full MCMC
        # posterior would — crucially, *correlated across epochs* of a
        # trajectory, so achieve-by probabilities stay calibrated over
        # long horizons.
        choices = rng.choice(len(usable), size=self.n_sample_curves, p=weights)
        samples = np.empty((self.n_sample_curves, n_future))
        for k, fit in enumerate(usable):
            rows = np.flatnonzero(choices == k)
            if rows.size == 0:
                continue
            thetas = fit.sample_thetas(rows.size, rng)
            # Batched evaluation: theta (B, 1, P) against x (H,) -> (B, H).
            samples[rows] = fit.model(horizon, thetas[:, None, :])
        samples = np.clip(samples, -0.5, 1.5)

        # Residual cross-family disagreement plus a distance-scaled
        # inflation term: short prefixes can make every family agree on
        # the same wrong saturation, so honesty requires extra spread
        # that grows with extrapolation distance and shrinks with n.
        n_observed = y.size
        distance = (horizon - n_observed) / np.maximum(horizon, 1.0)
        inflation_std = (
            self.horizon_inflation
            * np.sqrt(distance)
            / np.sqrt(max(n_observed, 1) / 10.0)
        )
        trajectory_offset = rng.standard_normal((self.n_sample_curves, 1))
        samples = samples + trajectory_offset * inflation_std[None, :]
        # Per-epoch observation noise is genuinely independent, but it
        # is the small evaluation jitter, not the model spread.
        observation_noise = min(resid_std, 2.0 * self.min_noise)
        samples = samples + observation_noise * rng.standard_normal(samples.shape)
        samples = np.clip(samples, 0.0, 1.0)
        return CurvePrediction(
            observed=y, horizon=horizon.astype(int), samples=samples
        )


class InstrumentedCurvePredictor(CurvePredictor):
    """Wraps any predictor with fit timing metrics and a span.

    The curve fit (least-squares restarts or the full MCMC run) is the
    single most expensive computation HyperDrive performs per decision
    — the reason §5.2 distributes prediction to Node Agents and
    overlaps it with training.  This wrapper measures it: every
    ``predict`` records a ``predictor.predict`` span on the experiment
    clock plus its genuine wall cost in the ``predictor_fit_seconds``
    histogram, labelled by backend.

    The scheduler applies this wrapper automatically whenever a live
    :class:`~repro.observability.recorder.Recorder` is attached, so
    backends and policies never see it.

    Timings are taken from a monotonic clock (``time.monotonic`` by
    default, injectable for tests): wall-clock sources like
    ``time.time`` can step backwards under NTP adjustment and produce
    negative "durations" that corrupt the histogram quantiles.
    """

    def __init__(
        self,
        inner: CurvePredictor,
        recorder,
        monotonic_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._inner = inner
        self._recorder = recorder
        self._backend = type(inner).__name__
        self._monotonic = (
            time.monotonic if monotonic_clock is None else monotonic_clock
        )
        self._fit_seconds = recorder.metrics.histogram(
            "predictor_fit_seconds",
            help="Wall seconds spent fitting/predicting one learning curve",
        )
        self._fits_total = recorder.metrics.counter(
            "predictor_fits_total", help="Curve predictions computed"
        )

    @property
    def inner(self) -> CurvePredictor:
        return self._inner

    def min_observations(self) -> int:
        return self._inner.min_observations()

    def predict(
        self, observed: Sequence[float], n_future: int
    ) -> CurvePrediction:
        with self._recorder.tracer.span(
            "predictor.predict",
            backend=self._backend,
            n_observed=len(observed),
            n_future=n_future,
        ):
            started = self._monotonic()
            try:
                return self._inner.predict(observed, n_future)
            finally:
                wall = self._monotonic() - started
                self._fit_seconds.observe(wall, backend=self._backend)
                self._fits_total.inc(backend=self._backend)


class LastValuePredictor(CurvePredictor):
    """Flat extrapolation of the most recent observation.

    Reproduces the "instantaneous accuracy only" behaviour of prior
    work (TuPAQ) for the §2.2(a) ablation: the predicted future is the
    last observed value plus small symmetric noise, so a configuration
    that will overtake later is never anticipated.
    """

    def __init__(self, noise: float = 0.01, n_sample_curves: int = 100,
                 seed: int = 0) -> None:
        self.noise = noise
        self.n_sample_curves = n_sample_curves
        self.seed = seed

    def min_observations(self) -> int:
        return 1

    def predict(
        self, observed: Sequence[float], n_future: int
    ) -> CurvePrediction:
        y = _check_inputs(observed, n_future)
        if y.size < 1:
            raise ValueError("need at least one observation")
        rng = np.random.default_rng(self.seed + 31 * y.size)
        horizon = np.arange(y.size + 1, y.size + n_future + 1)
        flat = np.full((self.n_sample_curves, n_future), float(y[-1]))
        samples = np.clip(
            flat + self.noise * rng.standard_normal(flat.shape), 0.0, 1.0
        )
        return CurvePrediction(observed=y, horizon=horizon, samples=samples)
