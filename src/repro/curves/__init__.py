"""Learning-curve prediction substrate (Domhan et al., IJCAI'15).

Public surface:

* :data:`CURVE_MODELS` / :class:`CurveModel` — the 11 parametric families.
* :class:`CurveEnsemble` — weighted combination + posterior.
* :class:`EnsembleSampler` — affine-invariant MCMC.
* :class:`CurvePredictor` and its backends — what POP consumes.
* :class:`ParallelPredictionService` / :class:`FitCache` — the §5.2
  prediction engine: process-pool fan-out and prefix-keyed fit reuse.
"""

from .engine import (
    FitCache,
    ParallelPredictionService,
    PredictionEngineError,
    unwrap_service,
)
from .ensemble import CurveEnsemble
from .fitting import ModelFit, curve_cache_key, fit_all_models, fit_model
from .mcmc import EnsembleSampler, SamplerResult
from .models import CURVE_MODELS, CurveModel, get_model, model_names
from .predictor import (
    CurvePrediction,
    CurvePredictor,
    LastValuePredictor,
    LeastSquaresCurvePredictor,
    MCMCCurvePredictor,
)

__all__ = [
    "CURVE_MODELS",
    "CurveModel",
    "get_model",
    "model_names",
    "ModelFit",
    "fit_model",
    "fit_all_models",
    "curve_cache_key",
    "FitCache",
    "ParallelPredictionService",
    "PredictionEngineError",
    "unwrap_service",
    "CurveEnsemble",
    "EnsembleSampler",
    "SamplerResult",
    "CurvePrediction",
    "CurvePredictor",
    "MCMCCurvePredictor",
    "LeastSquaresCurvePredictor",
    "LastValuePredictor",
]
