"""Learning-curve prediction substrate (Domhan et al., IJCAI'15).

Public surface:

* :data:`CURVE_MODELS` / :class:`CurveModel` — the 11 parametric families.
* :class:`CurveEnsemble` — weighted combination + posterior.
* :class:`EnsembleSampler` — affine-invariant MCMC.
* :class:`CurvePredictor` and its backends — what POP consumes.
"""

from .ensemble import CurveEnsemble
from .fitting import ModelFit, fit_all_models, fit_model
from .mcmc import EnsembleSampler, SamplerResult
from .models import CURVE_MODELS, CurveModel, get_model, model_names
from .predictor import (
    CurvePrediction,
    CurvePredictor,
    LastValuePredictor,
    LeastSquaresCurvePredictor,
    MCMCCurvePredictor,
)

__all__ = [
    "CURVE_MODELS",
    "CurveModel",
    "get_model",
    "model_names",
    "ModelFit",
    "fit_model",
    "fit_all_models",
    "CurveEnsemble",
    "EnsembleSampler",
    "SamplerResult",
    "CurvePrediction",
    "CurvePredictor",
    "MCMCCurvePredictor",
    "LeastSquaresCurvePredictor",
    "LastValuePredictor",
]
