"""Parallel prediction engine: process-pool fan-out + prefix-fit cache.

HyperDrive §5.2 observes that learning-curve prediction is the
scheduler's dominant non-training cost, and that the paper's system
hides it by *overlapping* prediction with training.  This module is
that overlap made concrete for the reproduction:

* :class:`FitCache` — an LRU cache of per-family least-squares fits
  keyed on the exact observed prefix.  A POP scheduler re-evaluates the
  whole job pool every epoch, but only the job that just reported has a
  new prefix; every other curve's fits are hits.  Misses are
  warm-started from the ``n-1``-prefix solution, so even the one cold
  curve reuses the previous epoch's optimum as a starting point.
* :class:`ParallelPredictionService` — a :class:`CurvePredictor` that
  fans batches of predictions over a ``concurrent.futures`` process
  pool.  Work units are picklable (curve prefix + horizon); each worker
  process rebuilds the predictor once at pool start and keeps its own
  fit cache, so nothing heavier than floats crosses the pipe.

With ``workers=1`` (the default everywhere) the service is a plain
pass-through: no pool, no cache, byte-identical results to calling the
wrapped predictor directly.  Determinism-sensitive tests and benches
are therefore unaffected unless a spec opts in.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .fitting import CurveKey, ModelFit, curve_cache_key
from .predictor import CurvePrediction, CurvePredictor

__all__ = [
    "FitCache",
    "ParallelPredictionService",
    "PredictionEngineError",
    "unwrap_service",
]


class PredictionEngineError(RuntimeError):
    """A prediction worker failed in a way that poisoned the pool."""


class FitCache:
    """Thread-safe LRU cache of :class:`ModelFit` results per prefix.

    Entries are keyed on ``(model family, curve prefix digest,
    params_key)`` — the params key fingerprints the fitting
    configuration (restarts, budgets, seed) so fits computed under
    different settings never alias.  See
    :func:`repro.curves.fitting.fit_all_models` for the lookup
    protocol, including the ``n-1``-prefix warm start.
    """

    def __init__(self, maxsize: int = 2048) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: "OrderedDict[tuple, ModelFit]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.warm_starts = 0
        self.evictions = 0

    def get(
        self, model_name: str, key: CurveKey, params_key: tuple
    ) -> Optional[ModelFit]:
        """Look up a fit, counting the hit/miss and refreshing recency."""
        full = (model_name, key, params_key)
        with self._lock:
            fit = self._data.get(full)
            if fit is None:
                self.misses += 1
                return None
            self._data.move_to_end(full)
            self.hits += 1
            return fit

    def peek(
        self, model_name: str, key: CurveKey, params_key: tuple
    ) -> Optional[ModelFit]:
        """Look up without touching hit/miss counters or recency.

        Used for the ``n-1``-prefix warm-start probe, which should not
        masquerade as demand traffic in the hit rate.
        """
        with self._lock:
            return self._data.get((model_name, key, params_key))

    def put(
        self,
        model_name: str,
        key: CurveKey,
        params_key: tuple,
        fit: ModelFit,
        warm_started: bool = False,
    ) -> None:
        full = (model_name, key, params_key)
        with self._lock:
            if warm_started:
                self.warm_starts += 1
            self._data[full] = fit
            self._data.move_to_end(full)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of demand lookups served from cache (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "warm_starts": self.warm_starts,
                "evictions": self.evictions,
                "size": len(self._data),
            }


# ---------------------------------------------------------------------------
# Worker-process side.  Each pool worker rebuilds the predictor once (via
# the initializer) and keeps a private fit cache; tasks only carry the
# picklable prefix/horizon pairs plus counter deltas back.
# ---------------------------------------------------------------------------

_WORKER_PREDICTOR: Optional[CurvePredictor] = None
_WORKER_CACHE: Optional[FitCache] = None


def _init_worker(predictor: CurvePredictor, cache_size: int) -> None:
    global _WORKER_PREDICTOR, _WORKER_CACHE
    _WORKER_PREDICTOR = predictor
    _WORKER_CACHE = None
    if cache_size > 0 and hasattr(predictor, "fit_cache"):
        _WORKER_CACHE = FitCache(maxsize=cache_size)
        predictor.fit_cache = _WORKER_CACHE


def _worker_ready() -> bool:
    """No-op task used to force worker start-up at pool construction."""
    return _WORKER_PREDICTOR is not None


def _predict_chunk(
    chunk: Sequence[Tuple[Tuple[float, ...], int]],
) -> Tuple[List[CurvePrediction], Dict[str, int]]:
    """Run one contiguous chunk of (prefix, horizon) work units.

    Returns the predictions in order plus the fit-cache counter deltas
    incurred by this chunk (workers are single-threaded, so a
    before/after snapshot is exact).
    """
    assert _WORKER_PREDICTOR is not None, "pool initializer did not run"
    before = _WORKER_CACHE.stats() if _WORKER_CACHE is not None else None
    out = [
        _WORKER_PREDICTOR.predict(np.asarray(observed, dtype=float), n_future)
        for observed, n_future in chunk
    ]
    deltas: Dict[str, int] = {}
    if before is not None and _WORKER_CACHE is not None:
        after = _WORKER_CACHE.stats()
        deltas = {
            k: after[k] - before[k]
            for k in ("hits", "misses", "warm_starts", "evictions")
        }
    return out, deltas


class ParallelPredictionService(CurvePredictor):
    """Fan :meth:`CurvePredictor.predict` calls over a process pool.

    Args:
        predictor: the backend to parallelise.  Must be picklable when
            ``workers > 1`` (all shipped backends are; wrappers such as
            the instrumented or lock-releasing decorators are not, so
            the service must wrap the *raw* predictor — use
            :func:`unwrap_service` to find it through a wrapper chain).
        workers: pool size.  ``1`` (default) means no pool and no
            cache: calls run inline on the caller's thread and are
            byte-identical to ``predictor.predict``.
        cache_size: per-process fit-cache capacity in entries (one
            entry per (family, prefix)); ``0`` disables caching.
        use_cache: override the cache default.  ``None`` enables the
            cache exactly when ``workers > 1``; pass ``True`` to get
            cached single-process prediction (used by the benchmarks)
            or ``False`` to run a pure pool.
        recorder: optional observability recorder; when provided the
            service exports ``prediction_cache_*`` counters, a
            ``prediction_pool_queue_depth`` gauge, and a request
            counter through its metrics registry.
        mp_context: multiprocessing context; defaults to ``fork`` when
            the platform offers it (cheapest start-up, and the pool is
            warmed eagerly at construction, before the host process
            spawns threads).

    The pool is *sharded*: ``workers`` single-process executors rather
    than one executor with ``workers`` processes.  A shared executor
    hands chunks to whichever process is free, which scatters each
    job's prefixes across worker caches and destroys the hit rate; a
    sharded pool routes chunk ``i`` of every batch to shard ``i`` (and
    single ``submit`` calls by a stable prefix-head hash), so the
    worker that cached a job's fits keeps seeing that job.
    """

    def __init__(
        self,
        predictor: CurvePredictor,
        workers: int = 1,
        cache_size: int = 2048,
        use_cache: Optional[bool] = None,
        recorder=None,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size cannot be negative")
        self._inner = predictor
        self.workers = workers
        self.cache_size = cache_size
        self._cache_enabled = (
            (workers > 1) if use_cache is None else bool(use_cache)
        ) and cache_size > 0 and hasattr(predictor, "fit_cache")
        self._closed = False
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._local_cache: Optional[FitCache] = None
        self._shards: List[ProcessPoolExecutor] = []
        self._worker_totals: Dict[str, int] = {
            "hits": 0, "misses": 0, "warm_starts": 0, "evictions": 0,
        }

        self._m_hits = self._m_misses = self._m_warm = None
        self._m_requests = self._m_queue_depth = None
        if recorder is not None:
            metrics = recorder.metrics
            self._m_hits = metrics.counter(
                "prediction_cache_hits_total",
                help="Prefix-fit cache hits across all prediction workers",
            )
            self._m_misses = metrics.counter(
                "prediction_cache_misses_total",
                help="Prefix-fit cache misses across all prediction workers",
            )
            self._m_warm = metrics.counter(
                "prediction_cache_warm_starts_total",
                help="Cache misses warm-started from the n-1 prefix fit",
            )
            self._m_requests = metrics.counter(
                "prediction_requests_total",
                help="Curve predictions routed through the engine",
            )
            self._m_queue_depth = metrics.gauge(
                "prediction_pool_queue_depth",
                help="Prediction work units submitted but not yet finished",
            )

        if self._cache_enabled and workers == 1:
            self._local_cache = FitCache(maxsize=cache_size)
            predictor.fit_cache = self._local_cache

        if workers > 1:
            if mp_context is None:
                import multiprocessing

                try:
                    mp_context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-posix
                    mp_context = multiprocessing.get_context()
            worker_cache_size = cache_size if self._cache_enabled else 0
            # Ship a cache-less copy: FitCache holds a lock and must not
            # cross the pickle boundary; workers build their own.
            shipped = predictor
            if getattr(predictor, "fit_cache", None) is not None:
                import copy

                shipped = copy.copy(predictor)
                shipped.fit_cache = None
            self._shards = [
                ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=mp_context,
                    initializer=_init_worker,
                    initargs=(shipped, worker_cache_size),
                )
                for _ in range(workers)
            ]
            # Warm up eagerly: forking after the host process has
            # started threads (live runtime, HTTP daemon) is unsafe, so
            # force every worker to exist right now.
            try:
                for fut in [
                    shard.submit(_worker_ready) for shard in self._shards
                ]:
                    fut.result()
            except BrokenProcessPool as exc:
                for shard in self._shards:
                    shard.shutdown(wait=False, cancel_futures=True)
                raise PredictionEngineError(
                    "prediction pool failed to start (is the predictor"
                    " picklable?)"
                ) from exc

    # -- CurvePredictor interface -----------------------------------------

    @property
    def inner(self) -> CurvePredictor:
        return self._inner

    def min_observations(self) -> int:
        return self._inner.min_observations()

    def predict(
        self, observed: Sequence[float], n_future: int
    ) -> CurvePrediction:
        """Predict one curve (inline at ``workers=1``, pooled otherwise)."""
        return self.predict_batch([(observed, n_future)])[0]

    # -- batch / async API -------------------------------------------------

    def predict_batch(
        self, requests: Sequence[Tuple[Sequence[float], int]]
    ) -> List[CurvePrediction]:
        """Predict many curves, preserving request order.

        Requests are split into contiguous chunks; chunk ``i`` always
        runs on shard ``i``, so a stable batch composition (the POP
        per-epoch re-evaluation) keeps every job on the worker whose
        cache holds its fits.
        """
        if self._closed:
            raise PredictionEngineError("prediction service is closed")
        n = len(requests)
        if n == 0:
            return []
        if self._m_requests is not None:
            self._m_requests.inc(n)
        if not self._shards:
            out = []
            for observed, n_future in requests:
                before = (
                    self._local_cache.stats() if self._local_cache else None
                )
                out.append(self._inner.predict(observed, n_future))
                if before is not None:
                    self._publish_local_delta(before)
            return out

        work = [
            (tuple(float(v) for v in observed), int(n_future))
            for observed, n_future in requests
        ]
        n_chunks = min(self.workers, n)
        bounds = np.linspace(0, n, n_chunks + 1).astype(int)
        chunks = [
            work[bounds[i]: bounds[i + 1]]
            for i in range(n_chunks)
            if bounds[i] < bounds[i + 1]
        ]
        self._note_submitted(n)
        try:
            futures = [
                self._shards[i].submit(_predict_chunk, chunk)
                for i, chunk in enumerate(chunks)
            ]
            results: List[CurvePrediction] = []
            for fut, chunk in zip(futures, chunks):
                preds, deltas = fut.result()
                results.extend(preds)
                self._note_done(len(chunk))
                self._publish_worker_delta(deltas)
            return results
        except BrokenProcessPool as exc:
            self._note_done(self._pending)
            self.close()
            raise PredictionEngineError(
                "a prediction worker process died; the pool has been shut"
                " down"
            ) from exc

    def submit(
        self, observed: Sequence[float], n_future: int
    ) -> "Future[CurvePrediction]":
        """Asynchronous single prediction (completed future at workers=1).

        Pooled submissions are routed by a stable hash of the curve's
        first observations — a job's earliest epochs never change, so
        repeated predictions of the same (growing) curve land on the
        same shard's cache.
        """
        if self._closed:
            raise PredictionEngineError("prediction service is closed")
        if not self._shards:
            fut: "Future[CurvePrediction]" = Future()
            try:
                fut.set_result(self.predict(observed, n_future))
            except Exception as exc:  # surface through the future, like a pool
                fut.set_exception(exc)
            return fut
        if self._m_requests is not None:
            self._m_requests.inc()
        work = [(tuple(float(v) for v in observed), int(n_future))]
        head = np.asarray(work[0][0][:3], dtype=float)
        _, digest = curve_cache_key(head)
        shard = self._shards[int.from_bytes(digest[:4], "little") % self.workers]
        self._note_submitted(1)
        raw = shard.submit(_predict_chunk, work)
        out: "Future[CurvePrediction]" = Future()

        def _unwrap(done: "Future") -> None:
            self._note_done(1)
            exc = done.exception()
            if isinstance(exc, BrokenProcessPool):
                out.set_exception(
                    PredictionEngineError(
                        "a prediction worker process died"
                    )
                )
                return
            if exc is not None:
                out.set_exception(exc)
                return
            preds, deltas = done.result()
            self._publish_worker_delta(deltas)
            out.set_result(preds[0])

        raw.add_done_callback(_unwrap)
        return out

    # -- cache stats -------------------------------------------------------

    @property
    def cache_enabled(self) -> bool:
        return self._cache_enabled

    @property
    def local_cache(self) -> Optional[FitCache]:
        """The in-process cache (``workers=1`` only; pools keep theirs
        worker-side and report deltas through the metrics counters)."""
        return self._local_cache

    def cache_stats(self) -> Dict[str, int]:
        """Aggregated demand-traffic counters seen by this service."""
        if self._local_cache is not None:
            return self._local_cache.stats()
        with self._pending_lock:
            return dict(self._worker_totals)

    def _publish_local_delta(self, before: Dict[str, int]) -> None:
        after = self._local_cache.stats()
        deltas = {
            k: after[k] - before[k]
            for k in ("hits", "misses", "warm_starts", "evictions")
        }
        self._export_metrics(deltas)

    def _publish_worker_delta(self, deltas: Dict[str, int]) -> None:
        if not deltas:
            return
        with self._pending_lock:
            for k, v in deltas.items():
                self._worker_totals[k] = self._worker_totals.get(k, 0) + v
        self._export_metrics(deltas)

    def _export_metrics(self, deltas: Dict[str, int]) -> None:
        if self._m_hits is None:
            return
        if deltas.get("hits"):
            self._m_hits.inc(deltas["hits"])
        if deltas.get("misses"):
            self._m_misses.inc(deltas["misses"])
        if deltas.get("warm_starts"):
            self._m_warm.inc(deltas["warm_starts"])

    def _note_submitted(self, n: int) -> None:
        with self._pending_lock:
            self._pending += n
            depth = self._pending
        if self._m_queue_depth is not None:
            self._m_queue_depth.set(depth)

    def _note_done(self, n: int) -> None:
        with self._pending_lock:
            self._pending = max(0, self._pending - n)
            depth = self._pending
        if self._m_queue_depth is not None:
            self._m_queue_depth.set(depth)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.shutdown(wait=False, cancel_futures=True)
        self._shards = []

    def __enter__(self) -> "ParallelPredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def unwrap_service(
    predictor: Optional[CurvePredictor],
) -> Optional[ParallelPredictionService]:
    """Find a :class:`ParallelPredictionService` through wrapper chains.

    Wrappers (instrumentation, lock management) expose the wrapped
    predictor as an ``inner`` property; this walks that chain so
    callers can reach the service for ``predict_batch``/``close``
    without knowing the decoration order, and so schedulers avoid
    double-wrapping a predictor that is already pooled.
    """
    seen = 0
    while predictor is not None and seen < 16:
        if isinstance(predictor, ParallelPredictionService):
            return predictor
        predictor = getattr(predictor, "inner", None)
        seen += 1
    return None
