"""Weighted-ensemble learning-curve model and its log posterior.

Domhan et al. model an observed learning curve as a weighted linear
combination of the eleven parametric families plus Gaussian noise:

    y(x) ~ Normal( sum_k w_k * f_k(x | theta_k), sigma^2 )

The full parameter vector stacks, in order, every family's parameters,
the (non-negative, sum-to-one) combination weights, and the noise scale
``sigma``.  This module owns that packing/unpacking, the prior, and the
likelihood; :mod:`repro.curves.mcmc` samples from the resulting
posterior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .fitting import ModelFit, fit_all_models
from .models import CURVE_MODELS, CurveModel

__all__ = ["CurveEnsemble"]

_SIGMA_MIN = 1e-4
_SIGMA_MAX = 0.5


@dataclass(frozen=True)
class _Slot:
    """Index range of one family's parameters inside the packed vector."""

    model: CurveModel
    start: int
    stop: int


class CurveEnsemble:
    """A weighted combination of parametric curve families.

    The packed parameter layout is::

        [ theta_model1 | theta_model2 | ... | raw_weights (K) | log_sigma ]

    Raw weights are unconstrained reals mapped through a softmax so any
    real vector is a valid parameterisation (which keeps MCMC moves
    simple); ``sigma`` is sampled in log space for the same reason.
    """

    def __init__(self, models: Optional[Sequence[CurveModel]] = None) -> None:
        if models is None:
            models = list(CURVE_MODELS.values())
        if not models:
            raise ValueError("ensemble needs at least one curve family")
        self.models: List[CurveModel] = list(models)
        self._slots: List[_Slot] = []
        offset = 0
        for model in self.models:
            self._slots.append(_Slot(model, offset, offset + model.num_params))
            offset += model.num_params
        self._theta_len = offset
        self.num_models = len(self.models)
        # theta block + one raw weight per model + log sigma
        self.dim = self._theta_len + self.num_models + 1

    # ----------------------------------------------------------------- pack

    def pack(
        self,
        thetas: Dict[str, Sequence[float]],
        weights: Sequence[float],
        sigma: float,
    ) -> np.ndarray:
        """Pack per-model parameters, weights and sigma into one vector."""
        vec = np.empty(self.dim)
        for slot in self._slots:
            theta = np.asarray(thetas[slot.model.name], dtype=float)
            if theta.size != slot.model.num_params:
                raise ValueError(
                    f"{slot.model.name}: expected "
                    f"{slot.model.num_params} params, got {theta.size}"
                )
            vec[slot.start : slot.stop] = theta
        w = np.asarray(weights, dtype=float)
        if w.size != self.num_models:
            raise ValueError("one weight per model required")
        w = np.maximum(w, 1e-8)
        vec[self._theta_len : self._theta_len + self.num_models] = np.log(w)
        vec[-1] = math_log(sigma)
        return vec

    def unpack(
        self, vec: np.ndarray
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray, float]:
        """Inverse of :meth:`pack`; weights come back softmax-normalised."""
        vec = np.asarray(vec, dtype=float)
        thetas = {
            slot.model.name: vec[slot.start : slot.stop] for slot in self._slots
        }
        weights = self.weights(vec)
        sigma = float(np.exp(np.clip(vec[-1], -12.0, 2.0)))
        return thetas, weights, sigma

    def weights(self, vec: np.ndarray) -> np.ndarray:
        """Softmax-normalised combination weights from a packed vector."""
        raw = np.asarray(vec, dtype=float)[
            ..., self._theta_len : self._theta_len + self.num_models
        ]
        raw = raw - np.max(raw, axis=-1, keepdims=True)
        expd = np.exp(raw)
        return expd / np.sum(expd, axis=-1, keepdims=True)

    # ------------------------------------------------------------- evaluate

    def predict(self, x: np.ndarray, vec: np.ndarray) -> np.ndarray:
        """Mean prediction of the ensemble at epochs ``x``."""
        x_arr = np.asarray(x, dtype=float)
        weights = self.weights(vec)
        total = np.zeros_like(x_arr, dtype=float)
        for k, slot in enumerate(self._slots):
            theta = np.asarray(vec, dtype=float)[slot.start : slot.stop]
            total = total + weights[k] * slot.model(x_arr, theta)
        return total

    def predict_batch(self, x: np.ndarray, vecs: np.ndarray) -> np.ndarray:
        """Mean predictions for a batch of packed vectors at once.

        Vectorised counterpart of :meth:`predict`: each family is
        evaluated a single time over the whole stacked parameter block
        instead of once per vector, which is what makes posterior
        sample generation (hundreds of vectors per prediction) cheap.
        Row ``i`` is numerically identical to ``predict(x, vecs[i])``
        — same accumulation order per family, same element-wise ops.

        Args:
            x: epoch indices, shape (H,).
            vecs: packed parameter vectors, shape (B, dim).

        Returns:
            Mean trajectories, shape (B, H).
        """
        x_arr = np.asarray(x, dtype=float)
        vecs_arr = np.asarray(vecs, dtype=float)
        if vecs_arr.ndim != 2 or vecs_arr.shape[1] != self.dim:
            raise ValueError(
                f"vecs must have shape (B, {self.dim}), got {vecs_arr.shape}"
            )
        weights = self.weights(vecs_arr)  # (B, K)
        total = np.zeros((vecs_arr.shape[0], x_arr.size), dtype=float)
        for k, slot in enumerate(self._slots):
            thetas = vecs_arr[:, slot.start : slot.stop]  # (B, P)
            total = total + weights[:, k : k + 1] * slot.model(
                x_arr, thetas[:, None, :]
            )
        return total

    # ---------------------------------------------------------------- prior

    def log_prior(self, vec: np.ndarray) -> float:
        """Log prior: uniform inside family bounds, weak Gaussian on raw
        weights, log-uniform sigma within [_SIGMA_MIN, _SIGMA_MAX]."""
        vec = np.asarray(vec, dtype=float)
        for slot in self._slots:
            theta = vec[slot.start : slot.stop]
            if not slot.model.in_bounds(theta):
                return -np.inf
        sigma = float(np.exp(np.clip(vec[-1], -50.0, 50.0)))
        if not (_SIGMA_MIN <= sigma <= _SIGMA_MAX):
            return -np.inf
        raw_w = vec[self._theta_len : self._theta_len + self.num_models]
        # Zero-mean Gaussian keeps raw weights from drifting to infinity
        # (softmax is shift-invariant, so the posterior is otherwise flat
        # along that direction).
        return float(-0.5 * np.sum(raw_w**2) / 25.0)

    # ----------------------------------------------------------- likelihood

    def log_likelihood(self, vec: np.ndarray, y: np.ndarray) -> float:
        """Gaussian log likelihood of an observed prefix ``y``."""
        y_arr = np.asarray(y, dtype=float)
        x = np.arange(1, y_arr.size + 1, dtype=float)
        mean = self.predict(x, vec)
        sigma = float(np.exp(np.clip(np.asarray(vec)[-1], -12.0, 2.0)))
        resid = y_arr - mean
        n = y_arr.size
        return float(
            -0.5 * np.sum(resid**2) / sigma**2
            - n * np.log(sigma)
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def log_posterior(self, vec: np.ndarray, y: np.ndarray) -> float:
        lp = self.log_prior(vec)
        if not np.isfinite(lp):
            return -np.inf
        ll = self.log_likelihood(vec, y)
        if not np.isfinite(ll):
            return -np.inf
        return lp + ll

    def log_posterior_batch(
        self, vecs: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Log posterior of many packed vectors in stacked numpy ops.

        Entry ``i`` equals ``log_posterior(vecs[i], y)`` (same
        arithmetic per row); the batch form exists so the MCMC sampler
        can score a whole walker ensemble per sweep instead of calling
        the scalar path once per walker.
        """
        vecs_arr = np.asarray(vecs, dtype=float)
        if vecs_arr.ndim != 2 or vecs_arr.shape[1] != self.dim:
            raise ValueError(
                f"vecs must have shape (B, {self.dim}), got {vecs_arr.shape}"
            )
        n_vecs = vecs_arr.shape[0]
        in_support = np.ones(n_vecs, dtype=bool)
        for slot in self._slots:
            theta = vecs_arr[:, slot.start : slot.stop]
            lower = np.asarray(slot.model.lower)
            upper = np.asarray(slot.model.upper)
            in_support &= np.all(
                (theta >= lower) & (theta <= upper), axis=1
            )
        sigma = np.exp(np.clip(vecs_arr[:, -1], -50.0, 50.0))
        in_support &= (sigma >= _SIGMA_MIN) & (sigma <= _SIGMA_MAX)

        raw_w = vecs_arr[:, self._theta_len : self._theta_len + self.num_models]
        log_prior = -0.5 * np.sum(raw_w**2, axis=1) / 25.0

        y_arr = np.asarray(y, dtype=float)
        x = np.arange(1, y_arr.size + 1, dtype=float)
        out = np.full(n_vecs, -np.inf)
        if np.any(in_support):
            supported = vecs_arr[in_support]
            mean = self.predict_batch(x, supported)
            sigma_ll = np.exp(np.clip(supported[:, -1], -12.0, 2.0))
            resid = y_arr - mean
            n = y_arr.size
            log_like = (
                -0.5 * np.sum(resid**2, axis=1) / sigma_ll**2
                - n * np.log(sigma_ll)
                - 0.5 * n * np.log(2.0 * np.pi)
            )
            total = log_prior[in_support] + log_like
            total[~np.isfinite(total)] = -np.inf
            out[in_support] = total
        return out

    # ------------------------------------------------------- initialisation

    def initial_vector(
        self,
        y: Sequence[float],
        fits: Optional[Dict[str, ModelFit]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Build a good packed starting point from per-model LS fits.

        Families that fit the prefix better receive larger initial
        weights (inverse-MSE weighting).
        """
        if rng is None:
            rng = np.random.default_rng(0)
        y_arr = np.asarray(y, dtype=float)
        if fits is None:
            fits = fit_all_models(y_arr, models=self.models, rng=rng)
        thetas = {}
        inv_mse = np.empty(self.num_models)
        for k, model in enumerate(self.models):
            fit = fits[model.name]
            thetas[model.name] = fit.theta
            inv_mse[k] = 1.0 / max(fit.mse, 1e-8)
        weights = inv_mse / inv_mse.sum()
        resid = y_arr - self._weighted_prediction(y_arr.size, thetas, weights)
        sigma = float(np.clip(np.std(resid), 5 * _SIGMA_MIN, _SIGMA_MAX))
        return self.pack(thetas, weights, sigma)

    def _weighted_prediction(
        self,
        n: int,
        thetas: Dict[str, np.ndarray],
        weights: np.ndarray,
    ) -> np.ndarray:
        x = np.arange(1, n + 1, dtype=float)
        total = np.zeros(n)
        for k, model in enumerate(self.models):
            total += weights[k] * model(x, thetas[model.name])
        return total

    def scatter_around(
        self,
        center: np.ndarray,
        n_walkers: int,
        rng: np.random.Generator,
        scale: float = 1e-2,
    ) -> np.ndarray:
        """Initialise MCMC walkers in a small Gaussian ball around
        ``center``, clipped so every walker has finite prior mass."""
        center = np.asarray(center, dtype=float)
        walkers = center + scale * rng.standard_normal((n_walkers, self.dim))
        for slot in self._slots:
            lower = np.asarray(slot.model.lower) + 1e-9
            upper = np.asarray(slot.model.upper) - 1e-9
            walkers[:, slot.start : slot.stop] = np.clip(
                walkers[:, slot.start : slot.stop], lower, upper
            )
        walkers[:, -1] = np.clip(
            walkers[:, -1],
            np.log(_SIGMA_MIN) + 1e-6,
            np.log(_SIGMA_MAX) - 1e-6,
        )
        return walkers


def math_log(value: float) -> float:
    if value <= 0:
        raise ValueError("sigma must be positive")
    return float(np.log(value))
