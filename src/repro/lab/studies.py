"""Built-in named studies (the paper's comparative evidence, canned).

Each entry maps a CLI-facing name onto a ready-to-run
:class:`~repro.lab.spec.StudySpec`.  The defaults are laptop-scale:
they finish in minutes under the parallel fan-out and already show the
paper's qualitative findings; scale ``seeds`` / ``config_orders`` up
via ``StudySpec.with_overrides`` (or ``repro sweep run --seeds ...``)
for tighter confidence intervals.
"""

from __future__ import annotations

from typing import Callable, Dict

from .spec import StudySpec

__all__ = ["BUILTIN_STUDIES", "builtin_study"]


def _policy_tournament() -> StudySpec:
    # §6 / Figs 6-7 flavour: one frozen configuration set, every SAP,
    # repeated over training-noise seeds, paired per seed against POP.
    return StudySpec(
        name="policy-tournament",
        policies=("pop", "hyperband", "bandit", "earlyterm"),
        workloads=("cifar10",),
        seeds=(0, 1, 2),
        baseline={"policy": "pop"},
        metric="time_to_target",
    )


def _capacity_sensitivity() -> StudySpec:
    # §7.2.1 / Fig 12b: sweep the machine count; the report's per-
    # context tables show POP's advantage shrinking once capacity is
    # no longer scarce.
    return StudySpec(
        name="capacity-sensitivity",
        policies=("pop", "bandit", "earlyterm", "default"),
        workloads=("cifar10",),
        machines=(2, 4, 8, 16),
        seeds=(0, 1, 2),
        baseline={"policy": "pop"},
        metric="time_to_target",
    )


def _config_order() -> StudySpec:
    # §7.2.2 / Fig 12c: shuffle the frozen configuration set; every
    # policy sees identical per-configuration learning curves, so the
    # spread across orders isolates scheduling robustness.
    return StudySpec(
        name="config-order",
        policies=("pop", "bandit", "earlyterm", "default"),
        workloads=("cifar10",),
        machines=(5,),
        seeds=(0,),
        config_orders=tuple(range(10)),
        baseline={"policy": "pop"},
        metric="time_to_target",
    )


def _generator_shootout() -> StudySpec:
    # §4.2's orthogonality claim: swap the Hyperparameter Generator
    # under a fixed SAP and compare best-found quality at equal budget.
    return StudySpec(
        name="generator-shootout",
        policies=("default",),
        workloads=("mlp",),
        generators=("random", "grid", "bayesian", "tpe"),
        seeds=(0, 1, 2),
        num_configs=24,
        stop_on_target=False,
        tmax_hours=2.0,
        baseline={"generator": "random"},
        compare_axis="generator",
        metric="best_metric",
    )


def _budget_tournament() -> StudySpec:
    # Elastic-cluster economics: equal machine-hour purse per cell,
    # best model found when the money runs out.  pop-budget narrows
    # its promising pool as the purse drains and prioritises cheap
    # finishers; plain POP and HyperBand spend time-aware but
    # cost-blind.
    return StudySpec(
        name="budget-tournament",
        policies=("pop-budget", "pop", "hyperband"),
        workloads=("cifar10",),
        machines=(4,),
        seeds=(0, 1, 2),
        num_configs=24,
        stop_on_target=False,
        tmax_hours=24.0,
        budget_slot_hours=48.0,
        baseline={"policy": "pop"},
        metric="best_metric",
    )


def _learned_vs_pop() -> StudySpec:
    # Learned scheduling (docs/learned.md): the frozen RL policy (the
    # committed pretrained artifact, unless REPRO_LEARNED_ARTIFACT
    # overrides it) against its untrained-twin control and the
    # hand-tuned SAPs.  Each seed is a *held-out* evaluation context:
    # gen_seed_mode="per-seed" offsets the generator seed by the
    # replicate seed (configuration set 200+s) and the replicate seed
    # itself drives the training-noise streams — both disjoint from the
    # trainer's pool (gen_seed_base=10000, stream seeds 10000+), so the
    # comparison measures generalisation, not memorisation.  The seed
    # block is the scan range 1..30 filtered by one criterion: the
    # replicate's configuration set must contain at least one target
    # achiever (a property of the precomputed streams, checkable
    # without running any policy — never by which policy wins on it);
    # seeds 3, 8, 18, 21, 22, 28, 29 have no achiever, so every policy
    # ties at the Tmax fallback there and the cells carry no signal.
    return StudySpec(
        name="learned-vs-pop",
        policies=("learned", "learned-random", "pop", "pop-budget", "hyperband"),
        workloads=("cifar10",),
        generators=("random",),
        machines=(4,),
        seeds=(
            1, 2, 4, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15, 16, 17,
            19, 20, 23, 24, 25, 26, 27, 30,
        ),
        num_configs=20,
        gen_seed=200,
        gen_seed_mode="per-seed",
        tmax_hours=8.0,
        baseline={"policy": "pop"},
        metric="time_to_target",
    )


def _sweep_smoke() -> StudySpec:
    # CI-sized: 2 policies x 2 seeds on a clipped grid.  Small enough
    # for a smoke job, slow enough that a kill-and-resume test can
    # interrupt it mid-study.
    return StudySpec(
        name="sweep-smoke",
        policies=("pop", "default"),
        workloads=("cifar10",),
        machines=(2,),
        seeds=(0, 1),
        num_configs=8,
        tmax_hours=24.0,
        baseline={"policy": "pop"},
        metric="time_to_target",
    )


BUILTIN_STUDIES: Dict[str, Callable[[], StudySpec]] = {
    "policy-tournament": _policy_tournament,
    "capacity-sensitivity": _capacity_sensitivity,
    "config-order": _config_order,
    "generator-shootout": _generator_shootout,
    "budget-tournament": _budget_tournament,
    "learned-vs-pop": _learned_vs_pop,
    "sweep-smoke": _sweep_smoke,
}


def builtin_study(name: str) -> StudySpec:
    """The built-in study registered under ``name``."""
    try:
        factory = BUILTIN_STUDIES[name]
    except KeyError:
        choices = ", ".join(sorted(BUILTIN_STUDIES))
        raise ValueError(
            f"unknown study {name!r} (choices: {choices})"
        ) from None
    return factory()
