"""Declarative study specifications (the Sweep Lab grid language).

A :class:`StudySpec` describes one comparative study as a cell grid —
the cross product of ``{workload × policy × generator × seed ×
machines × config_order}`` plus shared experiment knobs — with one
axis designated the *comparison* axis and one of its levels the
*baseline*.  Every cell is an independent simulated experiment
(:func:`repro.sim.runner.run_simulation`); the paired analysis in
:mod:`repro.lab.analysis` then compares each comparison-axis level
against the baseline replicate-by-replicate, which is exactly the
protocol behind the paper's §6 policy comparisons and §7 sensitivity
tables.

Specs are plain data: JSON-round-trippable (:meth:`StudySpec.to_dict`
/ :meth:`StudySpec.from_dict` / :meth:`StudySpec.from_json_file`) and
fully validated against :mod:`repro.registry` at construction, so a
bad study fails before any cell runs.

Each expanded :class:`Cell` resolves its defaults (machines, generator
seed) into a canonical dict whose blake2b digest is the cell's
content-addressed key — the unit of resumability in
:mod:`repro.lab.store`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from itertools import product
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .. import registry

__all__ = [
    "COMPARE_AXES",
    "REPLICATE_AXES",
    "FIXED_GENERATOR",
    "Cell",
    "StudySpec",
]

#: Axes whose levels may be compared against a designated baseline.
COMPARE_AXES = ("policy", "workload", "generator", "machines")

#: Axes that produce paired replicates rather than comparison groups.
REPLICATE_AXES = ("seed", "config_order")

#: Pseudo-generator name: the standard fixed configuration set
#: (``repro.analysis.experiments.standard_configs``) instead of a
#: registry Hyperparameter Generator.  This is the paper's §6.1
#: protocol — one frozen configuration list reused across policies.
FIXED_GENERATOR = "fixed"

_METRICS = {
    # metric name -> True when lower values are better
    "time_to_target": True,
    "best_metric": False,
}


@dataclass(frozen=True)
class Cell:
    """One fully-specified experiment in a study grid.

    ``machines`` and ``gen_seed`` may be ``None`` (meaning "the
    workload's published default"); :meth:`resolved` pins them so the
    cell key never depends on defaults changing between axes.
    """

    study: str
    workload: str
    policy: str
    generator: str
    seed: int
    machines: Optional[int]
    config_order: Optional[int]
    num_configs: int
    gen_seed: Optional[int]
    target: Optional[float]
    tmax_hours: float
    stop_on_target: bool
    predict_workers: int
    predict_cache_size: int
    #: Machine-hour budget handed to budget-aware policies (via their
    #: ``configure_budget`` hook); None leaves the policy's default.
    budget_slot_hours: Optional[float] = None
    #: How the generator seed relates to the replicate seed: "fixed"
    #: reuses one configuration set across replicates (the §6.1
    #: protocol); "per-seed" offsets the generator seed by the
    #: replicate seed so each replicate is a *held-out* configuration
    #: set — the evaluation protocol for learned policies, whose
    #: training must never have seen the evaluation sets.
    gen_seed_mode: str = "fixed"

    def resolved(self) -> Dict[str, Any]:
        """The cell with every default pinned (canonical, hashable)."""
        out = asdict(self)
        if out["machines"] is None:
            out["machines"] = registry.default_machines(self.workload)
        if out["gen_seed"] is None:
            out["gen_seed"] = registry.default_gen_seed(self.workload)
        if self.gen_seed_mode == "per-seed":
            out["gen_seed"] = out["gen_seed"] + self.seed
        return out

    def key(self) -> str:
        """Content address: blake2b of the resolved cell config.

        Stable across processes and sessions — the resolved dict is
        serialised with sorted keys and no whitespace variance, so the
        same logical cell always lands on the same store entry.
        """
        canonical = json.dumps(
            self.resolved(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=10
        ).hexdigest()

    def label(self) -> str:
        """A short human-readable handle for logs and audit events."""
        parts = [self.workload, self.policy]
        if self.generator != FIXED_GENERATOR:
            parts.append(self.generator)
        if self.machines is not None:
            parts.append(f"{self.machines}m")
        parts.append(f"s{self.seed}")
        if self.config_order is not None:
            parts.append(f"o{self.config_order}")
        return "/".join(parts)


def _as_tuple(value: Any) -> Tuple[Any, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


@dataclass(frozen=True)
class StudySpec:
    """A declarative comparative study over a cell grid.

    Attributes:
        name: study identifier (used in reports and store labels).
        policies: SAP names (``repro.registry.POLICIES``).
        workloads: workload names (``repro.registry.WORKLOADS``).
        generators: per-cell configuration sources — registry
            generator names, or :data:`FIXED_GENERATOR` for the §6.1
            frozen configuration set.
        seeds: experiment seeds; each seed is one paired replicate.
        machines: slot counts; ``None`` entries use the workload's
            published default cluster size.
        config_orders: shuffle seeds applied to the fixed
            configuration set (§7.2.2 order sensitivity); ``None``
            keeps the natural order.  Only meaningful with the fixed
            generator.
        num_configs: configurations per cell.
        gen_seed: generator / fixed-set seed; ``None`` uses the
            published per-workload default.
        target: raw-scale target metric; ``None`` = domain default.
        tmax_hours: per-cell experiment horizon.
        stop_on_target: end each cell at first target hit.
        predict_workers: prediction process-pool size *inside* each
            cell (plumbed to ``ExperimentSpec.predict_workers``).
        predict_cache_size: per-process prefix-fit cache entries.
        compare_axis: which axis's levels are compared
            (:data:`COMPARE_AXES`).
        baseline: ``{compare_axis: level}`` naming the baseline level;
            the level must appear in the axis.
        metric: ``"time_to_target"`` (lower is better; unreached
            targets score the experiment's finish time, the paper's
            convention) or ``"best_metric"`` (higher is better).
        tenant: broker tenant a daemon-hosted study bills to (rate
            limits and the tenants panel; docs/service.md).
        priority: admission priority for daemon-hosted studies.
        deadline_hours: soft deadline carried to the broker.
        budget_slot_hours: slot-hour budget carried to the broker and
            handed to budget-aware policies (``configure_budget``), so
            a fixed-budget study caps every cell's machine-time spend.
        gen_seed_mode: ``"fixed"`` reuses one generator seed across
            replicates; ``"per-seed"`` offsets it by each replicate
            seed, giving every replicate a held-out configuration set
            (the learned-policy evaluation protocol).
    """

    name: str
    policies: Tuple[str, ...]
    workloads: Tuple[str, ...] = ("cifar10",)
    generators: Tuple[str, ...] = (FIXED_GENERATOR,)
    seeds: Tuple[int, ...] = (0,)
    machines: Tuple[Optional[int], ...] = (None,)
    config_orders: Tuple[Optional[int], ...] = (None,)
    num_configs: int = 100
    gen_seed: Optional[int] = None
    target: Optional[float] = None
    tmax_hours: float = 48.0
    stop_on_target: bool = True
    predict_workers: int = 1
    predict_cache_size: int = 2048
    compare_axis: str = "policy"
    baseline: Dict[str, Any] = field(default_factory=lambda: {"policy": "pop"})
    metric: str = "time_to_target"
    tenant: str = "default"
    priority: int = 0
    deadline_hours: Optional[float] = None
    budget_slot_hours: Optional[float] = None
    gen_seed_mode: str = "fixed"

    def __post_init__(self) -> None:
        # Coerce JSON-borne lists into tuples so the spec stays
        # hashable and comparable regardless of how it was built.
        for axis in (
            "policies", "workloads", "generators", "seeds", "machines",
            "config_orders",
        ):
            object.__setattr__(self, axis, _as_tuple(getattr(self, axis)))
        if not self.name:
            raise ValueError("study name must be non-empty")
        if not self.policies:
            raise ValueError("policies must be non-empty")
        if not self.workloads:
            raise ValueError("workloads must be non-empty")
        if not self.generators:
            raise ValueError("generators must be non-empty")
        if not self.seeds:
            raise ValueError("seeds must be non-empty")
        if not self.machines:
            raise ValueError("machines must be non-empty")
        if not self.config_orders:
            raise ValueError("config_orders must be non-empty")
        for policy in self.policies:
            if policy not in registry.POLICIES:
                choices = ", ".join(sorted(registry.POLICIES))
                raise ValueError(
                    f"unknown policy {policy!r} (choices: {choices})"
                )
        for workload in self.workloads:
            if workload not in registry.WORKLOADS:
                choices = ", ".join(sorted(registry.WORKLOADS))
                raise ValueError(
                    f"unknown workload {workload!r} (choices: {choices})"
                )
        for generator in self.generators:
            if generator != FIXED_GENERATOR and generator not in registry.GENERATORS:
                choices = ", ".join(
                    sorted((*registry.GENERATORS, FIXED_GENERATOR))
                )
                raise ValueError(
                    f"unknown generator {generator!r} (choices: {choices})"
                )
        for axis_name, levels in (
            ("seeds", self.seeds), ("policies", self.policies),
            ("workloads", self.workloads), ("generators", self.generators),
            ("machines", self.machines), ("config_orders", self.config_orders),
        ):
            if len(set(levels)) != len(levels):
                raise ValueError(f"duplicate levels in {axis_name}")
        for seed in self.seeds:
            if not isinstance(seed, int):
                raise ValueError("seeds must be integers")
        for count in self.machines:
            if count is not None and count < 1:
                raise ValueError("machines entries must be >= 1 or null")
        if self.num_configs < 1:
            raise ValueError("num_configs must be >= 1")
        if self.tmax_hours <= 0:
            raise ValueError("tmax_hours must be positive")
        if self.predict_workers < 1:
            raise ValueError("predict_workers must be >= 1")
        if self.predict_cache_size < 0:
            raise ValueError("predict_cache_size cannot be negative")
        if self.compare_axis not in COMPARE_AXES:
            raise ValueError(
                f"compare_axis must be one of {COMPARE_AXES}, "
                f"not {self.compare_axis!r}"
            )
        if self.metric not in _METRICS:
            raise ValueError(
                f"metric must be one of {tuple(_METRICS)}, not {self.metric!r}"
            )
        if set(self.baseline) != {self.compare_axis}:
            raise ValueError(
                "baseline must designate exactly the compare axis, e.g. "
                f"{{{self.compare_axis!r}: <level>}} (got {self.baseline!r})"
            )
        if self.baseline[self.compare_axis] not in self._axis_levels(
            self.compare_axis
        ):
            raise ValueError(
                f"baseline {self.baseline!r} is not in the study grid "
                f"({self.compare_axis} levels: "
                f"{self._axis_levels(self.compare_axis)})"
            )
        if any(order is not None for order in self.config_orders) and any(
            generator != FIXED_GENERATOR for generator in self.generators
        ):
            raise ValueError(
                "config_orders shuffle the fixed configuration set; they "
                "cannot be combined with registry generators"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValueError("tenant must be a non-empty string")
        if not isinstance(self.priority, int) or isinstance(
            self.priority, bool
        ):
            raise ValueError("priority must be an integer")
        if self.deadline_hours is not None and self.deadline_hours <= 0:
            raise ValueError("deadline_hours must be positive when given")
        if self.budget_slot_hours is not None and self.budget_slot_hours <= 0:
            raise ValueError("budget_slot_hours must be positive when given")
        if self.gen_seed_mode not in ("fixed", "per-seed"):
            raise ValueError(
                "gen_seed_mode must be 'fixed' or 'per-seed', "
                f"not {self.gen_seed_mode!r}"
            )

    # ------------------------------------------------------------ helpers

    def _axis_levels(self, axis: str) -> Tuple[Any, ...]:
        return {
            "policy": self.policies,
            "workload": self.workloads,
            "generator": self.generators,
            "machines": self.machines,
            "seed": self.seeds,
            "config_order": self.config_orders,
        }[axis]

    @property
    def lower_is_better(self) -> bool:
        return _METRICS[self.metric]

    @property
    def baseline_level(self) -> Any:
        return self.baseline[self.compare_axis]

    def with_overrides(self, **overrides: Any) -> "StudySpec":
        """A copy with fields replaced (revalidated)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------ expansion

    def cells(self) -> List[Cell]:
        """Expand the grid into cells, in deterministic axis order."""
        out: List[Cell] = []
        for workload, policy, generator, machine_count, order, seed in product(
            self.workloads,
            self.policies,
            self.generators,
            self.machines,
            self.config_orders,
            self.seeds,
        ):
            out.append(
                Cell(
                    study=self.name,
                    workload=workload,
                    policy=policy,
                    generator=generator,
                    seed=seed,
                    machines=machine_count,
                    config_order=order,
                    num_configs=self.num_configs,
                    gen_seed=self.gen_seed,
                    target=self.target,
                    tmax_hours=self.tmax_hours,
                    stop_on_target=self.stop_on_target,
                    predict_workers=self.predict_workers,
                    predict_cache_size=self.predict_cache_size,
                    budget_slot_hours=self.budget_slot_hours,
                    gen_seed_mode=self.gen_seed_mode,
                )
            )
        return out

    # ------------------------------------------------------------ JSON

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable description (tuples become lists)."""
        out = asdict(self)
        for axis in (
            "policies", "workloads", "generators", "seeds", "machines",
            "config_orders",
        ):
            out[axis] = list(out[axis])
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StudySpec":
        """Build (and validate) a spec from a JSON-decoded dict."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown StudySpec fields: {', '.join(unknown)}")
        return cls(**payload)

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "StudySpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: study spec must be a JSON object")
        return cls.from_dict(payload)

    def replicate_count(self) -> int:
        return len(self.seeds) * len(self.config_orders)
