"""Sweep Lab: declarative study orchestration (see ``docs/lab.md``).

The subsystem behind ``repro sweep``: declare a comparative study as a
cell grid (:class:`StudySpec`), fan the cells out over processes with
resumable content-addressed artifacts (:class:`StudyRunner` +
:class:`CellStore`), and render paired statistical reports
(:func:`analyze` + :func:`render_markdown`).

Quickstart::

    from repro.lab import builtin_study, run_study
    print(run_study(builtin_study("policy-tournament"), "out/"))
"""

from .analysis import (
    ContextResult,
    LevelStats,
    MissingCellsError,
    StudyAnalysis,
    analyze,
    cell_metric_value,
)
from .report import render_json, render_markdown
from .runner import CellError, StudyProgress, StudyRunner, execute_cell, run_study
from .spec import COMPARE_AXES, FIXED_GENERATOR, REPLICATE_AXES, Cell, StudySpec
from .store import CellStore, StudyMismatchError
from .studies import BUILTIN_STUDIES, builtin_study

__all__ = [
    "COMPARE_AXES",
    "REPLICATE_AXES",
    "FIXED_GENERATOR",
    "Cell",
    "StudySpec",
    "CellStore",
    "StudyMismatchError",
    "CellError",
    "StudyProgress",
    "StudyRunner",
    "execute_cell",
    "run_study",
    "MissingCellsError",
    "LevelStats",
    "ContextResult",
    "StudyAnalysis",
    "analyze",
    "cell_metric_value",
    "render_markdown",
    "render_json",
    "BUILTIN_STUDIES",
    "builtin_study",
]
