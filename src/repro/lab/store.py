"""Content-addressed artifact store for study cells.

Layout under one study directory::

    <root>/study.json      the StudySpec that owns this store
    <root>/cells/<key>.json   one completed cell (resolved config +
                              ExperimentResult.to_dict() + wall time)
    <root>/journal.jsonl   append-only completion journal (audit aid)
    <root>/report.md       rendered report (written by the runner/CLI)
    <root>/report.json     machine-readable report

``<key>`` is the blake2b content address of the *resolved* cell config
(:meth:`repro.lab.spec.Cell.key`), so the same logical cell always
lands on the same file no matter which process — or which session —
executed it.  Cell files are written atomically (temp file +
``os.replace``), which is what makes a SIGKILLed study resumable: a
cell either exists completely or not at all, and
:meth:`CellStore.completed_keys` is exactly the set of work that never
needs to run again.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from .spec import StudySpec

__all__ = ["StudyMismatchError", "CellStore"]


class StudyMismatchError(ValueError):
    """The store already belongs to a different study spec."""


class CellStore:
    """Durable, content-addressed storage for one study's cells."""

    SPEC_FILE = "study.json"
    JOURNAL_FILE = "journal.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.cells_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ spec

    @property
    def spec_path(self) -> Path:
        return self.root / self.SPEC_FILE

    def save_spec(self, spec: StudySpec) -> None:
        """Pin the study spec; refuses to overwrite a different one.

        Re-saving an identical spec is a no-op, which is what lets
        ``sweep run`` on an existing directory act as a resume.
        """
        payload = spec.to_dict()
        if self.spec_path.exists():
            existing = json.loads(self.spec_path.read_text())
            if existing != payload:
                raise StudyMismatchError(
                    f"{self.root} already holds study "
                    f"{existing.get('name')!r} with a different spec; "
                    "use a fresh --out directory"
                )
            return
        self._atomic_write(
            self.spec_path, json.dumps(payload, indent=2, sort_keys=True)
        )

    def load_spec(self) -> StudySpec:
        """The spec pinned in this store (raises if none saved yet)."""
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"{self.spec_path} does not exist — not a study directory?"
            )
        return StudySpec.from_json_file(self.spec_path)

    # ------------------------------------------------------------ cells

    def cell_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.cell_path(key).exists()

    def completed_keys(self) -> Set[str]:
        """Keys of every durably completed cell."""
        return {path.stem for path in self.cells_dir.glob("*.json")}

    def save_cell(self, key: str, payload: Dict[str, Any]) -> None:
        """Durably record one completed cell (atomic, idempotent)."""
        self._atomic_write(
            self.cell_path(key), json.dumps(payload, sort_keys=True)
        )
        telemetry = payload.get("telemetry") or {}
        journal_line = json.dumps(
            {
                "key": key,
                "label": payload.get("label"),
                "wall_seconds": payload.get("wall_seconds"),
                "cpu_seconds": telemetry.get("cpu_seconds"),
                "cache_hit_rate": telemetry.get("prediction_cache_hit_rate"),
            },
            sort_keys=True,
        )
        with open(self.root / self.JOURNAL_FILE, "a", encoding="utf-8") as fh:
            fh.write(journal_line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def load_cell(self, key: str) -> Dict[str, Any]:
        with open(self.cell_path(key), "r", encoding="utf-8") as handle:
            return json.load(handle)

    def mtime_ns(self, key: str) -> int:
        """Nanosecond mtime of a completed cell (resume-skip evidence)."""
        return self.cell_path(key).stat().st_mtime_ns

    def journal(self) -> List[Dict[str, Any]]:
        """Completion journal entries, in completion order."""
        path = self.root / self.JOURNAL_FILE
        if not path.exists():
            return []
        out = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    # ------------------------------------------------------------ reports

    def write_report(self, markdown: str, payload: Dict[str, Any]) -> None:
        self._atomic_write(self.root / "report.md", markdown)
        self._atomic_write(
            self.root / "report.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    @property
    def report_md_path(self) -> Path:
        return self.root / "report.md"

    @property
    def report_json_path(self) -> Path:
        return self.root / "report.json"

    # ------------------------------------------------------------ plumbing

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        """Write-then-rename so readers (and kills) never see partials."""
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def find_missing(self, spec: Optional[StudySpec] = None) -> List[str]:
        """Keys the spec expects that are not yet completed."""
        if spec is None:
            spec = self.load_spec()
        done = self.completed_keys()
        return [cell.key() for cell in spec.cells() if cell.key() not in done]
