"""Study execution: grid fan-out with resumable, journaled cells.

The :class:`StudyRunner` expands a :class:`~repro.lab.spec.StudySpec`
into cells, skips everything the :class:`~repro.lab.store.CellStore`
already holds, and fans the remainder out over a
``ProcessPoolExecutor`` (``max_workers=1`` runs inline — no pool, no
pickling — which is what the deterministic tests use).  Each completed
cell is journaled to the store *as it finishes*, so a killed study
loses at most the cells that were mid-flight; progress streams onto
the observability registry (``lab_cells_done``, ``lab_cells_skipped``,
``lab_cell_seconds``) and the audit trail (``lab_study_started`` /
``lab_cell_completed`` / ``lab_cell_skipped`` / ``lab_study_finished``).

Cell execution reuses :func:`repro.sim.runner.run_simulation` verbatim
— a study is exactly N independent experiments, with the spec's
``predict_workers`` plumbed through to each cell's prediction engine.

Each cell also runs under its own private
:class:`~repro.observability.metrics.MetricsRegistry` and returns a
compact **telemetry digest** (wall/CPU seconds, predictor fit counts,
prefix-fit cache hit rate, epochs) that crosses the process-pool
boundary inside the cell payload, is persisted in the cell record and
the completion journal, and feeds the study registry's
``lab_cell_cpu_seconds`` on the parent side.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .. import registry
from ..framework.experiment import ExperimentSpec
from ..observability.recorder import NULL_RECORDER
from .analysis import analyze
from .report import render_json, render_markdown
from .spec import FIXED_GENERATOR, Cell, StudySpec
from .store import CellStore

__all__ = [
    "CellError",
    "StudyProgress",
    "StudyRunner",
    "run_study",
    "telemetry_digest",
]


def telemetry_digest(
    registry, wall_seconds: float, cpu_seconds: float
) -> Dict[str, Any]:
    """Roll one cell's registry up to the scalars worth persisting."""

    def total(name: str) -> float:
        family = registry.get(name)
        if family is None:
            return 0.0
        return float(sum(value for _, value in family.samples()))

    hits = total("prediction_cache_hits_total")
    misses = total("prediction_cache_misses_total")
    lookups = hits + misses
    return {
        "wall_seconds": wall_seconds,
        "cpu_seconds": cpu_seconds,
        "epochs": total("scheduler_epochs_total"),
        "predictor_fits": total("predictor_fits_total"),
        "prediction_cache_hits": hits,
        "prediction_cache_misses": misses,
        "prediction_cache_hit_rate": (
            hits / lookups if lookups else None
        ),
    }


class CellError(RuntimeError):
    """A cell failed; carries the cell label for diagnosis."""


def _with_budget_stop(policy, budget_slot_hours: float):
    """Enforce a machine-hour purse on a budget-blind policy.

    Budget-aware policies (``configure_budget``) manage the purse
    themselves; everyone else gets this shim so a fixed-budget study
    compares policies at *equal spend* — the experiment hard-stops the
    moment cumulative machine time crosses the budget.
    """
    inner = policy.application_stat
    state = {"spent": 0.0, "stopped": False}

    def application_stat(stat):
        inner(stat)
        state["spent"] += stat.duration / 3600.0
        if not state["stopped"] and state["spent"] >= budget_slot_hours:
            state["stopped"] = True
            if policy.ctx.stop_experiment is not None:
                policy.ctx.stop_experiment("budget_exhausted")

    policy.application_stat = application_stat
    return policy


@dataclass
class StudyProgress:
    """Counts reported by one :meth:`StudyRunner.run` invocation."""

    total: int
    executed: int
    skipped: int

    @property
    def done(self) -> int:
        return self.executed + self.skipped


def execute_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell to completion (top-level so pools can pickle it).

    Args:
        payload: ``asdict`` of a :class:`~repro.lab.spec.Cell`.

    Returns:
        The store payload: resolved cell config, label, the full
        ``ExperimentResult.to_dict()``, the wall seconds spent, and a
        ``telemetry`` digest from the cell's private registry.
    """
    from ..observability.recorder import Recorder

    cell = Cell(**payload)
    resolved = cell.resolved()
    started = time.monotonic()
    cpu_started = time.process_time()
    recorder = Recorder()
    workload = registry.build_workload(cell.workload)
    policy = registry.build_policy(cell.policy)
    if hasattr(policy, "configure_budget"):
        policy.configure_budget(cell.budget_slot_hours)
    elif cell.budget_slot_hours is not None:
        policy = _with_budget_stop(policy, cell.budget_slot_hours)
    spec = ExperimentSpec(
        num_machines=resolved["machines"],
        num_configs=cell.num_configs,
        seed=cell.seed,
        target=cell.target,
        tmax=cell.tmax_hours * 3600.0,
        stop_on_target=cell.stop_on_target,
        predict_workers=cell.predict_workers,
        predict_cache_size=cell.predict_cache_size,
    )
    from ..sim.runner import run_simulation

    if cell.generator == FIXED_GENERATOR:
        from ..analysis.experiments import standard_configs

        configs = standard_configs(
            workload, cell.num_configs, seed=resolved["gen_seed"]
        )
        if cell.config_order is not None:
            import numpy as np

            permutation = np.random.default_rng(
                cell.config_order
            ).permutation(len(configs))
            configs = [configs[index] for index in permutation]
        result = run_simulation(
            workload, policy, configs=configs, spec=spec, recorder=recorder
        )
    else:
        generator = registry.build_generator(
            cell.generator,
            workload,
            max_configs=cell.num_configs,
            gen_seed=resolved["gen_seed"],
        )
        result = run_simulation(
            workload, policy, generator=generator, spec=spec,
            recorder=recorder,
        )
    wall_seconds = time.monotonic() - started
    return {
        "key": cell.key(),
        "label": cell.label(),
        "cell": resolved,
        "result": result.to_dict(),
        "wall_seconds": wall_seconds,
        "telemetry": telemetry_digest(
            recorder.metrics,
            wall_seconds,
            time.process_time() - cpu_started,
        ),
    }


class StudyRunner:
    """Expand, fan out, journal, and report one study."""

    def __init__(
        self,
        spec: StudySpec,
        store: CellStore,
        recorder=None,
        max_workers: Optional[int] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 when given")
        self.spec = spec
        self.store = store
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.max_workers = max_workers
        metrics = self.recorder.metrics
        self._m_done = metrics.counter(
            "lab_cells_done", help="Study cells executed to completion"
        )
        self._m_skipped = metrics.counter(
            "lab_cells_skipped",
            help="Study cells skipped because the store already held them",
        )
        self._m_seconds = metrics.histogram(
            "lab_cell_seconds",
            help="Wall seconds per executed study cell",
        )
        self._m_running = metrics.gauge(
            "lab_cells_in_flight", help="Study cells currently executing"
        )
        self._m_cpu_seconds = metrics.histogram(
            "lab_cell_cpu_seconds",
            help="CPU seconds per executed study cell (child process)",
        )

    # ------------------------------------------------------------ running

    def run(
        self,
        on_cell: Optional[Callable[[StudyProgress], None]] = None,
    ) -> StudyProgress:
        """Execute every incomplete cell; returns the progress counts.

        Args:
            on_cell: called after every cell completes or is skipped
                (service progress streaming); exceptions propagate.
        """
        self.store.save_spec(self.spec)
        cells = self.spec.cells()
        done = self.store.completed_keys()
        pending = [cell for cell in cells if cell.key() not in done]
        progress = StudyProgress(
            total=len(cells), executed=0, skipped=len(cells) - len(pending)
        )
        audit = self.recorder.audit
        audit.record(
            "lab_study_started",
            study=self.spec.name,
            cells=len(cells),
            pending=len(pending),
            skipped=progress.skipped,
        )
        for cell in cells:
            if cell.key() in done:
                self._m_skipped.inc()
                audit.record(
                    "lab_cell_skipped", key=cell.key(), label=cell.label()
                )
                if on_cell is not None:
                    on_cell(progress)
        if pending:
            if self._effective_workers(len(pending)) == 1:
                self._run_inline(pending, progress, on_cell)
            else:
                self._run_pooled(pending, progress, on_cell)
        audit.record(
            "lab_study_finished",
            study=self.spec.name,
            executed=progress.executed,
            skipped=progress.skipped,
        )
        return progress

    def _effective_workers(self, pending_count: int) -> int:
        """``max_workers=None`` auto-sizes to the host, capped at 8."""
        if self.max_workers is not None:
            return self.max_workers
        return max(1, min(8, (os.cpu_count() or 2) - 1, pending_count))

    def _complete(
        self,
        payload: Dict[str, Any],
        progress: StudyProgress,
        on_cell: Optional[Callable[[StudyProgress], None]],
    ) -> None:
        self.store.save_cell(payload["key"], payload)
        progress.executed += 1
        self._m_done.inc()
        self._m_seconds.observe(payload["wall_seconds"])
        telemetry = payload.get("telemetry") or {}
        if "cpu_seconds" in telemetry:
            self._m_cpu_seconds.observe(telemetry["cpu_seconds"])
        self.recorder.audit.record(
            "lab_cell_completed",
            key=payload["key"],
            label=payload["label"],
            wall_seconds=round(payload["wall_seconds"], 3),
            cpu_seconds=round(telemetry.get("cpu_seconds", 0.0), 3),
            cache_hit_rate=telemetry.get("prediction_cache_hit_rate"),
        )
        if on_cell is not None:
            on_cell(progress)

    def _run_inline(
        self,
        pending: List[Cell],
        progress: StudyProgress,
        on_cell: Optional[Callable[[StudyProgress], None]],
    ) -> None:
        for cell in pending:
            self._m_running.set(1)
            try:
                payload = execute_cell(asdict(cell))
            except Exception as exc:
                raise CellError(f"cell {cell.label()} failed: {exc}") from exc
            finally:
                self._m_running.set(0)
            self._complete(payload, progress, on_cell)

    def _run_pooled(
        self,
        pending: List[Cell],
        progress: StudyProgress,
        on_cell: Optional[Callable[[StudyProgress], None]],
    ) -> None:
        workers = self._effective_workers(len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_cell, asdict(cell)): cell
                for cell in pending
            }
            remaining = set(futures)
            self._m_running.set(len(remaining))
            try:
                while remaining:
                    finished, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED
                    )
                    self._m_running.set(len(remaining))
                    for future in finished:
                        cell = futures[future]
                        try:
                            payload = future.result()
                        except Exception as exc:
                            raise CellError(
                                f"cell {cell.label()} failed: {exc}"
                            ) from exc
                        self._complete(payload, progress, on_cell)
            finally:
                self._m_running.set(0)
                for future in remaining:
                    future.cancel()

    # ------------------------------------------------------------ reporting

    def write_report(self) -> str:
        """Analyse the completed store and write report.md/report.json.

        Returns the markdown text.  Raises if cells are missing — run
        or resume the study first.
        """
        analysis = analyze(self.spec, self.store)
        markdown = render_markdown(analysis)
        self.store.write_report(markdown, render_json(analysis))
        return markdown


def run_study(
    spec: StudySpec,
    out_dir: Union[str, Path],
    recorder=None,
    max_workers: Optional[int] = None,
    on_cell: Optional[Callable[[StudyProgress], None]] = None,
) -> str:
    """Run (or resume) a study end-to-end and return the markdown report.

    The one-call form the examples and the service use: build the
    store, execute whatever is missing, write ``report.md`` +
    ``report.json`` under ``out_dir``.
    """
    store = CellStore(out_dir)
    runner = StudyRunner(
        spec, store, recorder=recorder, max_workers=max_workers
    )
    runner.run(on_cell=on_cell)
    return runner.write_report()
