"""Paired statistical analysis of a completed study store.

The unit of comparison is the *replicate*: one ``(seed,
config_order)`` combination.  Within each *context* (every grid axis
except the comparison axis), each comparison-axis level produces one
metric value per replicate, and those vectors are compared pairwise
against the baseline level's vector — per-seed pairing, exactly how
the paper reports "POP is 1.6x faster" numbers, but with bootstrap
uncertainty attached (``1.6x [1.3, 1.9]``) via
:func:`repro.metrics.stats.paired_bootstrap_speedup_ci`.

All randomness is seeded, so analysing the same store twice yields
byte-identical reports — the property the kill-and-resume tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.stats import bootstrap_mean_ci, paired_bootstrap_speedup_ci
from .spec import StudySpec
from .store import CellStore

__all__ = [
    "MissingCellsError",
    "LevelStats",
    "ContextResult",
    "StudyAnalysis",
    "analyze",
    "cell_metric_value",
]

#: Bootstrap seed: fixed so reports are reproducible artifacts.
_BOOTSTRAP_SEED = 20170417
_AXES = ("workload", "policy", "generator", "machines")


class MissingCellsError(RuntimeError):
    """The store lacks cells the spec expects (study incomplete)."""


def cell_metric_value(metric: str, result: Dict[str, Any]) -> float:
    """Extract the study metric from one archived experiment result.

    ``time_to_target`` falls back to the experiment's finish time when
    the target was never reached — the paper's convention, which keeps
    the metric defined (and pessimal) for failed runs.
    """
    if metric == "time_to_target":
        if result.get("reached_target") and result.get("time_to_target") is not None:
            return float(result["time_to_target"])
        return float(result["finished_at"])
    if metric == "best_metric":
        value = result.get("best_metric")
        if value is None:
            raise ValueError("result has no best_metric (no epoch completed?)")
        return float(value)
    raise ValueError(f"unknown metric {metric!r}")


@dataclass
class LevelStats:
    """One comparison-axis level inside one context."""

    level: str
    is_baseline: bool
    n: int
    mean: float
    minimum: float
    maximum: float
    #: Per-replicate metric values, replicate order (analysis detail).
    values: List[float]
    #: ``(point, low, high)`` — how many times *better* the baseline
    #: is than this level (ratio for lower-is-better metrics); None on
    #: the baseline row.
    baseline_speedup: Optional[Tuple[float, float, float]] = None
    #: ``(point, low, high)`` paired mean difference (level − baseline)
    #: for higher-is-better metrics; None on the baseline row.
    baseline_delta: Optional[Tuple[float, float, float]] = None
    wins: int = 0
    ties: int = 0
    losses: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "is_baseline": self.is_baseline,
            "n": self.n,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "values": self.values,
            "baseline_speedup": (
                None if self.baseline_speedup is None
                else list(self.baseline_speedup)
            ),
            "baseline_delta": (
                None if self.baseline_delta is None
                else list(self.baseline_delta)
            ),
            "wins": self.wins,
            "ties": self.ties,
            "losses": self.losses,
        }


@dataclass
class ContextResult:
    """All comparison levels within one fixed-axes context."""

    context: Dict[str, Any]
    levels: List[LevelStats]
    #: ``win_matrix[row][col]`` = replicates where ``row`` strictly
    #: beats ``col`` (direction-aware).
    win_matrix: Dict[str, Dict[str, int]]
    winner: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "context": self.context,
            "levels": [level.to_dict() for level in self.levels],
            "win_matrix": self.win_matrix,
            "winner": self.winner,
        }


@dataclass
class StudyAnalysis:
    """The full paired analysis of one study."""

    study: str
    metric: str
    lower_is_better: bool
    compare_axis: str
    baseline_level: str
    replicates: int
    cells: int
    contexts: List[ContextResult] = field(default_factory=list)
    overall_winner: str = ""
    spec: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "study": self.study,
            "metric": self.metric,
            "lower_is_better": self.lower_is_better,
            "compare_axis": self.compare_axis,
            "baseline_level": self.baseline_level,
            "replicates": self.replicates,
            "cells": self.cells,
            "contexts": [context.to_dict() for context in self.contexts],
            "overall_winner": self.overall_winner,
            "spec": self.spec,
        }


def _level_key(spec: StudySpec, resolved_cell: Dict[str, Any]) -> Any:
    return resolved_cell[spec.compare_axis]


def _resolve_level(spec: StudySpec, level: Any, workload: str) -> Any:
    """Map a spec-side axis level onto its resolved per-cell value."""
    if spec.compare_axis == "machines" and level is None:
        from .. import registry

        return registry.default_machines(workload)
    return level


def _paired_delta_ci(
    baseline: Sequence[float],
    level: Sequence[float],
    rng: np.random.Generator,
    n_resamples: int = 2000,
    confidence: float = 0.95,
) -> Tuple[float, float, float]:
    """Paired bootstrap CI on the mean difference (level − baseline)."""
    differences = np.asarray(level, dtype=float) - np.asarray(
        baseline, dtype=float
    )
    point, low, high = bootstrap_mean_ci(
        differences, confidence=confidence, n_resamples=n_resamples, rng=rng
    )
    return point, low, high


def analyze(spec: StudySpec, store: CellStore) -> StudyAnalysis:
    """Paired comparison of every level against the study baseline.

    Raises :class:`MissingCellsError` when the store is incomplete —
    resume the study first (``repro sweep resume``).
    """
    cells = spec.cells()
    missing = [cell for cell in cells if not store.has(cell.key())]
    if missing:
        labels = ", ".join(cell.label() for cell in missing[:5])
        more = "" if len(missing) <= 5 else f" (+{len(missing) - 5} more)"
        raise MissingCellsError(
            f"study {spec.name!r} is missing {len(missing)}/{len(cells)} "
            f"cells ({labels}{more}); resume it before reporting"
        )

    # Index: (context key, level, replicate) -> metric value.
    values: Dict[Tuple[Any, ...], Dict[Any, Dict[Tuple[Any, Any], float]]] = {}
    contexts_seen: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for cell in cells:
        payload = store.load_cell(cell.key())
        resolved = payload["cell"]
        context = {
            axis: resolved[axis] for axis in _AXES if axis != spec.compare_axis
        }
        context_key = tuple(context[axis] for axis in sorted(context))
        contexts_seen.setdefault(context_key, context)
        level = _level_key(spec, resolved)
        replicate = (resolved["seed"], resolved["config_order"])
        metric_value = cell_metric_value(spec.metric, payload["result"])
        values.setdefault(context_key, {}).setdefault(level, {})[
            replicate
        ] = metric_value

    replicates = [
        (seed, order)
        for order in spec.config_orders
        for seed in spec.seeds
    ]
    lower = spec.lower_is_better
    analysis = StudyAnalysis(
        study=spec.name,
        metric=spec.metric,
        lower_is_better=lower,
        compare_axis=spec.compare_axis,
        baseline_level=str(spec.baseline_level),
        replicates=len(replicates),
        cells=len(cells),
        spec=spec.to_dict(),
    )

    context_wins: Dict[str, int] = {}
    aggregate: Dict[str, List[float]] = {}
    for context_key in sorted(values, key=lambda key: tuple(map(str, key))):
        context = contexts_seen[context_key]
        by_level = values[context_key]
        workload = context.get("workload", spec.workloads[0])
        spec_levels = [
            _resolve_level(spec, level, workload)
            for level in spec._axis_levels(spec.compare_axis)
        ]
        baseline_level = _resolve_level(spec, spec.baseline_level, workload)
        baseline_values = [
            by_level[baseline_level][replicate] for replicate in replicates
        ]
        rng = np.random.default_rng(_BOOTSTRAP_SEED)
        level_rows: List[LevelStats] = []
        for level in spec_levels:
            level_values = [
                by_level[level][replicate] for replicate in replicates
            ]
            arr = np.asarray(level_values, dtype=float)
            row = LevelStats(
                level=str(level),
                is_baseline=level == baseline_level,
                n=len(level_values),
                mean=float(arr.mean()),
                minimum=float(arr.min()),
                maximum=float(arr.max()),
                values=[float(v) for v in level_values],
            )
            if not row.is_baseline:
                if lower:
                    row.baseline_speedup = paired_bootstrap_speedup_ci(
                        level_values, baseline_values, rng=rng
                    )
                else:
                    row.baseline_delta = _paired_delta_ci(
                        baseline_values, level_values, rng=rng
                    )
                for mine, base in zip(level_values, baseline_values):
                    if mine == base:
                        row.ties += 1
                    elif (mine < base) == lower:
                        row.wins += 1
                    else:
                        row.losses += 1
            level_rows.append(row)

        win_matrix: Dict[str, Dict[str, int]] = {}
        for row in level_rows:
            win_matrix[row.level] = {}
            for other in level_rows:
                wins = sum(
                    1
                    for mine, theirs in zip(row.values, other.values)
                    if mine != theirs and ((mine < theirs) == lower)
                )
                win_matrix[row.level][other.level] = wins

        best = min if lower else max
        winner_row = best(level_rows, key=lambda row: row.mean)
        context_wins[winner_row.level] = context_wins.get(
            winner_row.level, 0
        ) + 1
        for row in level_rows:
            aggregate.setdefault(row.level, []).extend(row.values)
        analysis.contexts.append(
            ContextResult(
                context=context,
                levels=level_rows,
                win_matrix=win_matrix,
                winner=winner_row.level,
            )
        )

    # Overall winner: most context wins; ties break on the aggregate
    # mean (direction-aware), then on level name for determinism.
    def _overall_rank(level: str) -> Tuple[float, float, str]:
        mean = float(np.mean(aggregate[level]))
        return (
            -context_wins.get(level, 0),
            mean if lower else -mean,
            level,
        )

    if aggregate:
        analysis.overall_winner = min(aggregate, key=_overall_rank)
    return analysis
