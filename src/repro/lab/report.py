"""Markdown / JSON rendering of a :class:`StudyAnalysis`.

Reports are deterministic artifacts: no timestamps, fixed bootstrap
seeds, stable ordering — the same completed store always renders to
byte-identical ``report.md`` and ``report.json``, which is how the
kill-and-resume tests prove a resumed study equals an uninterrupted
one.

Report columns (see ``docs/lab.md``):

* ``n`` — paired replicates behind the row.
* ``mean/min/max`` — the study metric (minutes for time-to-target).
* ``baseline adv ×`` — how many times better the baseline level is
  than this row, as a paired-bootstrap ratio with its 95% CI
  (``1.60x [1.30, 1.90]``); lower-is-better metrics only.
* ``Δ vs baseline`` — paired mean difference with 95% CI for
  higher-is-better metrics.
* ``W/T/L`` — per-replicate wins/ties/losses against the baseline.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .analysis import ContextResult, LevelStats, StudyAnalysis

__all__ = ["render_markdown", "render_json"]


def _format_value(analysis: StudyAnalysis, value: float) -> str:
    if analysis.metric == "time_to_target":
        return f"{value / 60.0:.1f}"
    return f"{value:.4f}"


def _metric_heading(analysis: StudyAnalysis) -> str:
    if analysis.metric == "time_to_target":
        return "time to target (minutes; finish time when unreached)"
    return "best metric found"


def _comparison_cell(analysis: StudyAnalysis, row: LevelStats) -> str:
    if row.is_baseline:
        return "baseline"
    if row.baseline_speedup is not None:
        point, low, high = row.baseline_speedup
        return f"{point:.2f}x [{low:.2f}, {high:.2f}]"
    if row.baseline_delta is not None:
        point, low, high = row.baseline_delta
        return f"{point:+.4f} [{low:+.4f}, {high:+.4f}]"
    return "n/a"


def _context_heading(context: Dict[str, Any]) -> str:
    if not context:
        return "all cells"
    return ", ".join(f"{axis}={context[axis]}" for axis in sorted(context))


def _render_context(analysis: StudyAnalysis, context: ContextResult) -> List[str]:
    axis = analysis.compare_axis
    comparison_header = (
        "baseline adv ×" if analysis.lower_is_better else "Δ vs baseline"
    )
    lines = [
        f"## {_context_heading(context.context)}",
        "",
        f"| {axis} | n | mean | min | max | {comparison_header} (95% CI) "
        "| W/T/L vs baseline |",
        "|---|---:|---:|---:|---:|---|---:|",
    ]
    for row in context.levels:
        marker = "**" if row.level == context.winner else ""
        lines.append(
            f"| {marker}{row.level}{marker} | {row.n} "
            f"| {_format_value(analysis, row.mean)} "
            f"| {_format_value(analysis, row.minimum)} "
            f"| {_format_value(analysis, row.maximum)} "
            f"| {_comparison_cell(analysis, row)} "
            + (
                "| — |"
                if row.is_baseline
                else f"| {row.wins}/{row.ties}/{row.losses} |"
            )
        )
    lines.append("")
    levels = [row.level for row in context.levels]
    if len(levels) > 1 and analysis.replicates > 1:
        lines.append(
            f"Win matrix (row beats column, out of {analysis.replicates} "
            "replicates):"
        )
        lines.append("")
        lines.append("| vs | " + " | ".join(levels) + " |")
        lines.append("|---|" + "---:|" * len(levels))
        for row_level in levels:
            cells = [
                "·" if row_level == col else str(
                    context.win_matrix[row_level][col]
                )
                for col in levels
            ]
            lines.append(f"| {row_level} | " + " | ".join(cells) + " |")
        lines.append("")
    lines.append(f"Context winner: **{context.winner}**")
    lines.append("")
    return lines


def render_markdown(analysis: StudyAnalysis) -> str:
    """The full study report as GitHub-flavoured markdown."""
    direction = "lower is better" if analysis.lower_is_better else (
        "higher is better"
    )
    lines = [
        f"# Study report: {analysis.study}",
        "",
        f"- metric: `{analysis.metric}` — {_metric_heading(analysis)} "
        f"({direction})",
        f"- comparison axis: `{analysis.compare_axis}` "
        f"(baseline: `{analysis.baseline_level}`)",
        f"- cells: {analysis.cells} "
        f"({analysis.replicates} paired replicates per level per context)",
        "",
    ]
    for context in analysis.contexts:
        lines.extend(_render_context(analysis, context))
    total = len(analysis.contexts)
    wins = sum(
        1 for context in analysis.contexts
        if context.winner == analysis.overall_winner
    )
    lines.append("## Overall")
    lines.append("")
    lines.append(
        f"Winner: **{analysis.overall_winner}** "
        f"({wins}/{total} context{'s' if total != 1 else ''})"
    )
    lines.append("")
    return "\n".join(lines)


def render_json(analysis: StudyAnalysis) -> Dict[str, Any]:
    """The machine-readable report payload (``report.json``)."""
    return analysis.to_dict()
