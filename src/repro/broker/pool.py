"""The global slot pool: one set of machine slots shared by every
admitted experiment.

Pre-broker, each runtime owned a fixed pool
(:class:`~repro.framework.resource_manager.ResourceManager` built from
``spec.num_machines``).  The broker inverts that ownership: the daemon
owns a single :class:`SlotPool` of ``total_slots`` slots, and
experiments *lease* slots from it through revocable
:class:`SlotLease` tokens.

Lease discipline (the invariant the CI broker-smoke job asserts):

* a slot is **allocated** from grant until release — including the
  window where its lease has been *revoked* but the holder has not yet
  acknowledged by releasing it.  ``allocated <= total`` always holds,
  so the pool can never be oversubscribed, even mid-reclaim.
* **revocation** is cooperative: :meth:`revoke` marks leases, the
  holding executor observes them at its next slot sync (checkpoint
  boundary) and shrinks its machine set before releasing.  The
  ``checkpoint_every`` of a submission therefore bounds reclaim
  latency.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..observability import NULL_RECORDER

__all__ = ["SlotLease", "SlotPool"]


@dataclass
class SlotLease:
    """One slot, leased to one experiment.

    Attributes:
        lease_id: unique token (``lease-N``).
        exp_id: holding experiment.
        tenant: tenant the holder belongs to (budget accounting).
        granted_at: wall-clock grant time.
        revoked: set by the broker; the holder must release at its
            next sync.
    """

    lease_id: str
    exp_id: str
    tenant: str
    granted_at: float
    revoked: bool = field(default=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "lease_id": self.lease_id,
            "exp_id": self.exp_id,
            "tenant": self.tenant,
            "granted_at": self.granted_at,
            "revoked": self.revoked,
        }


class SlotPool:
    """Slot accounting for the shared pool (thread-safe).

    Args:
        total_slots: pool capacity; ``None`` means *unlimited* — every
            acquire is granted in full and nothing is ever scarce.
            The daemon runs unlimited unless ``repro serve --slots N``
            caps it, which keeps pre-broker deployments byte-identical.
        clock: wall-clock source (injectable for tests).
        recorder: observability facade carrying the ``broker_slots_*``
            gauges.
    """

    def __init__(self, total_slots: Optional[int] = None, clock=None,
                 recorder=None) -> None:
        if total_slots is not None and total_slots < 1:
            raise ValueError("total_slots must be >= 1 when given")
        import time as _time

        self.total_slots = total_slots
        self._shrink_target: Optional[int] = None
        self._clock = clock if clock is not None else _time.time
        self._lock = threading.Lock()
        self._leases: Dict[str, SlotLease] = {}
        self._counter = itertools.count()
        self._known_tenants: set = set()
        recorder = recorder if recorder is not None else NULL_RECORDER
        metrics = recorder.metrics
        self._m_total = metrics.gauge(
            "broker_slots_total", help="Slot-pool capacity (0 = unlimited)"
        )
        self._m_allocated = metrics.gauge(
            "broker_slots_allocated",
            help="Slots currently leased (incl. revoked-not-yet-released)",
        )
        self._m_tenant_held = metrics.gauge(
            "broker_tenant_slots_held", help="Slots held, by tenant"
        )
        self._m_total.set(float(total_slots or 0))
        self._m_allocated.set(0.0)

    # ------------------------------------------------------------- queries

    @property
    def allocated(self) -> int:
        with self._lock:
            return len(self._leases)

    @property
    def free(self) -> Optional[int]:
        """Free slots, or None when the pool is unlimited."""
        if self.total_slots is None:
            return None
        with self._lock:
            return self.total_slots - len(self._leases)

    @property
    def target_slots(self) -> Optional[int]:
        """Capacity planners should aim at: the pending shrink target
        while one is outstanding, the live capacity otherwise."""
        with self._lock:
            if self._shrink_target is not None:
                return self._shrink_target
            return self.total_slots

    @property
    def shrink_pending(self) -> bool:
        with self._lock:
            return self._shrink_target is not None

    def leases_of(self, exp_id: str) -> List[SlotLease]:
        with self._lock:
            return [
                lease for lease in self._leases.values()
                if lease.exp_id == exp_id
            ]

    def held(self, exp_id: str, include_revoked: bool = True) -> int:
        with self._lock:
            return sum(
                1 for lease in self._leases.values()
                if lease.exp_id == exp_id
                and (include_revoked or not lease.revoked)
            )

    def holdings(self) -> Dict[str, int]:
        """Unrevoked slot count per experiment."""
        out: Dict[str, int] = {}
        with self._lock:
            for lease in self._leases.values():
                if not lease.revoked:
                    out[lease.exp_id] = out.get(lease.exp_id, 0) + 1
        return out

    # ------------------------------------------------------------ commands

    def resize(self, total: Optional[int]) -> Optional[int]:
        """Retarget pool capacity without ever stranding a lease.

        Growing (and lifting the cap with ``None``) takes effect
        immediately.  Shrinking below the allocated count records a
        *pending* shrink instead: ``total_slots`` floors at the live
        allocation — the ``allocated <= total`` invariant never breaks —
        and steps down as holders release, reaching ``total`` once
        enough leases are back.  Planners (the broker's rebalance, the
        autoscaler) read :attr:`target_slots` so they keep revoking
        toward the goal while the ledger drains.

        Returns the capacity now in effect.
        """
        if total is not None and total < 1:
            raise ValueError("total must be >= 1 when given")
        with self._lock:
            if total is None:
                self.total_slots = None
                self._shrink_target = None
            else:
                allocated = len(self._leases)
                if total >= allocated:
                    self.total_slots = total
                    self._shrink_target = None
                else:
                    self.total_slots = allocated
                    self._shrink_target = total
            self._m_total.set(float(self.total_slots or 0))
            return self.total_slots

    def acquire(self, exp_id: str, tenant: str, count: int) -> List[SlotLease]:
        """Grant up to ``count`` leases to ``exp_id`` (possibly fewer,
        possibly none — the caller decides whether a partial grant is
        enough to run)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        granted: List[SlotLease] = []
        with self._lock:
            for _ in range(count):
                if (
                    self.total_slots is not None
                    and len(self._leases) >= self.total_slots
                ):
                    break
                lease = SlotLease(
                    lease_id=f"lease-{next(self._counter):06d}",
                    exp_id=exp_id,
                    tenant=tenant,
                    granted_at=self._clock(),
                )
                self._leases[lease.lease_id] = lease
                granted.append(lease)
            self._update_gauges()
        return granted

    def release(self, lease_ids) -> int:
        """Return leases to the pool; unknown ids are ignored (a
        release can race a revoke acknowledgement).  Returns the number
        actually released."""
        released = 0
        with self._lock:
            for lease_id in list(lease_ids):
                if self._leases.pop(lease_id, None) is not None:
                    released += 1
            self._settle_shrink()
            self._update_gauges()
        return released

    def release_experiment(self, exp_id: str) -> int:
        """Release every lease ``exp_id`` still holds."""
        with self._lock:
            doomed = [
                lease_id
                for lease_id, lease in self._leases.items()
                if lease.exp_id == exp_id
            ]
            for lease_id in doomed:
                del self._leases[lease_id]
            self._settle_shrink()
            self._update_gauges()
        return len(doomed)

    def revoke(self, exp_id: str, count: int) -> List[SlotLease]:
        """Mark up to ``count`` of ``exp_id``'s unrevoked leases as
        revoked (newest first, so the oldest slots survive).  The slots
        stay allocated until the holder releases them."""
        if count < 0:
            raise ValueError("count must be >= 0")
        marked: List[SlotLease] = []
        with self._lock:
            candidates = sorted(
                (
                    lease for lease in self._leases.values()
                    if lease.exp_id == exp_id and not lease.revoked
                ),
                key=lambda lease: lease.granted_at,
                reverse=True,
            )
            for lease in candidates[:count]:
                lease.revoked = True
                marked.append(lease)
        return marked

    def revoked_leases(self, exp_id: str) -> List[SlotLease]:
        with self._lock:
            return [
                lease for lease in self._leases.values()
                if lease.exp_id == exp_id and lease.revoked
            ]

    # ------------------------------------------------------------ internal

    def _settle_shrink(self) -> None:
        # Caller holds the lock.  Step capacity down toward a pending
        # shrink target as leases come back; clear the target once met.
        if self._shrink_target is None:
            return
        allocated = len(self._leases)
        self.total_slots = max(self._shrink_target, allocated)
        if allocated <= self._shrink_target:
            self._shrink_target = None
        self._m_total.set(float(self.total_slots or 0))

    def _update_gauges(self) -> None:
        # Caller holds the lock.
        self._m_allocated.set(float(len(self._leases)))
        per_tenant: Dict[str, int] = {}
        for lease in self._leases.values():
            per_tenant[lease.tenant] = per_tenant.get(lease.tenant, 0) + 1
        # Zero tenants that no longer hold anything so the gauge does
        # not freeze at the last non-zero value.
        self._known_tenants.update(per_tenant)
        for tenant in self._known_tenants:
            self._m_tenant_held.set(float(per_tenant.get(tenant, 0)), tenant=tenant)

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "total_slots": self.total_slots,
                "target_slots": (
                    self._shrink_target if self._shrink_target is not None
                    else self.total_slots
                ),
                "allocated": len(self._leases),
                "free": (
                    None if self.total_slots is None
                    else self.total_slots - len(self._leases)
                ),
                "leases": [
                    lease.to_dict()
                    for lease in sorted(
                        self._leases.values(), key=lambda l: l.lease_id
                    )
                ],
            }
