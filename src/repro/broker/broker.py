"""The resource broker: one slot pool, many experiments, POP across
all of them.

Within one experiment the paper's POP policy splits machines between a
promising pool (configs whose predicted final accuracy clears the
dynamic threshold ``p*``) and an opportunistic pool.  The broker lifts
that same computation one level up: the confidences of **every**
admitted experiment compete in a single global
:func:`~repro.core.allocation.compute_slot_allocation` call, so an
experiment rich in promising configurations is *desired* more of the
shared pool, and an experiment still exploring gets squeezed toward
its one-slot guarantee.

Grant/reclaim protocol (driven from each executor's checkpoint hook):

1. ``plan(exp_id)`` — charge the budget, rebalance the pool, return
   the experiment's current slot **target** (0 = fully preempted).
2. the executor resizes its runtime *down* to the target (draining
   machines, suspending their jobs back onto survivors);
3. ``commit(exp_id)`` — release the revoked leases (only now do the
   slots return to the pool — never before the machines are actually
   drained), acquire up to the target if the pool has free slots, and
   return the new holding; the executor resizes *up* to match.

Reclaim picks victims by **value** — expected best accuracy per
slot-second, ``best_confidence / max(best_ERT, 1)``, scaled by
deadline pressure — so slots flow from low-value to high-value
experiments.  Full preemption (target 0, run interrupted and requeued)
is only ever inflicted by a strictly-higher-priority experiment; the
PR-2 replay-resume machinery makes it lossless.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.allocation import compute_slot_allocation
from ..observability import NULL_RECORDER
from .admission import AdmissionController, QueueEntry
from .pool import SlotPool

__all__ = ["BrokerDecision", "RegisteredExperiment", "ResourceBroker"]


@dataclass
class RegisteredExperiment:
    """Broker-side state for one admitted, running experiment."""

    exp_id: str
    tenant: str
    priority: int
    want: int
    registered_at: float
    deadline_hours: Optional[float] = None
    budget_slot_hours: Optional[float] = None
    target: int = 0
    confidences: List[float] = field(default_factory=list)
    best_confidence: float = 0.0
    best_ert_seconds: float = 0.0
    spent_slot_hours: float = 0.0
    budget_exhausted: bool = False
    preempted: bool = False
    last_charge_at: Optional[float] = None

    def deadline_remaining(self, now: float) -> Optional[float]:
        if self.deadline_hours is None:
            return None
        return self.registered_at + self.deadline_hours * 3600.0 - now

    def to_dict(self, now: float, held: int) -> Dict[str, object]:
        return {
            "exp_id": self.exp_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "want": self.want,
            "target": self.target,
            "held": held,
            "best_confidence": round(self.best_confidence, 4),
            "best_ert_seconds": round(self.best_ert_seconds, 2),
            "spent_slot_hours": round(self.spent_slot_hours, 4),
            "budget_slot_hours": self.budget_slot_hours,
            "budget_exhausted": self.budget_exhausted,
            "deadline_remaining_seconds": (
                None if self.deadline_hours is None
                else round(self.deadline_remaining(now) or 0.0, 1)
            ),
            "preempted": self.preempted,
        }


@dataclass(frozen=True)
class BrokerDecision:
    """What ``plan``/``commit`` tell the executor."""

    target: int
    held: int
    preempted: bool = False


class ResourceBroker:
    """Admission + slot pool + cross-experiment POP, thread-safe.

    With ``pool.total_slots is None`` (the default daemon
    configuration) every experiment is granted exactly what it asks
    for and nothing is ever reclaimed — pre-broker behaviour, at
    pre-broker cost.
    """

    def __init__(
        self,
        pool: Optional[SlotPool] = None,
        admission: Optional[AdmissionController] = None,
        recorder=None,
        clock=None,
    ) -> None:
        import time as _time

        self.pool = pool if pool is not None else SlotPool()
        self.admission = admission if admission is not None \
            else AdmissionController()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._clock = clock if clock is not None else _time.time
        self._lock = threading.RLock()
        self._experiments: Dict[str, RegisteredExperiment] = {}
        metrics = self.recorder.metrics
        self._m_active = metrics.gauge(
            "broker_experiments_active", help="Experiments holding leases"
        )
        self._m_tenant_queued = metrics.gauge(
            "broker_tenant_queued", help="Queued experiments, by tenant"
        )
        self._m_tenant_running = metrics.gauge(
            "broker_tenant_running", help="Running experiments, by tenant"
        )
        self._m_tenant_spent = metrics.gauge(
            "broker_tenant_budget_spent_slot_hours",
            help="Slot-hours consumed, by tenant",
        )
        self._m_tenant_remaining = metrics.gauge(
            "broker_tenant_budget_remaining_slot_hours",
            help="Budget left across a tenant's budgeted experiments",
        )
        self._m_tenant_deadline = metrics.gauge(
            "broker_tenant_deadline_seconds",
            help="Tightest deadline countdown among a tenant's runs",
        )
        self._m_reclaims = metrics.counter(
            "broker_reclaims_total", help="Slot-reclaim decisions"
        )
        self._m_preempts = metrics.counter(
            "broker_preemptions_total", help="Full preemptions"
        )
        self._m_rejected = metrics.counter(
            "broker_rejections_total", help="Rejected submissions, by reason"
        )
        self._known_tenants: set = set()

    # --------------------------------------------------------- admission

    def claim_next(self, entries: Iterable[QueueEntry]) -> Optional[str]:
        """Which queued experiment a daemon worker should claim, or
        ``None`` when nothing is runnable right now.

        Beyond quota order (priority DESC, FIFO within), a bounded
        pool refuses to start an experiment the pool cannot guarantee
        one slot — unless that experiment's priority is strictly
        greater than some current holder's, in which case it is
        admitted and the rebalance will preempt the victim.
        """
        entries = list(entries)
        with self._lock:
            candidate = self.admission.next_runnable(entries)
            total = self.pool.target_slots
            if candidate is None or total is None:
                return candidate
            active = [
                st for st in self._experiments.values() if not st.preempted
            ]
            if len(active) < total:
                return candidate
            entry = next(e for e in entries if e.exp_id == candidate)
            if any(entry.priority > st.priority for st in active):
                return candidate
            return None

    # ---------------------------------------------------------- lifecycle

    def register(
        self,
        exp_id: str,
        tenant: str,
        priority: int = 0,
        want: int = 1,
        deadline_hours: Optional[float] = None,
        budget_slot_hours: Optional[float] = None,
    ) -> RegisteredExperiment:
        """Admit a claimed experiment to the pool (idempotent: a resume
        re-registers under the same id, keeping nothing from before —
        budget charging restarts, which is deliberate: the replay *is*
        new slot consumption)."""
        if want < 1:
            raise ValueError("want must be >= 1")
        now = self._clock()
        with self._lock:
            state = RegisteredExperiment(
                exp_id=exp_id, tenant=tenant, priority=priority,
                want=want, registered_at=now,
                deadline_hours=deadline_hours,
                budget_slot_hours=budget_slot_hours,
                last_charge_at=now,
            )
            self._experiments[exp_id] = state
            self._rebalance(now)
            self._m_active.set(float(len(self._experiments)))
        self.recorder.audit.record(
            "broker_admit", exp_id=exp_id, tenant=tenant,
            priority=priority, want=want,
            deadline_hours=deadline_hours,
            budget_slot_hours=budget_slot_hours,
        )
        return state

    def report(
        self,
        exp_id: str,
        confidences: Optional[List[float]] = None,
        best_confidence: Optional[float] = None,
        best_ert_seconds: Optional[float] = None,
    ) -> None:
        """Update an experiment's POP state (called from the executor's
        checkpoint hook before ``plan``)."""
        with self._lock:
            state = self._experiments.get(exp_id)
            if state is None:
                return
            if confidences is not None:
                state.confidences = [
                    float(c) for c in confidences if c is not None
                ]
            if best_confidence is not None:
                state.best_confidence = float(best_confidence)
            if best_ert_seconds is not None:
                state.best_ert_seconds = float(best_ert_seconds)

    def plan(self, exp_id: str) -> BrokerDecision:
        """Phase 1 of a sync: rebalance and return the slot target."""
        now = self._clock()
        with self._lock:
            state = self._experiments.get(exp_id)
            if state is None:
                return BrokerDecision(target=0, held=0, preempted=False)
            self._rebalance(now)
            return BrokerDecision(
                target=state.target,
                held=self.pool.held(exp_id, include_revoked=False),
                preempted=state.preempted,
            )

    def commit(self, exp_id: str) -> BrokerDecision:
        """Phase 2: the executor has drained down to the target —
        release revoked leases and top back up to the target."""
        with self._lock:
            state = self._experiments.get(exp_id)
            if state is None:
                return BrokerDecision(target=0, held=0)
            revoked = self.pool.revoked_leases(exp_id)
            if revoked:
                self.pool.release(lease.lease_id for lease in revoked)
            held = self.pool.held(exp_id)
            grant = state.target - held
            if grant > 0:
                granted = self.pool.acquire(exp_id, state.tenant, grant)
                if granted:
                    self.recorder.audit.record(
                        "broker_grant", exp_id=exp_id, tenant=state.tenant,
                        slots=len(granted), target=state.target,
                    )
                held += len(granted)
            return BrokerDecision(
                target=state.target, held=held, preempted=state.preempted
            )

    def release(self, exp_id: str, reason: str = "finished") -> int:
        """Tear down an experiment: return all its slots, unregister."""
        with self._lock:
            released = self.pool.release_experiment(exp_id)
            state = self._experiments.pop(exp_id, None)
            if state is not None:
                self._rebalance(self._clock())
            self._m_active.set(float(len(self._experiments)))
        if state is not None:
            self.recorder.audit.record(
                "broker_release", exp_id=exp_id, tenant=state.tenant,
                slots=released, reason=reason,
                spent_slot_hours=round(state.spent_slot_hours, 4),
            )
        return released

    # ---------------------------------------------------------- rebalance

    def _value(self, state: RegisteredExperiment, now: float) -> float:
        """Expected best-accuracy gain per slot-second, with deadline
        pressure.  Floors keep never-reported experiments above zero so
        a brand-new run is not instantly the reclaim victim."""
        base = max(state.best_confidence, 0.01) / \
            max(state.best_ert_seconds, 1.0)
        remaining = state.deadline_remaining(now)
        if remaining is None:
            pressure = 1.0
        elif remaining <= 0:
            pressure = 10.0
        else:
            total = (state.deadline_hours or 0.0) * 3600.0
            pressure = min(10.0, max(1.0, total / max(remaining, 1.0)))
        return base * pressure

    def _charge(self, state: RegisteredExperiment, now: float) -> None:
        last = state.last_charge_at if state.last_charge_at is not None \
            else now
        held = self.pool.held(state.exp_id, include_revoked=False)
        state.spent_slot_hours += held * max(0.0, now - last) / 3600.0
        state.last_charge_at = now
        if (
            state.budget_slot_hours is not None
            and not state.budget_exhausted
            and state.spent_slot_hours >= state.budget_slot_hours
        ):
            state.budget_exhausted = True
            self.recorder.audit.record(
                "broker_budget_exhausted", exp_id=state.exp_id,
                tenant=state.tenant,
                spent_slot_hours=round(state.spent_slot_hours, 4),
                budget_slot_hours=state.budget_slot_hours,
            )

    def _rebalance(self, now: float) -> None:
        """Recompute every experiment's slot target (caller holds the
        lock).  No-op in unlimited mode beyond granting everyone their
        ask."""
        experiments = list(self._experiments.values())
        if not experiments:
            return
        # Plan against the shrink target (not the still-draining live
        # capacity) so an autoscaler shrink keeps revoking until met.
        total = self.pool.target_slots
        if total is None:
            for state in experiments:
                state.target = state.want
            return

        for state in experiments:
            self._charge(state, now)

        # Victim order: lowest priority last, then lowest value last —
        # the tail of this sort is who loses slots first.
        ranked = sorted(
            experiments,
            key=lambda s: (-s.priority, -self._value(s, now),
                           s.registered_at, s.exp_id),
        )

        # Full preemption when there are more experiments than slots:
        # only a strictly-higher-priority survivor justifies it.
        survivors = ranked[:total]
        for state in ranked[total:]:
            if not state.preempted:
                state.preempted = True
                justified = any(
                    keeper.priority > state.priority for keeper in survivors
                )
                self.recorder.audit.record(
                    "broker_preempt", exp_id=state.exp_id,
                    tenant=state.tenant, priority=state.priority,
                    value=round(self._value(state, now), 6),
                    reason="priority" if justified else "capacity",
                )
                self._m_preempts.inc()
            state.target = 0
            self.pool.revoke(
                state.exp_id,
                self.pool.held(state.exp_id, include_revoked=False),
            )
        for state in survivors:
            state.preempted = False

        # Cross-experiment POP: all survivors' confidences compete for
        # one global promising set.
        all_confidences = [
            c for state in survivors for c in state.confidences
        ]
        allocation = None
        if all_confidences:
            allocation = compute_slot_allocation(
                all_confidences, total_slots=total
            )

        desired: Dict[str, int] = {}
        for state in survivors:
            if state.budget_exhausted:
                desired[state.exp_id] = 1
            elif allocation is not None and allocation.num_promising > 0:
                promising_here = sum(
                    1 for c in state.confidences
                    if c >= allocation.threshold
                )
                desired[state.exp_id] = min(
                    state.want, max(1, promising_here)
                )
            else:
                desired[state.exp_id] = state.want

        # Water-fill: one guaranteed slot each, then up to desired in
        # rank order, then (work-conserving) up to want.  A spent
        # budget caps at the one-slot guarantee even when slots are
        # free — idling them is what the tenant paid (not) for.
        targets = {state.exp_id: 1 for state in survivors}
        remaining = total - len(survivors)
        want_of = {
            s.exp_id: (1 if s.budget_exhausted else s.want)
            for s in survivors
        }
        for cap_of in (desired, want_of):
            for state in survivors:
                if remaining <= 0:
                    break
                extra = min(
                    cap_of[state.exp_id] - targets[state.exp_id], remaining
                )
                if extra > 0:
                    targets[state.exp_id] += extra
                    remaining -= extra

        for state in survivors:
            state.target = targets[state.exp_id]
            held = self.pool.held(state.exp_id, include_revoked=False)
            if held > state.target:
                marked = self.pool.revoke(state.exp_id, held - state.target)
                if marked:
                    self.recorder.audit.record(
                        "broker_reclaim", exp_id=state.exp_id,
                        tenant=state.tenant, slots=len(marked),
                        target=state.target,
                        value=round(self._value(state, now), 6),
                        reason="rebalance",
                    )
                    self._m_reclaims.inc()

    # ------------------------------------------------------------ exports

    def record_rejection(self, reason: str) -> None:
        self._m_rejected.inc(reason=reason)

    def export_tenant_gauges(self, entries: Iterable[QueueEntry]) -> None:
        """Refresh the per-tenant gauges `repro top` renders, from the
        store's queue snapshot plus broker-internal budget state."""
        now = self._clock()
        counts = self.admission.tenant_counts(entries)
        with self._lock:
            tenants = set(counts) | {
                s.tenant for s in self._experiments.values()
            } | self._known_tenants
            self._known_tenants = set(tenants)
            for tenant in tenants:
                count = counts.get(tenant, {"queued": 0, "running": 0})
                self._m_tenant_queued.set(
                    float(count["queued"]), tenant=tenant
                )
                self._m_tenant_running.set(
                    float(count["running"]), tenant=tenant
                )
                states = [
                    s for s in self._experiments.values()
                    if s.tenant == tenant
                ]
                self._m_tenant_spent.set(
                    sum(s.spent_slot_hours for s in states), tenant=tenant
                )
                budgeted = [
                    s for s in states if s.budget_slot_hours is not None
                ]
                if budgeted:
                    self._m_tenant_remaining.set(
                        sum(
                            max(0.0, s.budget_slot_hours - s.spent_slot_hours)
                            for s in budgeted
                        ),
                        tenant=tenant,
                    )
                deadlines = [
                    s.deadline_remaining(now) for s in states
                    if s.deadline_hours is not None
                ]
                if deadlines:
                    self._m_tenant_deadline.set(
                        min(deadlines), tenant=tenant
                    )

    def status(self) -> Dict[str, object]:
        """The ``GET /broker`` / ``repro broker-status`` document."""
        now = self._clock()
        with self._lock:
            experiments = [
                state.to_dict(now, self.pool.held(state.exp_id))
                for state in sorted(
                    self._experiments.values(),
                    key=lambda s: (-s.priority, s.registered_at, s.exp_id),
                )
            ]
        return {
            "pool": self.pool.to_dict(),
            "experiments": experiments,
            "admission": self.admission.to_dict(),
        }
