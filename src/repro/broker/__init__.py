"""Multi-tenant resource broker: one slot pool shared by every
admitted experiment.

The broker inverts machine ownership — pre-broker, each run owned a
fixed :class:`~repro.framework.resource_manager.ResourceManager` pool;
now the daemon owns a single :class:`~repro.broker.pool.SlotPool` and
runs hold revocable :class:`~repro.broker.pool.SlotLease` grants that
the broker rebalances with the paper's POP allocation computed
*across* experiments.  See ``docs/service.md`` ("Multi-tenant
broker").
"""

from .admission import (
    AdmissionController,
    AdmissionError,
    QueueEntry,
    QueueFull,
    QuotaExceeded,
    RateLimited,
    TenantQuota,
    parse_quota_spec,
)
from .broker import BrokerDecision, RegisteredExperiment, ResourceBroker
from .pool import SlotLease, SlotPool
from .ratelimit import RateLimiter, TokenBucket

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "BrokerDecision",
    "QueueEntry",
    "QueueFull",
    "QuotaExceeded",
    "RateLimited",
    "RateLimiter",
    "RegisteredExperiment",
    "ResourceBroker",
    "SlotLease",
    "SlotPool",
    "TenantQuota",
    "TokenBucket",
    "parse_quota_spec",
]
