"""Broker-vs-FIFO lab study: is sharing one slot pool worth it?

The broker's pitch is *aggregate* time-to-target: on a P-slot pool, K
tenants submitting together should collectively reach their targets
sooner under cross-experiment POP brokering than under the classic
alternative — a strict FIFO daemon that runs one experiment at a time
with the whole pool.  This module measures exactly that claim with the
repo's own machinery end to end:

* each **scenario** boots a real in-process
  :class:`~repro.service.daemon.ExperimentService`, submits the same K
  experiments (distinct tenants, shared seed offset), and records each
  experiment's **flow time** — wall seconds from scenario start to its
  terminal record's ``finished_at``;
* the **pop-broker** condition runs K workers over a P-slot pool
  (concurrent experiments leasing and rebalancing slots);
* the **sequential FIFO** condition runs 1 worker with an unlimited
  pool (each experiment owns its full machine ask, strictly one at a
  time — FIFO order);
* scenarios are **paired by seed** and the aggregate — the batch
  **makespan**, wall seconds until every experiment in the batch is
  done — is reported as a speedup ratio with a paired bootstrap CI
  (:func:`~repro.metrics.stats.paired_bootstrap_speedup_ci`), the same
  statistical treatment as the sweep lab's reports.

This is deliberately wall-clock: the simulated runtimes burn real CPU
proportional to simulated work, so concurrency effects (what the
broker exists for) show up only on the wall axis.  Pairing by seed
and bootstrap CIs absorb machine noise.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = ["ScenarioResult", "broker_vs_fifo", "render_report", "run_scenario"]

MODES = ("fifo", "broker")


@dataclass
class ScenarioResult:
    """One scenario (one mode, one seed) of the comparison."""

    mode: str
    seed: int
    flow_seconds: Dict[str, float] = field(default_factory=dict)
    statuses: Dict[str, str] = field(default_factory=dict)

    @property
    def aggregate_seconds(self) -> float:
        """Batch makespan — wall seconds until every experiment in the
        scenario is done.  This is the 'aggregate time-to-target'
        headline: the FIFO baseline pays the full staircase (each
        experiment waits for all earlier ones) while the broker
        overlaps them on the shared pool."""
        flows = list(self.flow_seconds.values())
        return max(flows) if flows else 0.0

    @property
    def mean_flow_seconds(self) -> float:
        """Mean per-experiment flow time (secondary, latency-flavored
        view — concurrency can trade this off against makespan)."""
        flows = list(self.flow_seconds.values())
        return sum(flows) / len(flows) if flows else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "flow_seconds": dict(self.flow_seconds),
            "aggregate_seconds": self.aggregate_seconds,
            "mean_flow_seconds": self.mean_flow_seconds,
            "statuses": dict(self.statuses),
        }


def run_scenario(
    mode: str,
    seed: int,
    root: Optional[Union[str, Path]] = None,
    slots: int = 4,
    experiments: int = 3,
    workload: str = "cifar10",
    configs: int = 8,
    tmax_hours: float = 0.5,
    checkpoint_every: int = 5,
    timeout: float = 600.0,
) -> ScenarioResult:
    """Run one K-experiment scenario under one scheduling discipline.

    Args:
        mode: ``"broker"`` (K workers, P-slot shared pool) or
            ``"fifo"`` (1 worker, unlimited pool — strict sequential).
        seed: scenario seed; experiment *i* runs with ``seed*100 + i``
            so paired scenarios see identical workloads.
        root: run-store directory (a temp dir when None).
        slots: pool size P; also each submission's machine ask, so the
            FIFO baseline gives every run the full pool.
        experiments: K concurrent submissions (tenant-0 … tenant-K-1).
        workload / configs / tmax_hours / checkpoint_every: forwarded
            to each :class:`~repro.service.submission.Submission`.
        timeout: wall bound on the whole scenario.

    Returns:
        The scenario's per-experiment flow times and final statuses.
    """
    from ..service.daemon import ExperimentService

    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, not {mode!r}")
    if experiments < 1:
        raise ValueError("experiments must be >= 1")
    if root is None:
        root = tempfile.mkdtemp(prefix=f"broker-study-{mode}-")
    service = ExperimentService(
        root,
        workers=experiments if mode == "broker" else 1,
        slots=slots if mode == "broker" else None,
    )
    service.start()
    result = ScenarioResult(mode=mode, seed=seed)
    try:
        start = time.time()
        ids: List[str] = []
        for index in range(experiments):
            record = service.submit(
                {
                    "workload": workload,
                    "policy": "pop",
                    "configs": configs,
                    "machines": slots,
                    "seed": seed * 100 + index,
                    "tmax_hours": tmax_hours,
                    "checkpoint_every": checkpoint_every,
                    "tenant": f"tenant-{index}",
                }
            )
            ids.append(record["id"])
        deadline = time.monotonic() + timeout
        pending = set(ids)
        while pending:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{mode} scenario (seed {seed}) still has "
                    f"{len(pending)} unfinished experiment(s) after "
                    f"{timeout:.0f}s"
                )
            for exp_id in sorted(pending):
                record = service.store.get(exp_id)
                assert record is not None
                if record.status in ("completed", "failed", "cancelled"):
                    pending.discard(exp_id)
                    result.statuses[exp_id] = record.status
                    finished = record.finished_at or time.time()
                    result.flow_seconds[exp_id] = max(
                        0.0, finished - start
                    )
            time.sleep(0.05)
    finally:
        service.stop()
    return result


def broker_vs_fifo(
    seeds: Sequence[int] = (0, 1, 2),
    confidence: float = 0.95,
    **scenario_kwargs: Any,
) -> Dict[str, Any]:
    """The full paired study: FIFO baseline vs pop-broker, per seed.

    Returns a report dict with per-seed aggregates and the paired
    bootstrap speedup CI (baseline FIFO over improved broker — above
    1.0 means the broker wins).  Keyword args are forwarded to
    :func:`run_scenario`.
    """
    from ..metrics.stats import paired_bootstrap_speedup_ci

    if not seeds:
        raise ValueError("seeds must be non-empty")
    pairs: List[Dict[str, Any]] = []
    fifo_aggregates: List[float] = []
    broker_aggregates: List[float] = []
    for seed in seeds:
        fifo = run_scenario("fifo", seed, **scenario_kwargs)
        broker = run_scenario("broker", seed, **scenario_kwargs)
        fifo_aggregates.append(fifo.aggregate_seconds)
        broker_aggregates.append(broker.aggregate_seconds)
        pairs.append({"fifo": fifo.to_dict(), "broker": broker.to_dict()})
    point, low, high = paired_bootstrap_speedup_ci(
        fifo_aggregates, broker_aggregates, confidence=confidence
    )
    return {
        "metric": "batch_makespan_seconds",
        "seeds": list(seeds),
        "pairs": pairs,
        "fifo_mean_seconds": sum(fifo_aggregates) / len(fifo_aggregates),
        "broker_mean_seconds":
            sum(broker_aggregates) / len(broker_aggregates),
        "speedup": point,
        "speedup_ci": [low, high],
        "confidence": confidence,
    }


def render_report(report: Dict[str, Any]) -> str:
    """The study dict as a small markdown report."""
    lines = [
        "# Broker vs sequential FIFO",
        "",
        "Aggregate time-to-target (batch makespan: wall seconds until",
        "every experiment in the batch is done), paired by seed.",
        "Speedup above 1.0x means the shared-pool broker beats running",
        "the same submissions strictly one at a time.",
        "",
        f"| seed | FIFO (s) | broker (s) |",
        f"|-----:|---------:|-----------:|",
    ]
    for pair in report["pairs"]:
        lines.append(
            f"| {pair['fifo']['seed']} "
            f"| {pair['fifo']['aggregate_seconds']:.2f} "
            f"| {pair['broker']['aggregate_seconds']:.2f} |"
        )
    low, high = report["speedup_ci"]
    lines += [
        "",
        f"**speedup: {report['speedup']:.2f}x "
        f"[{low:.2f}, {high:.2f}] "
        f"({report['confidence']:.0%} paired bootstrap)**",
        "",
    ]
    return "\n".join(lines)
