"""Token-bucket rate limiting for the broker's HTTP surface.

One bucket per key (tenant, or a shared key for anonymous traffic):
``capacity`` tokens, refilled continuously at ``refill_per_second``.
A request costs one token; when the bucket is dry the caller gets the
seconds-until-next-token back so the daemon can answer
``429 Too Many Requests`` with an honest ``Retry-After``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """A single continuously-refilled token bucket (thread-safe)."""

    def __init__(self, capacity: float, refill_per_second: float,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if refill_per_second <= 0:
            raise ValueError("refill_per_second must be > 0")
        import time as _time

        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock if clock is not None else _time.monotonic
        self._tokens = self.capacity
        self._stamp = self._clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(
            self.capacity, self._tokens + elapsed * self.refill_per_second
        )

    def try_acquire(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Spend ``cost`` tokens if available.

        Returns ``(granted, retry_after_seconds)``; ``retry_after``
        is 0 on success, else the wait until ``cost`` tokens exist.
        """
        with self._lock:
            self._refill()
            if self._tokens >= cost:
                self._tokens -= cost
                return True, 0.0
            deficit = cost - self._tokens
            return False, deficit / self.refill_per_second

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class RateLimiter:
    """Per-key token buckets with shared parameters.

    ``rate_per_minute=None`` disables limiting entirely (the daemon's
    default, preserving pre-broker behaviour).
    """

    def __init__(self, rate_per_minute: Optional[float] = None,
                 burst: Optional[int] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.rate_per_minute = rate_per_minute
        self._clock = clock
        self._burst = burst
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate_per_minute is not None

    def check(self, key: str, cost: float = 1.0) -> Tuple[bool, float]:
        """``(granted, retry_after_seconds)`` for one request by ``key``."""
        if self.rate_per_minute is None:
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                # Burst defaults to one minute's worth of tokens so a
                # fresh tenant can submit a batch before throttling.
                capacity = self._burst if self._burst is not None \
                    else max(1.0, self.rate_per_minute)
                bucket = TokenBucket(
                    capacity=capacity,
                    refill_per_second=self.rate_per_minute / 60.0,
                    clock=self._clock,
                )
                self._buckets[key] = bucket
        return bucket.try_acquire(cost)
