"""Admission control: who may enter the queue, and in what order.

Three gates, applied in order when a submission arrives:

1. **rate limit** — the tenant's token bucket
   (:class:`~repro.broker.ratelimit.RateLimiter`); a dry bucket raises
   :class:`RateLimited` with ``retry_after`` (→ 429 + Retry-After).
2. **queue depth** — a global bound on queued-but-not-running
   experiments; a full queue raises :class:`QueueFull` (→ 503 +
   Retry-After).
3. **tenant quotas** — per-tenant caps on queued and running
   experiments; violating ``max_queued`` raises :class:`QuotaExceeded`
   at submit time, while ``max_running`` is enforced at *claim* time
   (excess work waits in the queue rather than being rejected).

Dispatch order is **priority DESC, then created_at FIFO** — strict
priority with FIFO fairness inside each band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .ratelimit import RateLimiter

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "QueueFull",
    "QuotaExceeded",
    "RateLimited",
    "TenantQuota",
]


class AdmissionError(Exception):
    """Base class: a submission the broker will not take right now."""

    http_status = 400
    retry_after: Optional[float] = None


class RateLimited(AdmissionError):
    """Token bucket dry → 429 with Retry-After."""

    http_status = 429

    def __init__(self, tenant: str, retry_after: float) -> None:
        self.tenant = tenant
        self.retry_after = max(1.0, retry_after)
        super().__init__(
            f"tenant {tenant!r} is rate limited; "
            f"retry after {self.retry_after:.0f}s"
        )


class QueueFull(AdmissionError):
    """Global queue-depth backpressure → 503 with Retry-After."""

    http_status = 503

    def __init__(self, depth: int, limit: int) -> None:
        self.retry_after = 5.0
        super().__init__(
            f"queue depth {depth} at limit {limit}; retry later"
        )


class QuotaExceeded(AdmissionError):
    """Per-tenant queued quota exhausted → 429."""

    http_status = 429

    def __init__(self, tenant: str, queued: int, limit: int) -> None:
        self.retry_after = 10.0
        super().__init__(
            f"tenant {tenant!r} has {queued} queued experiments "
            f"(quota {limit})"
        )


@dataclass
class TenantQuota:
    """Caps for one tenant; ``None`` means unlimited."""

    max_running: Optional[int] = None
    max_queued: Optional[int] = None

    def to_dict(self) -> Dict[str, Optional[int]]:
        return {"max_running": self.max_running,
                "max_queued": self.max_queued}


@dataclass
class QueueEntry:
    """What the controller needs to know about one queued/running
    experiment (a projection of the store row)."""

    exp_id: str
    tenant: str
    priority: int
    created_at: float
    status: str  # "queued" | "running"
    machines: int = 1  # slots the experiment wants from the pool


class AdmissionController:
    """Stateless-ish admission policy over a queue snapshot.

    The controller holds configuration (quotas, limits, rate buckets)
    but not queue state — callers pass the current queue/running
    snapshot so the store stays the single source of truth.
    """

    def __init__(
        self,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        max_queue_depth: Optional[int] = None,
        rate_limiter: Optional[RateLimiter] = None,
    ) -> None:
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.max_queue_depth = max_queue_depth
        self.rate_limiter = rate_limiter or RateLimiter()

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    # ------------------------------------------------------------- submit

    def admit(self, tenant: str, queued: Iterable[QueueEntry]) -> None:
        """Gate one submission; raises an :class:`AdmissionError`
        subclass when it must be rejected, returns silently when it may
        be queued."""
        granted, retry_after = self.rate_limiter.check(tenant)
        if not granted:
            raise RateLimited(tenant, retry_after)

        entries = list(queued)
        depth = sum(1 for e in entries if e.status == "queued")
        if self.max_queue_depth is not None and depth >= self.max_queue_depth:
            raise QueueFull(depth, self.max_queue_depth)

        quota = self.quota_for(tenant)
        if quota.max_queued is not None:
            tenant_queued = sum(
                1 for e in entries
                if e.tenant == tenant and e.status == "queued"
            )
            if tenant_queued >= quota.max_queued:
                raise QuotaExceeded(tenant, tenant_queued, quota.max_queued)

    # -------------------------------------------------------------- claim

    def next_runnable(self, entries: Iterable[QueueEntry]) -> Optional[str]:
        """The experiment id a worker should claim next, or ``None``.

        Queued entries are considered in priority-DESC,
        created-at-FIFO order; an entry is skipped (not cancelled)
        while its tenant is at ``max_running``.
        """
        entries = list(entries)
        running_by_tenant: Dict[str, int] = {}
        for e in entries:
            if e.status == "running":
                running_by_tenant[e.tenant] = \
                    running_by_tenant.get(e.tenant, 0) + 1
        candidates = sorted(
            (e for e in entries if e.status == "queued"),
            key=lambda e: (-e.priority, e.created_at, e.exp_id),
        )
        for entry in candidates:
            quota = self.quota_for(entry.tenant)
            if quota.max_running is not None:
                if running_by_tenant.get(entry.tenant, 0) >= quota.max_running:
                    continue
            return entry.exp_id
        return None

    # ------------------------------------------------------------ exports

    def tenant_counts(
        self, entries: Iterable[QueueEntry]
    ) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for e in entries:
            bucket = out.setdefault(e.tenant, {"queued": 0, "running": 0})
            if e.status in bucket:
                bucket[e.status] += 1
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_queue_depth": self.max_queue_depth,
            "default_quota": self.default_quota.to_dict(),
            "quotas": {
                tenant: quota.to_dict()
                for tenant, quota in sorted(self.quotas.items())
            },
            "rate_per_minute": self.rate_limiter.rate_per_minute,
        }


def parse_quota_spec(spec: str) -> Dict[str, TenantQuota]:
    """Parse ``tenant=running[:queued]`` comma-lists from the CLI.

    ``"alice=2,bob=1:4"`` → alice may run 2 (unlimited queued), bob may
    run 1 and queue 4.  ``"*=2"`` sets the default quota (returned
    under the ``"*"`` key).
    """
    quotas: Dict[str, TenantQuota] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad quota {part!r}: expected tenant=running[:queued]"
            )
        tenant, _, limits = part.partition("=")
        running_s, _, queued_s = limits.partition(":")
        try:
            max_running = int(running_s)
            max_queued = int(queued_s) if queued_s else None
        except ValueError:
            raise ValueError(
                f"bad quota {part!r}: limits must be integers"
            ) from None
        quotas[tenant.strip()] = TenantQuota(
            max_running=max_running, max_queued=max_queued
        )
    return quotas
