"""HyperDrive / POP reproduction.

A from-scratch reproduction of *HyperDrive: Exploring Hyperparameters
with POP Scheduling* (Rasley et al., Middleware '17): the POP
scheduling algorithm, the HyperDrive middleware (Job/Resource Managers,
Node Agents, AppStat DB, suspend/resume), the Domhan-style probabilistic
learning-curve predictor it builds on, baseline policies (Default,
TuPAQ Bandit, EarlyTerm, successive halving), calibrated synthetic
workloads standing in for the paper's GPU/Gym testbeds, and the
trace-driven discrete-event simulator used for sensitivity analysis.

Quickstart::

    from repro import (
        Cifar10Workload, POPPolicy, RandomGenerator,
        ExperimentSpec, run_simulation,
    )

    workload = Cifar10Workload()
    result = run_simulation(
        workload,
        POPPolicy(),
        generator=RandomGenerator(workload.space, seed=0, max_configs=100),
        spec=ExperimentSpec(num_machines=4, num_configs=100),
    )
    print(result.summary())
"""

from .core import (
    CONFIDENCE_LOWER_BOUND,
    Category,
    ERTEstimate,
    POPPolicy,
    SlotAllocation,
    classify,
    compute_slot_allocation,
    estimate_remaining_time,
    is_poor_by_domain,
    slot_curves,
)
from .curves import (
    CURVE_MODELS,
    CurveEnsemble,
    CurveModel,
    CurvePrediction,
    CurvePredictor,
    EnsembleSampler,
    LastValuePredictor,
    LeastSquaresCurvePredictor,
    MCMCCurvePredictor,
)
from .framework import (
    AppStat,
    AppStatDB,
    Decision,
    ExperimentResult,
    ExperimentSpec,
    HyperDriveScheduler,
    Job,
    JobManager,
    JobState,
    NodeAgent,
    ResourceManager,
    Snapshot,
    SnapshotCostModel,
)
from .generators import (
    BayesianGenerator,
    TPEGenerator,
    Choice,
    GridGenerator,
    HyperparameterGenerator,
    IntUniform,
    LogUniform,
    RandomGenerator,
    SearchSpace,
    Uniform,
)
from .policies import (
    BanditPolicy,
    DefaultPolicy,
    EarlyTermPolicy,
    GlobalCriterionPolicy,
    HyperBandPolicy,
    SchedulingPolicy,
    SuccessiveHalvingPolicy,
)
from .sim import SimulationEngine, default_predictor, run_simulation
from .runtime import run_live
from .workloads import (
    Cifar10Workload,
    DomainSpec,
    EpochResult,
    LSTMSparsityWorkload,
    LunarLanderWorkload,
    MLPWorkload,
    TrainingRun,
    Workload,
)

__version__ = "1.5.0"

__all__ = [
    "POPPolicy",
    "ERTEstimate",
    "estimate_remaining_time",
    "SlotAllocation",
    "compute_slot_allocation",
    "slot_curves",
    "Category",
    "classify",
    "is_poor_by_domain",
    "CONFIDENCE_LOWER_BOUND",
    "CURVE_MODELS",
    "CurveModel",
    "CurveEnsemble",
    "EnsembleSampler",
    "CurvePrediction",
    "CurvePredictor",
    "MCMCCurvePredictor",
    "LeastSquaresCurvePredictor",
    "LastValuePredictor",
    "HyperDriveScheduler",
    "ExperimentSpec",
    "ExperimentResult",
    "Job",
    "JobState",
    "JobManager",
    "ResourceManager",
    "NodeAgent",
    "AppStat",
    "AppStatDB",
    "Decision",
    "Snapshot",
    "SnapshotCostModel",
    "SearchSpace",
    "Uniform",
    "LogUniform",
    "IntUniform",
    "Choice",
    "HyperparameterGenerator",
    "RandomGenerator",
    "GridGenerator",
    "BayesianGenerator",
    "TPEGenerator",
    "SchedulingPolicy",
    "DefaultPolicy",
    "BanditPolicy",
    "EarlyTermPolicy",
    "SuccessiveHalvingPolicy",
    "HyperBandPolicy",
    "GlobalCriterionPolicy",
    "Workload",
    "TrainingRun",
    "EpochResult",
    "DomainSpec",
    "Cifar10Workload",
    "LunarLanderWorkload",
    "LSTMSparsityWorkload",
    "MLPWorkload",
    "SimulationEngine",
    "run_simulation",
    "run_live",
    "default_predictor",
]
