"""Application-statistics database (AppStatDB, §4.2).

Stores model-generated statistics (metric, epoch duration) and the
snapshots that enable cross-machine suspend/resume.  Shared between the
SAP, the Hyperparameter Generator, and the training jobs themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import AppStat
from .snapshot import Snapshot

__all__ = ["AppStatDB"]


class AppStatDB:
    """In-memory store for stats and snapshots.

    The paper's implementation is a networked store; in this repo both
    runtimes share a process, so a synchronised in-memory store plays
    the same architectural role (the live runtime guards it with a
    lock; the DES is single-threaded).
    """

    def __init__(self) -> None:
        self._stats: Dict[str, List[AppStat]] = {}
        self._snapshots: Dict[str, Snapshot] = {}
        self._snapshot_log: List[Snapshot] = []

    # ----------------------------------------------------------- app stats

    def record_stat(self, stat: AppStat) -> None:
        """Append one application statistic."""
        self._stats.setdefault(stat.job_id, []).append(stat)

    def stats_for(self, job_id: str) -> List[AppStat]:
        """All stats reported by ``job_id``, in arrival order."""
        return list(self._stats.get(job_id, []))

    def metric_history(self, job_id: str) -> List[float]:
        """Raw metric series for ``job_id``."""
        return [stat.metric for stat in self._stats.get(job_id, [])]

    def job_ids(self) -> List[str]:
        return list(self._stats)

    # ----------------------------------------------------------- snapshots

    def save_snapshot(self, snapshot: Snapshot) -> None:
        """Store the latest snapshot for a job (and log it for the
        overhead studies of §6.2.3 / Fig. 10)."""
        self._snapshots[snapshot.job_id] = snapshot
        self._snapshot_log.append(snapshot)

    def load_snapshot(self, job_id: str) -> Optional[Snapshot]:
        """Most recent snapshot for ``job_id``, or None."""
        return self._snapshots.get(job_id)

    def drop_snapshot(self, job_id: str) -> None:
        self._snapshots.pop(job_id, None)

    @property
    def snapshot_log(self) -> List[Snapshot]:
        """Every snapshot ever taken (latency/size analysis)."""
        return list(self._snapshot_log)
