"""In-process message transport (the GRPC stand-in).

The paper wires scheduler, Node Agents, and applications together with
GRPC (§5).  Both of this repo's runtimes live in one process, so the
transport is a thread-safe topic bus with the same message discipline:
typed envelopes, per-subscriber FIFO queues, and explicit addresses.
The live threaded runtime communicates exclusively through it; the
discrete-event simulator calls components directly (its event queue
already serialises everything).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["Message", "MessageBus", "Mailbox"]


@dataclass(frozen=True)
class Message:
    """A typed envelope on the bus.

    Attributes:
        topic: routing key, e.g. ``"scheduler"`` or ``"machine-03"``.
        kind: message type, e.g. ``"app_stat"``, ``"start_job"``.
        payload: arbitrary message body.
        sender: originating component name.
        trace: optional trace context (``trace_id``/``span_id`` wire
            dict from :func:`repro.observability.tracing.current_trace`)
            so spans opened by the receiver join the sender's trace.
    """

    topic: str
    kind: str
    payload: Any
    sender: str
    trace: Optional[Dict[str, Any]] = None


class Mailbox:
    """A subscriber's FIFO queue of messages."""

    def __init__(self, topic: str) -> None:
        self.topic = topic
        self._queue: "queue.Queue[Message]" = queue.Queue()

    def put(self, message: Message) -> None:
        self._queue.put(message)

    def get(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Pop the next message, or None on timeout."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self) -> List[Message]:
        """Pop every currently queued message without blocking."""
        messages = []
        while True:
            try:
                messages.append(self._queue.get_nowait())
            except queue.Empty:
                return messages

    @property
    def pending(self) -> int:
        return self._queue.qsize()


class MessageBus:
    """Thread-safe topic-addressed delivery between components."""

    def __init__(self) -> None:
        self._mailboxes: Dict[str, Mailbox] = {}
        self._lock = threading.Lock()
        self._delivered = 0

    def subscribe(self, topic: str) -> Mailbox:
        """Create (or fetch) the mailbox for ``topic``."""
        with self._lock:
            if topic not in self._mailboxes:
                self._mailboxes[topic] = Mailbox(topic)
            return self._mailboxes[topic]

    def declare_topic(self, topic: str) -> Mailbox:
        """Pre-register ``topic`` before its consumer starts.

        ``send`` is strict (no mailbox → ``KeyError``), which makes
        component start order load-bearing: a producer that fires
        before its consumer subscribes crashes the run.  Declaring
        every topic up front removes the race — messages queue in the
        mailbox until the consumer comes up and calls ``subscribe``
        (which returns the same mailbox).
        """
        return self.subscribe(topic)

    def send(
        self,
        topic: str,
        kind: str,
        payload: Any,
        sender: str,
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Deliver a message to ``topic``'s mailbox.

        Raises:
            KeyError: if ``topic`` was never declared/subscribed —
                silent message loss hides wiring bugs, so delivery is
                strict.  Declare topics with :meth:`declare_topic`
                before starting any producer component.
        """
        with self._lock:
            mailbox = self._mailboxes.get(topic)
            if mailbox is None:
                raise KeyError(
                    f"no subscriber for topic {topic!r} (declare_topic it "
                    "before starting producers)"
                )
            self._delivered += 1
        mailbox.put(
            Message(
                topic=topic, kind=kind, payload=payload, sender=sender,
                trace=trace,
            )
        )

    @property
    def topics(self) -> List[str]:
        """Every declared topic (for depth gauges and debugging)."""
        with self._lock:
            return list(self._mailboxes)

    def pending_by_topic(self) -> Dict[str, int]:
        """Current queue depth of every mailbox."""
        with self._lock:
            return {
                topic: mailbox.pending
                for topic, mailbox in self._mailboxes.items()
            }

    def export_metrics(self, metrics) -> None:
        """Refresh bus gauges on a metrics registry.

        Surfaces ``Mailbox.pending`` and ``messages_delivered`` (both
        computed but otherwise invisible) as
        ``bus_mailbox_pending{topic=...}`` and
        ``bus_messages_delivered``.  Callers refresh periodically (the
        runtimes do it from their monitor loops).
        """
        delivered = metrics.gauge(
            "bus_messages_delivered",
            help="Messages delivered through the bus since start",
        )
        delivered.set(self.messages_delivered)
        pending = metrics.gauge(
            "bus_mailbox_pending", help="Queued messages per topic mailbox"
        )
        for topic, depth in self.pending_by_topic().items():
            pending.set(depth, topic=topic)

    @property
    def messages_delivered(self) -> int:
        return self._delivered
