"""Resource Manager (RM): tracks allocated and idle machines (§4.2).

API matches the paper::

    reserve_idle_machine() -> machine_id | None
    release_machine(machine_id)
"""

from __future__ import annotations

from typing import List, Optional, Set

__all__ = ["ResourceManager"]


class ResourceManager:
    """Slot accounting over a fixed set of machines.

    Machines are identified by string ids (``"machine-00"`` …).  In a
    cloud deployment this component would reserve instances; here the
    pool is fixed per experiment, which is how the paper's evaluation
    runs too (4 GPU machines, 15 CPU instances).
    """

    def __init__(self, num_machines: int) -> None:
        if num_machines < 1:
            raise ValueError("need at least one machine")
        self._all: List[str] = [f"machine-{i:02d}" for i in range(num_machines)]
        self._idle: List[str] = list(self._all)
        self._busy: Set[str] = set()
        self._failed: Set[str] = set()

    @property
    def machine_ids(self) -> List[str]:
        return list(self._all)

    @property
    def num_machines(self) -> int:
        return len(self._all)

    @property
    def num_idle(self) -> int:
        return len(self._idle)

    @property
    def num_busy(self) -> int:
        return len(self._busy)

    def reserve_idle_machine(self) -> Optional[str]:
        """Reserve and return an idle machine id, or None if all busy."""
        if not self._idle:
            return None
        machine_id = self._idle.pop(0)
        self._busy.add(machine_id)
        return machine_id

    def release_machine(self, machine_id: str) -> None:
        """Return a reserved machine to the idle pool."""
        if machine_id not in self._busy:
            raise ValueError(f"{machine_id!r} is not reserved")
        self._busy.remove(machine_id)
        self._idle.append(machine_id)

    def is_busy(self, machine_id: str) -> bool:
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        return machine_id in self._busy

    # -------------------------------------------------------- failures

    @property
    def num_failed(self) -> int:
        return len(self._failed)

    def is_failed(self, machine_id: str) -> bool:
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        return machine_id in self._failed

    def fail_machine(self, machine_id: str) -> None:
        """Take a machine out of service (cloud preemption, crash).

        Idle or busy machines can fail; failed machines are neither
        reservable nor releasable until :meth:`recover_machine`.
        """
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        if machine_id in self._failed:
            raise ValueError(f"{machine_id!r} has already failed")
        if machine_id in self._busy:
            self._busy.remove(machine_id)
        else:
            self._idle.remove(machine_id)
        self._failed.add(machine_id)

    def recover_machine(self, machine_id: str) -> None:
        """Return a failed machine to the idle pool."""
        if machine_id not in self._failed:
            raise ValueError(f"{machine_id!r} is not failed")
        self._failed.remove(machine_id)
        self._idle.append(machine_id)
