"""Resource Manager (RM): tracks allocated and idle machines (§4.2).

API matches the paper::

    reserve_idle_machine() -> machine_id | None
    release_machine(machine_id)
"""

from __future__ import annotations

from typing import List, Optional, Set

__all__ = ["ResourceManager"]


class ResourceManager:
    """Slot accounting over a fixed set of machines.

    Machines are identified by string ids (``"machine-00"`` …).  In a
    cloud deployment this component would reserve instances; here the
    pool is fixed per experiment, which is how the paper's evaluation
    runs too (4 GPU machines, 15 CPU instances).
    """

    def __init__(self, num_machines: int) -> None:
        if num_machines < 1:
            raise ValueError("need at least one machine")
        self._all: List[str] = [f"machine-{i:02d}" for i in range(num_machines)]
        self._idle: List[str] = list(self._all)
        self._busy: Set[str] = set()
        self._failed: Set[str] = set()
        self._drained: Set[str] = set()
        self._target_capacity: int = num_machines
        #: Busy machines that must drain (not idle) on release —
        #: targeted retirements (spot revocations, specific drains).
        self._retiring: Set[str] = set()
        #: Drained machines a capacity grow must NOT resurrect (the
        #: instance is going away for good, e.g. a revoked spot node).
        self._quarantined: Set[str] = set()

    @property
    def machine_ids(self) -> List[str]:
        return list(self._all)

    @property
    def num_machines(self) -> int:
        return len(self._all)

    @property
    def num_idle(self) -> int:
        return len(self._idle)

    @property
    def num_busy(self) -> int:
        return len(self._busy)

    def reserve_idle_machine(self) -> Optional[str]:
        """Reserve and return an idle machine id, or None if all busy."""
        if not self._idle:
            return None
        machine_id = self._idle.pop(0)
        self._busy.add(machine_id)
        return machine_id

    def release_machine(self, machine_id: str) -> None:
        """Return a reserved machine to the idle pool — or park it in
        the drained set when the pool is over its target capacity (a
        broker reclaimed the slot)."""
        if machine_id not in self._busy:
            raise ValueError(f"{machine_id!r} is not reserved")
        self._busy.remove(machine_id)
        if (
            machine_id in self._retiring
            or self.num_in_service > self._target_capacity
        ):
            self._retiring.discard(machine_id)
            self._drained.add(machine_id)
        else:
            self._idle.append(machine_id)

    # ------------------------------------------------------- elasticity

    @property
    def target_capacity(self) -> int:
        return self._target_capacity

    @property
    def num_in_service(self) -> int:
        """Machines participating in scheduling: not failed, not
        drained.  This — not :attr:`num_machines` — is the slot count
        allocation decisions should divide."""
        return len(self._all) - len(self._failed) - len(self._drained)

    @property
    def num_drained(self) -> int:
        return len(self._drained)

    @property
    def drained_machines(self) -> List[str]:
        return sorted(self._drained)

    def is_drained(self, machine_id: str) -> bool:
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        return machine_id in self._drained

    def is_retiring(self, machine_id: str) -> bool:
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        return machine_id in self._retiring

    def is_quarantined(self, machine_id: str) -> bool:
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        return machine_id in self._quarantined

    def retire_machine(self, machine_id: str, quarantine: bool = False) -> bool:
        """Take one *specific* machine out of service, gracefully.

        Idle machines drain immediately; busy ones are marked retiring
        and drain when released (the scheduler migrates their job off
        first).  With ``quarantine=True`` the drained machine is also
        barred from resurrection by a later capacity grow — the shape
        of a spot revocation, where the instance is going away for
        good.  Returns True when the machine is drained *now*.
        """
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        if machine_id in self._failed:
            raise ValueError(f"{machine_id!r} has failed")
        if quarantine:
            self._quarantined.add(machine_id)
        if machine_id in self._drained:
            return True
        if machine_id in self._busy:
            self._retiring.add(machine_id)
            return False
        self._idle.remove(machine_id)
        self._drained.add(machine_id)
        return True

    def set_target_capacity(self, target: int) -> List[str]:
        """Resize the in-service pool toward ``target`` machines.

        Shrinking drains idle machines immediately (they are returned)
        and leaves busy ones to drain as they release.  Growing
        un-drains parked machines back into the idle pool.  The pool
        never exceeds :attr:`num_machines` — machines are named at
        construction and the broker grants within that bound.
        """
        if target < 0:
            raise ValueError("target must be >= 0")
        self._target_capacity = min(target, len(self._all))
        drained_now: List[str] = []
        # Grow: resurrect drained machines, oldest-named first for
        # deterministic ordering.  Quarantined machines stay parked —
        # they are revoked instances, not spare capacity.
        while self.num_in_service < self._target_capacity:
            candidates = [
                m for m in sorted(self._drained) if m not in self._quarantined
            ]
            if not candidates:
                break
            machine_id = candidates[0]
            self._drained.remove(machine_id)
            self._idle.append(machine_id)
        # Shrink: drain idle machines first; busy ones drain on release.
        while self._idle and self.num_in_service > self._target_capacity:
            machine_id = self._idle.pop()
            self._drained.add(machine_id)
            drained_now.append(machine_id)
        return drained_now

    def is_busy(self, machine_id: str) -> bool:
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        return machine_id in self._busy

    # -------------------------------------------------------- failures

    @property
    def num_failed(self) -> int:
        return len(self._failed)

    def is_failed(self, machine_id: str) -> bool:
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        return machine_id in self._failed

    def fail_machine(self, machine_id: str) -> None:
        """Take a machine out of service (cloud preemption, crash).

        Idle or busy machines can fail; failed machines are neither
        reservable nor releasable until :meth:`recover_machine`.
        """
        if machine_id not in self._all:
            raise ValueError(f"unknown machine {machine_id!r}")
        if machine_id in self._failed:
            raise ValueError(f"{machine_id!r} has already failed")
        if machine_id in self._busy:
            self._busy.remove(machine_id)
        elif machine_id in self._drained:
            self._drained.remove(machine_id)
        else:
            self._idle.remove(machine_id)
        self._retiring.discard(machine_id)
        self._failed.add(machine_id)

    def recover_machine(self, machine_id: str) -> None:
        """Return a failed machine to the idle pool (or the drained set
        when the pool is already at its target capacity)."""
        if machine_id not in self._failed:
            raise ValueError(f"{machine_id!r} is not failed")
        self._failed.remove(machine_id)
        self._quarantined.discard(machine_id)
        if self.num_in_service > self._target_capacity:
            self._drained.add(machine_id)
        else:
            self._idle.append(machine_id)
