"""Experiment definition and results (Experiment Runner, §4.2 ➀).

An :class:`ExperimentSpec` is what a client hands to HyperDrive: the
workload, the SAP, the hyperparameter generation technique, the number
of machines, and the user inputs ``Tmax`` and ``y_target`` (§3.1.1).
Running one produces an :class:`ExperimentResult` with everything the
paper's figures are computed from.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..framework.events import LifecycleEvent
from ..framework.job import Job
from ..framework.snapshot import Snapshot

__all__ = ["ExperimentSpec", "PoolSnapshot", "ExperimentResult"]


@dataclass
class ExperimentSpec:
    """Parameters of one hyperparameter-exploration experiment.

    Attributes:
        num_machines: slot count ``S``.
        num_configs: how many configurations the HG provides (100 in
            the paper's evaluation).
        tmax: maximum experiment duration in seconds (user input
            ``Tmax``); defaults to 48 simulated hours.
        target: raw-scale target performance; None = the workload
            domain's published target (0.77 accuracy / reward 200).
        seed: experiment seed (training-run noise, snapshot costs).
        prediction_seconds: modelled wall cost of one learning-curve
            prediction on a Node Agent.
        overlap_prediction: §5.2 — True runs prediction concurrently
            with training (charging a small contention slowdown to the
            overlapping epoch); False blocks the machine.
        prediction_contention: fractional slowdown of an epoch that
            overlaps a prediction.
        stop_on_target: end the experiment when a job first reports a
            metric at/above target (the paper's time-to-target metric).
        dynamic_target: §9's dynamic-target mode — instead of stopping,
            raise the target by ``target_increment`` each time it is
            reached and keep searching until ``tmax`` (or the work runs
            out).  Mutually exclusive with ``stop_on_target``.
        target_increment: raw-metric increment for dynamic targets.
        machine_mtbf: mean time between failures per machine in
            seconds (exponential); None disables fault injection.
            Cloud instances get preempted — the suspend/resume
            machinery (§5.1) is what limits the damage.
        machine_recovery_seconds: outage duration before a failed
            machine rejoins the pool.
        checkpoint_interval: take an automatic snapshot every this many
            epochs on running jobs, bounding work lost to failures.
            None disables periodic checkpointing (jobs restart from the
            last suspend snapshot, or from scratch).
        machine_speed_factors: per-machine speed multipliers (2.0 =
            epochs take half as long on that machine).  None = a
            homogeneous cluster, the paper's setting; heterogeneity
            stresses POP's roughly-constant-epoch assumption (§9).
        predict_workers: process-pool size for curve prediction
            (§5.2's overlap, realised as the parallel prediction
            engine).  ``1`` (default) keeps the legacy inline path —
            byte-identical predictions, no pool, no cache — so
            deterministic benches are unaffected unless a spec opts in.
        predict_cache_size: per-process prefix-fit cache capacity in
            entries; only consulted when ``predict_workers > 1``.
    """

    num_machines: int = 4
    num_configs: int = 100
    tmax: float = 48 * 3600.0
    target: Optional[float] = None
    seed: int = 0
    prediction_seconds: float = 30.0
    overlap_prediction: bool = True
    prediction_contention: float = 0.05
    stop_on_target: bool = True
    dynamic_target: bool = False
    target_increment: float = 0.02
    machine_mtbf: Optional[float] = None
    machine_recovery_seconds: float = 300.0
    checkpoint_interval: Optional[int] = None
    machine_speed_factors: Optional[Tuple[float, ...]] = None
    predict_workers: int = 1
    predict_cache_size: int = 2048

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        if self.num_configs < 1:
            raise ValueError("num_configs must be >= 1")
        if self.tmax <= 0:
            raise ValueError("tmax must be positive")
        if self.prediction_seconds < 0:
            raise ValueError("prediction_seconds cannot be negative")
        if not 0.0 <= self.prediction_contention < 1.0:
            raise ValueError("prediction_contention must be in [0, 1)")
        if self.dynamic_target and self.stop_on_target:
            raise ValueError(
                "dynamic_target requires stop_on_target=False (the "
                "experiment keeps going after each target is reached)"
            )
        if self.target_increment <= 0:
            raise ValueError("target_increment must be positive")
        if self.machine_mtbf is not None and self.machine_mtbf <= 0:
            raise ValueError("machine_mtbf must be positive when given")
        if self.machine_recovery_seconds < 0:
            raise ValueError("machine_recovery_seconds cannot be negative")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1 when given")
        if self.predict_workers < 1:
            raise ValueError("predict_workers must be >= 1")
        if self.predict_cache_size < 0:
            raise ValueError("predict_cache_size cannot be negative")
        if self.machine_speed_factors is not None:
            factors = tuple(self.machine_speed_factors)
            if len(factors) != self.num_machines:
                raise ValueError(
                    "machine_speed_factors must have one entry per machine"
                )
            if any(f <= 0 for f in factors):
                raise ValueError("machine speed factors must be positive")
            self.machine_speed_factors = factors


@dataclass(frozen=True)
class TargetAchievement:
    """One dynamic-target milestone (§9's dynamic-target mode)."""

    timestamp: float
    target: float
    job_id: str
    metric: float


@dataclass(frozen=True)
class PoolSnapshot:
    """One timeline sample of the promising/opportunistic split (Fig 4c)."""

    timestamp: float
    promising: int
    running: int
    active: int
    promising_slots: int


@dataclass
class ExperimentResult:
    """Everything measured during one experiment run."""

    policy_name: str
    spec: ExperimentSpec
    reached_target: bool = False
    time_to_target: Optional[float] = None
    finished_at: float = 0.0
    best_metric: Optional[float] = None
    best_job_id: Optional[str] = None
    jobs: List[Job] = field(default_factory=list)
    lifecycle: List[LifecycleEvent] = field(default_factory=list)
    snapshots: List[Snapshot] = field(default_factory=list)
    pool_timeline: List[PoolSnapshot] = field(default_factory=list)
    predictions_made: int = 0
    epochs_trained: int = 0
    target_achievements: List[TargetAchievement] = field(default_factory=list)
    machine_failures: int = 0
    epochs_lost_to_failures: int = 0
    #: Observability digest (metrics export, span summary, audit-event
    #: count, kills by reason) attached by the scheduler when a live
    #: recorder was used; None when instrumentation was off.
    observability: Optional[Dict[str, Any]] = None

    @property
    def job_training_times(self) -> Dict[str, float]:
        """Total training seconds each job consumed (Fig 6)."""
        return {job.job_id: job.total_training_time for job in self.jobs}

    @property
    def terminated_count(self) -> int:
        return sum(1 for job in self.jobs if job.state.value == "terminated")

    def summary(self) -> Dict[str, Any]:
        """A compact dict for bench output rows.

        When the run carried a live observability recorder, the
        summary additionally reports the kill breakdown and audit-
        trail size from the attached digest.
        """
        out = {
            "policy": self.policy_name,
            "reached_target": self.reached_target,
            "time_to_target_min": (
                None
                if self.time_to_target is None
                else round(self.time_to_target / 60.0, 2)
            ),
            "best_metric": self.best_metric,
            "epochs_trained": self.epochs_trained,
            "terminated": self.terminated_count,
            "predictions": self.predictions_made,
        }
        if self.observability is not None:
            out["kills_by_reason"] = self.observability.get(
                "kills_by_reason", {}
            )
            out["audit_events"] = self.observability.get("audit_events", 0)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Full archival record of the experiment (JSON-serialisable).

        A one-way export for later analysis: job histories, lifecycle
        events, pool timeline, suspend log, and headline numbers.
        Snapshot *state* (model weights) is intentionally excluded.
        """
        return {
            "policy": self.policy_name,
            "spec": asdict(self.spec),
            "reached_target": self.reached_target,
            "time_to_target": self.time_to_target,
            "finished_at": self.finished_at,
            "best_metric": self.best_metric,
            "best_job_id": self.best_job_id,
            "epochs_trained": self.epochs_trained,
            "predictions_made": self.predictions_made,
            "machine_failures": self.machine_failures,
            "epochs_lost_to_failures": self.epochs_lost_to_failures,
            "jobs": [
                {
                    "job_id": job.job_id,
                    "config": job.config,
                    "state": job.state.value,
                    "confidence": job.confidence,
                    "metrics": job.metrics,
                    "durations": [stat.duration for stat in job.history],
                }
                for job in self.jobs
            ],
            "lifecycle": [
                {
                    "kind": event.kind.value,
                    "job_id": event.job_id,
                    "timestamp": event.timestamp,
                    "machine_id": event.machine_id,
                    "detail": event.detail,
                }
                for event in self.lifecycle
            ],
            "pool_timeline": [asdict(snapshot) for snapshot in self.pool_timeline],
            "suspends": [
                {
                    "job_id": s.job_id,
                    "epoch": s.epoch,
                    "timestamp": s.timestamp,
                    "latency": s.latency,
                    "size_bytes": s.size_bytes,
                }
                for s in self.snapshots
            ],
            "target_achievements": [
                asdict(milestone) for milestone in self.target_achievements
            ],
            "observability": self.observability,
        }

    def save_json(
        self, path: Union[str, Path], indent: Optional[int] = None
    ) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON (newline-terminated).

        Args:
            path: destination file.
            indent: pretty-print indentation; None writes one line.
        """
        text = json.dumps(self.to_dict(), indent=indent)
        Path(path).write_text(text + "\n")
