"""The HyperDrive scheduler core (§4.2 ➄).

:class:`HyperDriveScheduler` owns all experiment state — Job Manager,
Resource Manager, AppStat DB, Node Agents, the SAP — and encodes the
control flow between them.  It is *backend-agnostic*: a time backend
(the discrete-event simulator in :mod:`repro.sim` or the threaded live
runtime in :mod:`repro.runtime`) drives it by

1. calling :meth:`begin` once,
2. delivering :meth:`process_epoch` whenever a hosted job finishes an
   epoch and acting on the returned :class:`FollowUp`,
3. calling :meth:`machine_released` once any release delay (suspend
   latency) has elapsed,
4. draining :meth:`take_started_machines` after any call that may have
   started jobs, and scheduling those machines' first epochs.

All scheduling *logic* therefore lives here exactly once; backends only
decide when simulated or real time passes.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..curves.engine import ParallelPredictionService, unwrap_service
from ..curves.predictor import (
    CurvePrediction,
    CurvePredictor,
    InstrumentedCurvePredictor,
)
from ..observability import NULL_RECORDER
from .policy_api import PolicyContext, SchedulingPolicy
from ..workloads.base import EpochResult, Workload
from .appstat_db import AppStatDB
from .events import (
    AppStat,
    Decision,
    IterationFinished,
    LifecycleEvent,
    LifecycleKind,
)
from .experiment import (
    ExperimentResult,
    ExperimentSpec,
    PoolSnapshot,
    TargetAchievement,
)
from .job import Job, JobState
from .job_manager import JobManager
from .node_agent import NodeAgent
from .resource_manager import ResourceManager
from .snapshot import cost_model_for_domain

__all__ = ["FollowUpAction", "FollowUp", "HyperDriveScheduler"]

logger = logging.getLogger(__name__)


class FollowUpAction(enum.Enum):
    """What the backend must do after ``process_epoch``."""

    NEXT_EPOCH = "next_epoch"  # schedule another epoch on this machine
    RELEASE_MACHINE = "release_machine"  # call machine_released after delay
    EXPERIMENT_DONE = "experiment_done"  # stop everything


@dataclass(frozen=True)
class FollowUp:
    """Backend instruction produced by :meth:`process_epoch`.

    Attributes:
        action: what to do next on the machine.
        delay: seconds before the action happens (suspend latency, or a
            blocking prediction holding the machine).
        epoch_scale: duration multiplier for the next epoch (contention
            from an overlapped prediction, §5.2).
    """

    action: FollowUpAction
    delay: float = 0.0
    epoch_scale: float = 1.0


class HyperDriveScheduler:
    """Backend-agnostic scheduling brain of HyperDrive."""

    def __init__(
        self,
        workload: Workload,
        policy: SchedulingPolicy,
        spec: ExperimentSpec,
        clock: Callable[[], float],
        predictor: Optional[CurvePredictor] = None,
        recorder=None,
        agent_factory: Optional[Callable[..., NodeAgent]] = None,
    ) -> None:
        self.workload = workload
        self.policy = policy
        self.spec = spec
        self._clock = clock
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.recorder.bind_clock(self._clock)
        # Parallel prediction engine (§5.2): pool + prefix-fit cache.
        # Only built when the spec opts in and the caller has not
        # already wrapped the predictor in a service of its own; the
        # service must wrap the raw (picklable) predictor, so it goes
        # innermost, before any instrumentation decorator.
        self._owned_prediction_service: Optional[ParallelPredictionService] = None
        if (
            predictor is not None
            and spec.predict_workers > 1
            and unwrap_service(predictor) is None
        ):
            service_recorder = self.recorder if self.recorder.enabled else None
            predictor = ParallelPredictionService(
                predictor,
                workers=spec.predict_workers,
                cache_size=spec.predict_cache_size,
                recorder=service_recorder,
            )
            self._owned_prediction_service = predictor
        if self.recorder.enabled and predictor is not None:
            predictor = InstrumentedCurvePredictor(predictor, self.recorder)
        self.job_manager = JobManager(recorder=self.recorder)
        self.resource_manager = ResourceManager(spec.num_machines)
        self.appstat_db = AppStatDB()
        self.target = (
            spec.target if spec.target is not None else workload.domain.target
        )
        cost_model = cost_model_for_domain(workload.domain.kind)
        # The agent factory is the runtime's substitution point: the
        # in-process runtimes use real NodeAgents, the cluster runtime
        # injects socket-backed proxies with the same surface — nothing
        # below this constructor knows the difference.
        if agent_factory is None:
            agent_factory = NodeAgent
        self.agents: Dict[str, NodeAgent] = {
            machine_id: agent_factory(
                machine_id=machine_id,
                workload=workload,
                snapshot_cost_model=cost_model,
                predictor=predictor,
                seed=spec.seed + index,
                recorder=self.recorder,
            )
            for index, machine_id in enumerate(self.resource_manager.machine_ids)
        }
        self.result = ExperimentResult(policy_name=policy.name, spec=spec)
        self._started_machines: List[str] = []
        self._charges: Dict[str, Tuple[float, float]] = {}
        #: Busy machines a resize() shrink is waiting to drain; evicted
        #: (suspend + release) at their next epoch boundary.
        self._evict_pending: Set[str] = set()
        self._done = False
        self._context: Optional[PolicyContext] = None
        metrics = self.recorder.metrics
        self._m_epochs = metrics.counter(
            "scheduler_epochs_total", help="Epochs processed by the scheduler"
        )
        self._m_epoch_duration = metrics.histogram(
            "epoch_duration_seconds",
            help="Experiment-clock duration of completed epochs",
        )
        self._m_kills = metrics.counter(
            "scheduler_kills_total",
            help="Jobs terminated by the SAP, by rationale",
        )
        self._m_suspends = metrics.counter(
            "scheduler_suspends_total", help="Jobs suspended by the SAP"
        )
        self._m_promising_ratio = metrics.gauge(
            "slots_promising_ratio",
            help="Promising-pool slots over total machine slots",
        )
        self._m_jobs_active = metrics.gauge(
            "jobs_active", help="Jobs still in play (pending/running/suspended)"
        )
        self._m_best_metric = metrics.gauge(
            "experiment_best_metric",
            help="Best evaluation metric observed so far",
        )

    # -------------------------------------------------------------- set-up

    def add_job(self, job_id: str, config: Dict) -> Job:
        """Register one configuration as a schedulable job."""
        job = Job(job_id=job_id, config=dict(config))
        self.job_manager.add_job(job)
        self._log(LifecycleKind.CREATED, job_id)
        return job

    def begin(self) -> None:
        """Bind the policy and perform the initial allocation."""
        self._context = PolicyContext(
            job_manager=self.job_manager,
            resource_manager=self.resource_manager,
            appstat_db=self.appstat_db,
            domain=self.workload.domain,
            tmax=self.spec.tmax,
            target=self.target,
            now=self._clock,
            start=self._start_job,
            predict=self._predict,
            stop_experiment=self._stop_experiment,
            recorder=self.recorder,
        )
        self.policy.bind(self._context)
        self.policy.allocate_jobs()

    # ----------------------------------------------------- backend surface

    @property
    def done(self) -> bool:
        return self._done

    def take_started_machines(self) -> List[str]:
        """Machines whose jobs were just started/resumed; backends must
        schedule the first epoch on each.  Clears the buffer."""
        started, self._started_machines = self._started_machines, []
        return started

    def next_epoch_parameters(self, machine_id: str) -> Tuple[float, float]:
        """Pop (blocking_delay, duration_scale) charges for the next
        epoch on ``machine_id`` (prediction cost accounting)."""
        return self._charges.pop(machine_id, (0.0, 1.0))

    def machine_speed(self, machine_id: str) -> float:
        """Speed multiplier of ``machine_id`` (1.0 = homogeneous)."""
        factors = self.spec.machine_speed_factors
        if factors is None:
            return 1.0
        index = self.resource_manager.machine_ids.index(machine_id)
        return factors[index]

    def process_epoch(self, machine_id: str, result: EpochResult) -> FollowUp:
        """Handle one finished epoch; returns the backend instruction."""
        if self._done:
            return FollowUp(FollowUpAction.EXPERIMENT_DONE)
        agent = self.agents[machine_id]
        job_id = agent.job_id
        if job_id is None:
            raise RuntimeError(f"epoch reported by idle machine {machine_id}")
        job = self.job_manager.get(job_id)
        now = self._clock()

        stat = AppStat(
            job_id=job_id,
            epoch=result.epoch,
            metric=result.metric,
            duration=result.duration,
            timestamp=now,
            machine_id=machine_id,
            extras=dict(result.extras),
        )
        job.record(stat)
        self.appstat_db.record_stat(stat)
        self.result.epochs_trained += 1
        self._m_epochs.inc()
        self._m_epoch_duration.observe(result.duration)
        if self.result.best_metric is None or result.metric > self.result.best_metric:
            self.result.best_metric = result.metric
            self.result.best_job_id = job_id
            self._m_best_metric.set(float(result.metric))
        self.policy.application_stat(stat)

        if result.metric >= self.target and (
            self.spec.stop_on_target or self.spec.dynamic_target
        ):
            if not self.result.reached_target:
                self.result.reached_target = True
                self.result.time_to_target = now
            if self.spec.stop_on_target:
                self._done = True
                self._log(LifecycleKind.COMPLETED, job_id, machine_id,
                          {"reason": "target"})
                return FollowUp(FollowUpAction.EXPERIMENT_DONE)
            if self.spec.dynamic_target:
                # §9 dynamic-target mode: record the milestone and raise
                # the bar; the search continues toward the new target.
                self.result.target_achievements.append(
                    TargetAchievement(
                        timestamp=now,
                        target=self.target,
                        job_id=job_id,
                        metric=result.metric,
                    )
                )
                while result.metric >= self.target:
                    self.target += self.spec.target_increment
                if self._context is not None:
                    self._context.target = self.target

        run = agent.run
        job_finished = run is not None and run.finished
        event = IterationFinished(
            job_id=job_id,
            epoch=result.epoch,
            metric=result.metric,
            timestamp=now,
            machine_id=machine_id,
            job_finished=job_finished,
        )

        if job_finished:
            self._evict_pending.discard(machine_id)
            self.job_manager.complete_job(job_id)
            agent.release()
            self._log(LifecycleKind.COMPLETED, job_id, machine_id)
            self._record_pool_snapshot(now)
            return FollowUp(FollowUpAction.RELEASE_MACHINE)

        if machine_id in self._evict_pending:
            # A resize() shrink claimed this machine: suspend the job
            # at this boundary (lossless — snapshot + idle queue) and
            # surrender the slot without consulting the policy.
            self._evict_pending.discard(machine_id)
            snapshot = replace(agent.capture_snapshot(), timestamp=now)
            self.appstat_db.save_snapshot(snapshot)
            self.result.snapshots.append(snapshot)
            self.job_manager.suspend_job(job_id)
            agent.release()
            self._charges.pop(machine_id, None)
            self._m_suspends.inc()
            self._log(
                LifecycleKind.SUSPENDED, job_id, machine_id,
                {"latency": snapshot.latency, "reason": "drain"},
            )
            self._record_pool_snapshot(now)
            return FollowUp(
                FollowUpAction.RELEASE_MACHINE, delay=snapshot.latency
            )

        with self.recorder.tracer.span(
            "scheduler.process_epoch",
            job_id=job_id,
            machine_id=machine_id,
            epoch=result.epoch,
        ):
            decision = self.policy.on_iteration_finish(event)
        self._record_pool_snapshot(now)
        rationale = getattr(self.policy, "last_decision_rationale", None)
        if self.recorder.enabled:
            self._audit_decision(decision, job, event, rationale)

        if self._done:
            # The SAP invoked stop_experiment (a user-defined global
            # termination criterion fired, §9 Ongoing Work).
            return FollowUp(FollowUpAction.EXPERIMENT_DONE)

        if decision is Decision.CONTINUE:
            blocking, scale = self.next_epoch_parameters(machine_id)
            if (
                self.spec.checkpoint_interval is not None
                and result.epoch % self.spec.checkpoint_interval == 0
            ):
                # Periodic checkpoint: bounds the work a machine
                # failure can destroy; its latency briefly holds the
                # machine, like any suspend capture.
                checkpoint = replace(agent.capture_snapshot(), timestamp=now)
                self.appstat_db.save_snapshot(checkpoint)
                self.result.snapshots.append(checkpoint)
                blocking += checkpoint.latency
            return FollowUp(
                FollowUpAction.NEXT_EPOCH, delay=blocking, epoch_scale=scale
            )
        if decision is Decision.SUSPEND:
            snapshot = replace(agent.capture_snapshot(), timestamp=now)
            self.appstat_db.save_snapshot(snapshot)
            self.result.snapshots.append(snapshot)
            self.job_manager.suspend_job(job_id)
            agent.release()
            self._charges.pop(machine_id, None)
            self._m_suspends.inc()
            self._log(
                LifecycleKind.SUSPENDED,
                job_id,
                machine_id,
                {"latency": snapshot.latency, "size": snapshot.size_bytes},
            )
            return FollowUp(
                FollowUpAction.RELEASE_MACHINE, delay=snapshot.latency
            )
        # TERMINATE
        self.job_manager.terminate_job(job_id)
        agent.release()
        self.appstat_db.drop_snapshot(job_id)
        self._charges.pop(machine_id, None)
        reason = (rationale or {}).get("reason", "policy")
        self._m_kills.inc(reason=reason)
        self._log(
            LifecycleKind.TERMINATED,
            job_id,
            machine_id,
            dict(rationale) if rationale else None,
        )
        return FollowUp(FollowUpAction.RELEASE_MACHINE)

    def machine_released(self, machine_id: str) -> None:
        """Backend signal: ``machine_id`` is idle again (any suspend
        latency elapsed).  Triggers a fresh allocation round."""
        self.resource_manager.release_machine(machine_id)
        if self._done:
            return
        self.policy.allocate_jobs()

    def machine_failed(self, machine_id: str) -> None:
        """Backend signal: ``machine_id`` crashed / was preempted.

        The hosted job (if any) loses all work since its most recent
        snapshot — periodic checkpoints (``checkpoint_interval``) bound
        that loss — and re-enters the idle queue to be resumed on
        another machine, the recovery path §5.1's snapshots enable.
        """
        self._evict_pending.discard(machine_id)
        agent = self.agents[machine_id]
        if agent.busy:
            job_id = agent.job_id
            assert job_id is not None
            job = self.job_manager.get(job_id)
            snapshot = self.appstat_db.load_snapshot(job_id)
            resume_epoch = snapshot.epoch if snapshot is not None else 0
            lost = job.truncate_history(resume_epoch)
            self.result.epochs_lost_to_failures += lost
            self.job_manager.suspend_job(job_id)
            agent.release()
            self._charges.pop(machine_id, None)
            self._log(
                LifecycleKind.MACHINE_FAILED,
                job_id,
                machine_id,
                {"epochs_lost": lost, "resume_epoch": resume_epoch},
            )
        else:
            self._log(LifecycleKind.MACHINE_FAILED, "-", machine_id)
        self.resource_manager.fail_machine(machine_id)
        self.result.machine_failures += 1

    def machine_recovered(self, machine_id: str) -> None:
        """Backend signal: a failed machine rejoined the pool."""
        self.resource_manager.recover_machine(machine_id)
        self._log(LifecycleKind.MACHINE_RECOVERED, "-", machine_id)
        if self._done:
            return
        self.policy.allocate_jobs()

    def resize(self, target: int) -> int:
        """Elastically resize the in-service machine pool to ``target``
        slots (a broker granted or reclaimed leases).

        Shrinking drains idle machines immediately; busy machines over
        the target are *marked for eviction* and drain at their next
        epoch boundary — their job is snapshotted and suspended through
        the normal SAP suspend path, so the work resumes losslessly on
        a surviving machine.  Growing returns drained machines to
        service and triggers an allocation round.  Returns the
        in-service count (shrinks show up fully once busy machines hit
        their next boundary).
        """
        rm = self.resource_manager
        target = max(0, min(target, rm.num_machines))
        before = rm.num_in_service
        drained_before = {m for m in rm.machine_ids if rm.is_drained(m)}
        for machine_id in rm.set_target_capacity(target):
            self._log(LifecycleKind.MACHINE_DRAINED, "-", machine_id)
        for machine_id in sorted(drained_before):
            if not rm.is_drained(machine_id):
                self._evict_pending.discard(machine_id)
                self._log(LifecycleKind.MACHINE_RETURNED, "-", machine_id)
        # Mark the newest busy machines for boundary eviction until the
        # (eventual) in-service count meets the target.
        busy = sorted(
            (m for m in rm.machine_ids
             if rm.is_busy(m) and not rm.is_drained(m)),
            reverse=True,
        )
        pending_after = rm.num_in_service - len(
            self._evict_pending & set(busy)
        )
        for machine_id in busy:
            if pending_after <= target:
                break
            if machine_id not in self._evict_pending:
                self._evict_pending.add(machine_id)
                pending_after -= 1
        # Over-marked from an earlier, deeper shrink? Unmark survivors
        # — but never a retiring machine (a targeted eviction, e.g. a
        # spot revocation, must complete regardless of pool size).
        unmarkable = sorted(
            m for m in self._evict_pending if not rm.is_retiring(m)
        )
        while pending_after < target and unmarkable:
            self._evict_pending.discard(unmarkable.pop(0))
            pending_after += 1
        # Pre-begin resize (a broker setup hook trimming the pool to
        # its granted leases) must not allocate: the policy is unbound
        # until begin() runs its initial allocation.
        if (
            self._context is not None
            and not self._done
            and rm.num_in_service != before
        ):
            self.policy.allocate_jobs()
        return rm.num_in_service

    def evict_machine(self, machine_id: str, quarantine: bool = False) -> bool:
        """Gracefully push one *specific* machine out of service.

        The spot-revocation path: an idle machine drains immediately;
        a busy one is marked for boundary eviction, so its job is
        snapshotted, suspended, and resumed on a survivor before the
        doomed instance disappears.  ``quarantine=True`` additionally
        bars the machine from resurrection by later capacity grows.
        Returns True when the machine is already drained.
        """
        rm = self.resource_manager
        already_drained = rm.is_drained(machine_id)
        drained_now = rm.retire_machine(machine_id, quarantine=quarantine)
        if drained_now:
            self._evict_pending.discard(machine_id)
            if not already_drained:
                self._log(LifecycleKind.MACHINE_DRAINED, "-", machine_id)
        else:
            self._evict_pending.add(machine_id)
        return drained_now

    def checkpoint_state(self) -> Dict[str, object]:
        """A JSON-serialisable progress checkpoint of the experiment.

        This is *observable* state — clock, epoch counts, per-job
        progress, headline metrics — persisted periodically by the
        experiment service for status reporting and resume bookkeeping.
        It is not a full state capture: recovery reconstructs the run
        by deterministic replay of the journaled inputs (see
        ``docs/service.md``), with this checkpoint marking how far the
        interrupted run had progressed.
        """
        best = self.result.best_metric
        return {
            "clock": float(self._clock()),
            "epochs_trained": int(self.result.epochs_trained),
            "best_metric": None if best is None else float(best),
            "best_job_id": self.result.best_job_id,
            "reached_target": bool(self.result.reached_target),
            "target": float(self.target),
            "machine_failures": int(self.result.machine_failures),
            "suspend_snapshots": len(self.result.snapshots),
            "jobs": {
                job.job_id: {
                    "state": job.state.value,
                    "epochs": int(job.epochs_completed),
                    "best_metric": (
                        None
                        if job.best_metric is None
                        else float(job.best_metric)
                    ),
                }
                for job in self.job_manager.jobs()
            },
        }

    def finalize(self) -> ExperimentResult:
        """Close out the experiment and return the result object."""
        self.result.finished_at = self._clock()
        self.result.jobs = self.job_manager.jobs()
        self.result.predictions_made = sum(
            agent.predictions_made for agent in self.agents.values()
        )
        if self.recorder.enabled:
            self.result.observability = self.recorder.snapshot()
        self.close()
        return self.result

    def close(self) -> None:
        """Release scheduler-owned resources (the prediction pool).

        Idempotent; called by :meth:`finalize` and by backends' cleanup
        paths so worker processes never outlive the experiment.
        """
        if self._owned_prediction_service is not None:
            self._owned_prediction_service.close()
            self._owned_prediction_service = None

    # ----------------------------------------------------- context closures

    def _start_job(self, job_id: str, machine_id: str) -> None:
        """Start or resume ``job_id`` on ``machine_id`` (SAP closure)."""
        job = self.job_manager.get(job_id)
        if job.state is JobState.PENDING:
            self.job_manager.start_job(job_id, machine_id)
            snapshot = None
            kind = LifecycleKind.STARTED
        elif job.state is JobState.SUSPENDED:
            self.job_manager.resume_job(job_id, machine_id)
            # A suspended job normally resumes from its snapshot; after
            # a machine failure with no checkpoint it restarts from
            # scratch (snapshot None -> fresh run), its history having
            # been truncated accordingly.
            snapshot = self.appstat_db.load_snapshot(job_id)
            kind = LifecycleKind.RESUMED
        else:
            raise ValueError(
                f"cannot start job {job_id} in state {job.state.value}"
            )
        agent = self.agents[machine_id]
        agent.assign(
            job_id, job.config, seed=self.spec.seed, snapshot=snapshot
        )
        self._started_machines.append(machine_id)
        self._log(kind, job_id, machine_id)

    def _stop_experiment(self, reason: str = "policy") -> None:
        """SAP-initiated global termination (§9 Ongoing Work)."""
        self._done = True
        if self.result.time_to_target is None:
            self.result.time_to_target = self._clock()
        self.result.reached_target = True

    def _predict(self, job_id: str, n_future: int) -> CurvePrediction:
        """Run curve prediction on the agent hosting ``job_id`` and
        charge its wall cost to the machine (§5.2)."""
        hosting = None
        for agent in self.agents.values():
            if agent.job_id == job_id:
                hosting = agent
                break
        if hosting is None:
            raise RuntimeError(
                f"job {job_id} is not hosted on any machine; prediction "
                "runs on Node Agents"
            )
        prediction = hosting.predict(n_future)
        blocking, scale = self._charges.get(hosting.machine_id, (0.0, 1.0))
        if self.spec.overlap_prediction:
            scale *= 1.0 + self.spec.prediction_contention
        else:
            blocking += self.spec.prediction_seconds
        self._charges[hosting.machine_id] = (blocking, scale)
        return prediction

    # ------------------------------------------------------------ internal

    def _audit_decision(
        self,
        decision: Decision,
        job: Job,
        event: IterationFinished,
        rationale: Optional[Dict],
    ) -> None:
        """One audit record per SAP decision, carrying the inputs that
        produced it (confidence ``p``, ERT, the dynamic threshold, the
        promising-slot count) plus the policy's own rationale."""
        data = {
            "decision": decision.value,
            "epoch": event.epoch,
            "metric": event.metric,
            "confidence": job.confidence,
            "expected_remaining_time": job.expected_remaining_time,
            "threshold": getattr(self.policy, "threshold", None),
            "promising_slots": getattr(self.policy, "promising_slots", None),
            "promising": job.promising,
        }
        if rationale:
            data.update(rationale)  # the policy's own account wins
        self.recorder.audit.record(
            "sap_decision",
            job_id=job.job_id,
            machine_id=event.machine_id,
            **data,
        )

    def _record_pool_snapshot(self, now: float) -> None:
        active = self.job_manager.active_jobs()
        promising = sum(1 for job in active if job.promising)
        promising_slots = getattr(self.policy, "promising_slots", 0)
        num_machines = self.resource_manager.num_machines
        self._m_promising_ratio.set(
            promising_slots / num_machines if num_machines else 0.0
        )
        self._m_jobs_active.set(len(active))
        if self.recorder.enabled:
            self.recorder.audit.record(
                "pool_snapshot",
                promising=promising,
                running=len(self.job_manager.running_jobs()),
                active=len(active),
                promising_slots=promising_slots,
            )
        self.result.pool_timeline.append(
            PoolSnapshot(
                timestamp=now,
                promising=promising,
                running=len(self.job_manager.running_jobs()),
                active=len(active),
                promising_slots=promising_slots,
            )
        )

    def _log(
        self,
        kind: LifecycleKind,
        job_id: str,
        machine_id: Optional[str] = None,
        detail: Optional[Dict] = None,
    ) -> None:
        timestamp = self._clock()
        if logger.isEnabledFor(logging.INFO) and kind is not LifecycleKind.CREATED:
            logger.info(
                "[t=%8.0fs] %-16s job=%s machine=%s %s",
                timestamp,
                kind.value,
                job_id,
                machine_id or "-",
                detail or "",
            )
        if self.recorder.enabled and kind is not LifecycleKind.CREATED:
            self.recorder.audit.record(
                "lifecycle",
                job_id=job_id,
                machine_id=machine_id,
                event=kind.value,
                **(detail or {}),
            )
        self.result.lifecycle.append(
            LifecycleEvent(
                kind=kind,
                job_id=job_id,
                timestamp=timestamp,
                machine_id=machine_id,
                detail=detail or {},
            )
        )
