"""Event types flowing between Node Agents, the scheduler, and SAPs.

These mirror the up-call payloads of §4.2: application statistics
(``ApplicationStat``) and iteration-finish notifications
(``OnIterationFinish``), plus lifecycle records used by the framework
internally and by analysis code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["AppStat", "IterationFinished", "Decision", "LifecycleKind", "LifecycleEvent"]


@dataclass(frozen=True)
class AppStat:
    """One application statistic reported by a training job.

    Attributes:
        job_id: the reporting job.
        epoch: 1-based epoch the stat describes.
        metric: raw-scale model performance after that epoch.
        duration: seconds the epoch took.
        timestamp: experiment-clock time the stat was received.
        machine_id: machine the job was running on.
        extras: additional model-owner metrics (§9 Ongoing Work), e.g.
            sparsity next to the primary perplexity-derived metric.
    """

    job_id: str
    epoch: int
    metric: float
    duration: float
    timestamp: float
    machine_id: str
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class IterationFinished:
    """Payload of the ``OnIterationFinish`` up-call."""

    job_id: str
    epoch: int
    metric: float
    timestamp: float
    machine_id: str
    job_finished: bool


class Decision(enum.Enum):
    """What a SAP wants done with a job after an iteration."""

    CONTINUE = "continue"
    SUSPEND = "suspend"
    TERMINATE = "terminate"


class LifecycleKind(enum.Enum):
    """Job lifecycle transitions recorded for analysis."""

    CREATED = "created"
    STARTED = "started"
    SUSPENDED = "suspended"
    RESUMED = "resumed"
    TERMINATED = "terminated"
    COMPLETED = "completed"
    MACHINE_FAILED = "machine_failed"
    MACHINE_RECOVERED = "machine_recovered"
    MACHINE_DRAINED = "machine_drained"
    MACHINE_RETURNED = "machine_returned"


@dataclass(frozen=True)
class LifecycleEvent:
    """A timestamped lifecycle transition."""

    kind: LifecycleKind
    job_id: str
    timestamp: float
    machine_id: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)
