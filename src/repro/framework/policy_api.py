"""Scheduling Algorithm Policy (SAP) interface (§4.2 ➃).

A SAP is written imperatively against three up-calls:

* :meth:`SchedulingPolicy.allocate_jobs` — an idle resource was
  detected; the policy may start/resume idle jobs on idle machines.
* :meth:`SchedulingPolicy.application_stat` — a training job reported
  a statistic.
* :meth:`SchedulingPolicy.on_iteration_finish` — an iteration (epoch)
  completed; the policy decides CONTINUE / SUSPEND / TERMINATE.

The :class:`PolicyContext` gives the SAP the same handles the paper's
framework exposes: the Job and Resource Managers, the AppStat DB, the
domain spec, experiment parameters (``Tmax``, target), a clock, and a
``predict`` entry point that routes to the Node Agent hosting the job
(§5.2's distributed curve prediction).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..curves.predictor import CurvePrediction
from ..observability import NULL_RECORDER
from .appstat_db import AppStatDB
from .events import AppStat, Decision, IterationFinished
from .job_manager import JobManager
from .resource_manager import ResourceManager
from ..workloads.base import DomainSpec

__all__ = ["PolicyContext", "SchedulingPolicy", "DefaultAllocationMixin"]


@dataclass
class PolicyContext:
    """Everything a SAP may touch.

    Attributes:
        job_manager: lifecycle + idle queue.
        resource_manager: machine reservation.
        appstat_db: shared statistics store.
        domain: model-owner domain knowledge.
        tmax: maximum experiment duration in seconds (user input).
        target: raw-scale target performance (user input).
        now: experiment clock.
        start: scheduler closure that starts or resumes ``job_id`` on
            ``machine_id`` (handles run creation/snapshot restore).
        predict: scheduler closure running curve prediction for a job;
            the time cost is charged to the hosting machine according
            to the overlap-vs-blocking configuration (§5.2).
        stop_experiment: scheduler closure ending the whole experiment
            — the hook behind user-defined *global* termination
            criteria (§9 Ongoing Work).  None when the runtime does
            not support it (e.g. hand-built test harnesses).
        recorder: observability facade (metrics / spans / audit trail);
            the shared null recorder when instrumentation is off, so
            SAPs may emit unconditionally.
    """

    job_manager: JobManager
    resource_manager: ResourceManager
    appstat_db: AppStatDB
    domain: DomainSpec
    tmax: float
    target: float
    now: Callable[[], float]
    start: Callable[[str, str], None]
    predict: Callable[[str, int], CurvePrediction]
    stop_experiment: Optional[Callable[[str], None]] = None
    recorder: Any = NULL_RECORDER

    @property
    def normalized_target(self) -> float:
        return self.domain.normalize(self.target)


class SchedulingPolicy(abc.ABC):
    """Base class for SAPs."""

    #: Human-readable policy name (used in results and benches).
    name: str = "unnamed"

    def __init__(self) -> None:
        self._ctx: Optional[PolicyContext] = None

    def bind(self, context: PolicyContext) -> None:
        """Attach the experiment context before the first up-call."""
        self._ctx = context

    @property
    def ctx(self) -> PolicyContext:
        if self._ctx is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to an experiment")
        return self._ctx

    # ------------------------------------------------------------ up-calls

    @abc.abstractmethod
    def allocate_jobs(self) -> None:
        """Idle resource detected: start/resume idle jobs as desired."""

    def application_stat(self, stat: AppStat) -> None:
        """A job reported a statistic.  Default: ignore."""

    @abc.abstractmethod
    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        """An epoch finished: keep, suspend, or kill the job."""


class DefaultAllocationMixin:
    """Greedy allocation shared by most SAPs.

    Starts as many idle jobs as there are idle machines, in idle-queue
    order (priority labels first, then FIFO) — the Default SAP's
    behaviour from §4.2.
    """

    def allocate_jobs(self) -> None:  # type: ignore[override]
        ctx = self.ctx  # type: ignore[attr-defined]
        while True:
            job = ctx.job_manager.get_idle_job()
            if job is None:
                return
            machine_id = ctx.resource_manager.reserve_idle_machine()
            if machine_id is None:
                return
            ctx.start(job.job_id, machine_id)
