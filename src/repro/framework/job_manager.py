"""Job Manager (JM): job lifecycle and the idle-job queue (§4.2).

API follows the paper::

    get_idle_job() -> job | None
    start_job(job_id, machine_id)
    resume_job(job_id, machine_id)
    suspend_job(job_id)
    terminate_job(job_id)
    label_job(job_id, priority)

Priority labels order the idle queue (higher first); unlabelled jobs
are FIFO behind all labelled ones, exactly the behaviour §4.2
describes for re-queued suspended jobs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..observability import NULL_RECORDER
from .job import Job, JobState

__all__ = ["JobManager"]


class JobManager:
    """Bookkeeping for every job in an experiment.

    The JM owns state transitions and queue ordering; it does not touch
    training runs — Node Agents (or the simulator's machine model) do
    the actual execution and report back through the scheduler.
    """

    def __init__(self, recorder=None) -> None:
        self._jobs: Dict[str, Job] = {}
        self._idle: List[tuple] = []  # (sort_key, job_id) kept sorted lazily
        self._fifo_counter = itertools.count()
        self._enqueue_order: Dict[str, int] = {}
        recorder = recorder if recorder is not None else NULL_RECORDER
        self._m_transitions = recorder.metrics.counter(
            "job_state_transitions_total",
            help="Job lifecycle transitions, by destination state",
        )
        self._m_idle = recorder.metrics.gauge(
            "jobs_idle", help="Depth of the idle-job queue"
        )

    # ------------------------------------------------------------ plumbing

    def add_job(self, job: Job) -> None:
        """Register a new PENDING job and queue it as idle."""
        if job.job_id in self._jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        if job.state is not JobState.PENDING:
            raise ValueError("new jobs must be PENDING")
        self._jobs[job.job_id] = job
        self._enqueue(job.job_id)

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def active_jobs(self) -> List[Job]:
        """Jobs that are still in play (pending, running, or suspended)."""
        return [job for job in self._jobs.values() if job.active]

    def running_jobs(self) -> List[Job]:
        return [j for j in self._jobs.values() if j.state is JobState.RUNNING]

    # ---------------------------------------------------------- idle queue

    def _enqueue(self, job_id: str) -> None:
        self._enqueue_order[job_id] = next(self._fifo_counter)
        self._idle.append(job_id)
        self._m_idle.set(len(self._idle))

    def _dequeue(self, job_id: str) -> None:
        try:
            self._idle.remove(job_id)
        except ValueError:
            raise ValueError(f"job {job_id!r} is not idle") from None
        self._m_idle.set(len(self._idle))

    def _sort_key(self, job_id: str):
        job = self._jobs[job_id]
        # Labelled jobs first (higher priority first), then FIFO.
        has_priority = job.priority is not None
        priority = job.priority if has_priority else 0.0
        return (not has_priority, -priority, self._enqueue_order[job_id])

    def get_idle_job(self) -> Optional[Job]:
        """Highest-priority idle job (PENDING or SUSPENDED), else None.

        The job stays queued until ``start_job``/``resume_job`` claims
        it, so a SAP can inspect the head of the queue without side
        effects.
        """
        if not self._idle:
            return None
        best = min(self._idle, key=self._sort_key)
        return self._jobs[best]

    def idle_jobs(self) -> List[Job]:
        """All idle jobs in queue order."""
        ordered = sorted(self._idle, key=self._sort_key)
        return [self._jobs[job_id] for job_id in ordered]

    @property
    def num_idle(self) -> int:
        return len(self._idle)

    # ----------------------------------------------------------- commands

    def start_job(self, job_id: str, machine_id: str) -> Job:
        """PENDING -> RUNNING on ``machine_id``."""
        job = self.get(job_id)
        if job.state is not JobState.PENDING:
            raise ValueError(
                f"{job_id} cannot be started from state {job.state.value};"
                " use resume_job for suspended jobs"
            )
        self._dequeue(job_id)
        job.transition(JobState.RUNNING)
        job.machine_id = machine_id
        self._m_transitions.inc(to="running")
        return job

    def resume_job(self, job_id: str, machine_id: str) -> Job:
        """SUSPENDED -> RUNNING on ``machine_id`` (possibly a new one)."""
        job = self.get(job_id)
        if job.state is not JobState.SUSPENDED:
            raise ValueError(
                f"{job_id} cannot be resumed from state {job.state.value}"
            )
        self._dequeue(job_id)
        job.transition(JobState.RUNNING)
        job.machine_id = machine_id
        self._m_transitions.inc(to="running")
        return job

    def suspend_job(self, job_id: str) -> Job:
        """RUNNING -> SUSPENDED; job re-enters the idle queue."""
        job = self.get(job_id)
        job.transition(JobState.SUSPENDED)
        job.machine_id = None
        self._enqueue(job_id)
        self._m_transitions.inc(to="suspended")
        return job

    def terminate_job(self, job_id: str) -> Job:
        """Any live state -> TERMINATED."""
        job = self.get(job_id)
        if job_id in self._idle:
            self._dequeue(job_id)
        job.transition(JobState.TERMINATED)
        job.machine_id = None
        self._m_transitions.inc(to="terminated")
        return job

    def complete_job(self, job_id: str) -> Job:
        """RUNNING -> COMPLETED (job exhausted its epoch budget)."""
        job = self.get(job_id)
        job.transition(JobState.COMPLETED)
        job.machine_id = None
        self._m_transitions.inc(to="completed")
        return job

    def label_job(self, job_id: str, priority: float) -> None:
        """Attach a scheduling priority to a job (§4.2 ``label_Job``)."""
        self.get(job_id).priority = float(priority)

    # ------------------------------------------------------------- digest

    def confidence_digest(self) -> Dict[str, object]:
        """POP-state digest of the active jobs, for cross-experiment
        brokering: every active confidence, plus the best job's
        confidence and its expected remaining time.  The broker pools
        the ``confidences`` of all admitted experiments into one global
        promising-set computation and prices reclaim victims by
        ``best_confidence / best_ert``.
        """
        active = self.active_jobs()
        confidences = [
            float(job.confidence) for job in active
            if job.confidence is not None
        ]
        best_confidence = max(confidences, default=0.0)
        best_ert = min(
            (
                float(job.expected_remaining_time) for job in active
                if job.confidence is not None
                and job.expected_remaining_time
            ),
            default=0.0,
        )
        return {
            "confidences": confidences,
            "best_confidence": best_confidence,
            "best_ert_seconds": best_ert,
        }
