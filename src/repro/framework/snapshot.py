"""Suspend/resume snapshots and their cost model.

HyperDrive suspends jobs by capturing training state and shipping it to
the AppStat database so any machine can resume the job (§5.1).  The
paper implements two flavours: framework-native snapshots for Caffe
(cheap, §6.2.3) and whole-process CRIU snapshots for the Keras/Theano
RL model (heavier, Fig. 10).

We snapshot :class:`~repro.workloads.base.TrainingRun` state directly
(the framework-native path, faithfully exercised end-to-end), and model
the *cost* — suspend latency and snapshot size — with distributions
fitted to the paper's reported statistics so overhead studies
reproduce.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

__all__ = [
    "Snapshot",
    "SnapshotCostModel",
    "SNAPSHOT_PICKLE_PROTOCOL",
    "SUPERVISED_COST_MODEL",
    "CRIU_COST_MODEL",
]

#: Pickle protocol used to measure snapshot sizes.  Pinned to the
#: running interpreter's HIGHEST_PROTOCOL and recorded alongside the
#: measurement so sizes are comparable across Python versions (the
#: default protocol changed between 3.7 and 3.8, which silently skewed
#: historical numbers).
SNAPSHOT_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


@dataclass(frozen=True)
class Snapshot:
    """A captured, resumable training state.

    Attributes:
        job_id: the suspended job.
        epoch: epochs completed at capture time.
        state: opaque run state (from ``TrainingRun.snapshot_state``).
        size_bytes: modelled snapshot size.
        latency: modelled suspend latency in seconds.
        timestamp: experiment-clock time of capture (stamped by the
            scheduler; 0.0 for snapshots captured outside one).
    """

    job_id: str
    epoch: int
    state: Dict[str, Any]
    size_bytes: float
    latency: float
    timestamp: float = 0.0

    #: Protocol :attr:`serialized_size_bytes` measures with (recorded
    #: so archived sizes can be compared across interpreter versions).
    pickle_protocol = SNAPSHOT_PICKLE_PROTOCOL

    @property
    def serialized_size_bytes(self) -> int:
        """Actual pickled size of the captured state (ground truth for
        the real-training MLP workload), measured at
        :data:`SNAPSHOT_PICKLE_PROTOCOL`."""
        return len(pickle.dumps(self.state, protocol=self.pickle_protocol))


@dataclass(frozen=True)
class SnapshotCostModel:
    """Lognormal latency/size model for suspend operations.

    Parameterised by median and p95 of each quantity; a lognormal
    matches the long right tail the paper reports (mean 157.69 ms,
    p95 219 ms, max 1.12 s for supervised snapshots).
    """

    latency_median: float
    latency_p95: float
    latency_max: float
    size_median: float
    size_p95: float
    size_max: float

    def __post_init__(self) -> None:
        if not 0 < self.latency_median < self.latency_p95 <= self.latency_max:
            raise ValueError("latency quantiles must be ordered and positive")
        if not 0 < self.size_median < self.size_p95 <= self.size_max:
            raise ValueError("size quantiles must be ordered and positive")

    @staticmethod
    def _lognormal(
        median: float, p95: float, cap: float, rng: np.random.Generator
    ) -> float:
        # For a lognormal, log(p95/median) = 1.645 * sigma.
        sigma = float(np.log(p95 / median) / 1.645)
        value = float(rng.lognormal(mean=np.log(median), sigma=sigma))
        return min(value, cap)

    def sample_latency(self, rng: np.random.Generator) -> float:
        """Draw one suspend latency in seconds."""
        return self._lognormal(
            self.latency_median, self.latency_p95, self.latency_max, rng
        )

    def sample_size(self, rng: np.random.Generator) -> float:
        """Draw one snapshot size in bytes."""
        return self._lognormal(self.size_median, self.size_p95, self.size_max, rng)


#: Supervised-learning snapshots (§6.2.3): mean 157.69 ms / p95 219 ms /
#: max 1.12 s; sizes mean 357.67 KB / p95 685.26 KB / max 686.06 KB.
SUPERVISED_COST_MODEL = SnapshotCostModel(
    latency_median=0.145,
    latency_p95=0.219,
    latency_max=1.12,
    size_median=350e3,
    size_p95=685.26e3,
    size_max=686.06e3,
)

#: CRIU whole-process snapshots for the RL workload (Fig. 10): latency
#: up to 22.36 s, snapshot size up to 43.75 MB.
CRIU_COST_MODEL = SnapshotCostModel(
    latency_median=4.0,
    latency_p95=15.0,
    latency_max=22.36,
    size_median=25e6,
    size_p95=42e6,
    size_max=43.75e6,
)


def cost_model_for_domain(kind: str) -> SnapshotCostModel:
    """Pick the paper's cost model for a domain kind."""
    if kind == "supervised":
        return SUPERVISED_COST_MODEL
    if kind == "reinforcement":
        return CRIU_COST_MODEL
    raise ValueError(f"unknown domain kind {kind!r}")
