"""Node Agent: per-machine execution daemon (§4.2 ➅).

The agent owns the training run assigned to its machine, reports every
epoch's application statistics, captures suspend snapshots, and — per
the distributed-curve-prediction optimisation of §5.2 — keeps the
learning-curve history of its job locally and runs the curve predictor
itself rather than at the central scheduler.  When a job is resumed on
a different machine, its curve history travels with the snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..curves.predictor import CurvePrediction, CurvePredictor
from ..observability import NULL_RECORDER
from ..workloads.base import EpochResult, TrainingRun, Workload
from .snapshot import Snapshot, SnapshotCostModel

__all__ = ["NodeAgent"]


class NodeAgent:
    """Executes one job at a time on one machine.

    Args:
        machine_id: the machine this agent daemonises.
        workload: factory for training runs.
        snapshot_cost_model: latency/size model for suspends.
        predictor: learning-curve predictor run locally on this agent
            (may be shared across agents; predictors are stateless).
        seed: seed for snapshot cost sampling.
        recorder: observability facade; the shared null recorder when
            instrumentation is off.
    """

    def __init__(
        self,
        machine_id: str,
        workload: Workload,
        snapshot_cost_model: SnapshotCostModel,
        predictor: Optional[CurvePredictor] = None,
        seed: int = 0,
        recorder=None,
    ) -> None:
        self.machine_id = machine_id
        self._workload = workload
        self._cost_model = snapshot_cost_model
        self._predictor = predictor
        self._rng = np.random.default_rng(seed)
        self._run: Optional[TrainingRun] = None
        self._job_id: Optional[str] = None
        # Local curve history (normalised), per §5.2's distributed
        # prediction: shipped in/out with snapshots.
        self._curve: List[float] = []
        self.predictions_made = 0
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        metrics = self._recorder.metrics
        self._m_predictions = metrics.counter(
            "agent_predictions_total",
            help="Curve predictions run on Node Agents (§5.2)",
        )
        self._m_snapshot_latency = metrics.histogram(
            "snapshot_latency_seconds",
            help="Modelled suspend/checkpoint capture latency",
        )
        self._m_snapshot_size = metrics.histogram(
            "snapshot_size_bytes", help="Modelled snapshot sizes"
        )

    # ----------------------------------------------------------- lifecycle

    @property
    def busy(self) -> bool:
        return self._job_id is not None

    @property
    def job_id(self) -> Optional[str]:
        return self._job_id

    @property
    def curve_history(self) -> List[float]:
        """Normalised metric history of the hosted job."""
        return list(self._curve)

    def assign(
        self,
        job_id: str,
        config: Dict[str, Any],
        seed: int = 0,
        snapshot: Optional[Snapshot] = None,
    ) -> None:
        """Start a fresh run, or resume from ``snapshot``.

        On resume the run object is rebuilt from the workload and the
        snapshot state restored into it — the same state-transfer path
        a cross-machine resume takes in the real system.
        """
        if self.busy:
            raise RuntimeError(
                f"{self.machine_id} already hosts job {self._job_id!r}"
            )
        run = self._workload.create_run(config, seed=seed)
        if snapshot is not None:
            if snapshot.job_id != job_id:
                raise ValueError(
                    f"snapshot belongs to {snapshot.job_id!r}, not {job_id!r}"
                )
            run.restore_state(snapshot.state)
            self._curve = list(snapshot.state.get("curve_history", []))
        else:
            self._curve = []
        self._run = run
        self._job_id = job_id

    def train_epoch(self) -> EpochResult:
        """Train the hosted job for one epoch and record its stat."""
        if self._run is None:
            raise RuntimeError(f"{self.machine_id} has no job assigned")
        result = self._run.step()
        self._curve.append(self._workload.domain.normalize(result.metric))
        return result

    def capture_snapshot(self) -> Snapshot:
        """Capture resumable state plus modelled latency/size.

        The curve history rides along inside the state so the next
        hosting agent can continue local prediction (§5.2).
        """
        if self._run is None or self._job_id is None:
            raise RuntimeError(f"{self.machine_id} has no job to snapshot")
        with self._recorder.tracer.span(
            "agent.capture_snapshot",
            machine_id=self.machine_id,
            job_id=self._job_id,
        ):
            state = self._run.snapshot_state()
            state["curve_history"] = list(self._curve)
            snapshot = Snapshot(
                job_id=self._job_id,
                epoch=self._run.epochs_completed,
                state=state,
                size_bytes=self._cost_model.sample_size(self._rng),
                latency=self._cost_model.sample_latency(self._rng),
            )
        self._m_snapshot_latency.observe(snapshot.latency)
        self._m_snapshot_size.observe(snapshot.size_bytes)
        return snapshot

    def release(self) -> None:
        """Drop the hosted run (after suspend/terminate/complete)."""
        self._run = None
        self._job_id = None
        self._curve = []

    @property
    def run(self) -> Optional[TrainingRun]:
        return self._run

    # ---------------------------------------------------------- prediction

    def predict(self, n_future: int) -> CurvePrediction:
        """Run the learning-curve predictor on the local history."""
        if self._predictor is None:
            raise RuntimeError("no predictor configured on this agent")
        if len(self._curve) < self._predictor.min_observations():
            raise ValueError(
                f"history too short ({len(self._curve)}) for prediction"
            )
        self.predictions_made += 1
        self._m_predictions.inc()
        # Hand the predictor an immutable snapshot of the history: the
        # parallel engine may ship it to a worker process (or hold it
        # past this call), and the live runtime keeps training — the
        # list must not mutate under the prediction.
        observed = tuple(self._curve)
        with self._recorder.tracer.span(
            "agent.predict",
            machine_id=self.machine_id,
            job_id=self._job_id,
            n_observed=len(observed),
            n_future=n_future,
        ):
            return self._predictor.predict(observed, n_future)
