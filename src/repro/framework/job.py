"""Job representation and state machine.

A :class:`Job` is one hyperparameter configuration moving through the
states PENDING → RUNNING ⇄ SUSPENDED → {TERMINATED, COMPLETED}.  The
Job Manager enforces legal transitions; everything else reads job
attributes (history, priority, prediction cache) but mutates through
the manager.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .events import AppStat

__all__ = ["JobState", "Job", "IllegalTransitionError"]


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUSPENDED = "suspended"
    TERMINATED = "terminated"
    COMPLETED = "completed"


#: Legal state transitions (from -> allowed targets).
_TRANSITIONS = {
    JobState.PENDING: {JobState.RUNNING, JobState.TERMINATED},
    JobState.RUNNING: {
        JobState.SUSPENDED,
        JobState.TERMINATED,
        JobState.COMPLETED,
    },
    JobState.SUSPENDED: {JobState.RUNNING, JobState.TERMINATED},
    JobState.TERMINATED: set(),
    JobState.COMPLETED: set(),
}


class IllegalTransitionError(RuntimeError):
    """Raised on an illegal job state transition."""


@dataclass
class Job:
    """One configuration's scheduling state.

    Attributes:
        job_id: unique identifier minted by the HG.
        config: the hyperparameter configuration.
        state: current :class:`JobState`.
        priority: SAP-assigned priority (``label_job``); higher runs
            first among idle jobs.  None = FIFO order.
        machine_id: where the job currently runs (None when not running).
        history: ordered :class:`AppStat` records.
        confidence: last computed prediction confidence ``p`` (POP).
        expected_remaining_time: last computed ERT in seconds (POP).
        promising: whether the job is currently in the promising pool.
    """

    job_id: str
    config: Dict[str, Any]
    state: JobState = JobState.PENDING
    priority: Optional[float] = None
    machine_id: Optional[str] = None
    history: List[AppStat] = field(default_factory=list)
    confidence: Optional[float] = None
    expected_remaining_time: Optional[float] = None
    promising: bool = False

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the state machine."""
        if new_state not in _TRANSITIONS[self.state]:
            raise IllegalTransitionError(
                f"{self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    # ------------------------------------------------------------- history

    def record(self, stat: AppStat) -> None:
        if stat.job_id != self.job_id:
            raise ValueError(
                f"stat for {stat.job_id!r} recorded on job {self.job_id!r}"
            )
        if self.history and stat.epoch <= self.history[-1].epoch:
            raise ValueError(
                f"{self.job_id}: non-monotonic epoch {stat.epoch} after "
                f"{self.history[-1].epoch}"
            )
        self.history.append(stat)

    def truncate_history(self, epoch: int) -> int:
        """Discard stats after ``epoch`` (work lost to a machine
        failure; the job resumes from its last checkpoint).

        Returns the number of epochs of work discarded.
        """
        if epoch < 0:
            raise ValueError("cannot truncate to a negative epoch")
        before = self.epochs_completed
        self.history = [stat for stat in self.history if stat.epoch <= epoch]
        return before - self.epochs_completed

    @property
    def epochs_completed(self) -> int:
        return self.history[-1].epoch if self.history else 0

    @property
    def metrics(self) -> List[float]:
        """Raw metric series, one entry per completed epoch."""
        return [stat.metric for stat in self.history]

    @property
    def best_metric(self) -> Optional[float]:
        return max(self.metrics) if self.history else None

    @property
    def latest_metric(self) -> Optional[float]:
        return self.history[-1].metric if self.history else None

    @property
    def mean_epoch_duration(self) -> Optional[float]:
        """Measured average epoch duration (``Epoch_i`` in §3.1.1)."""
        if not self.history:
            return None
        return sum(stat.duration for stat in self.history) / len(self.history)

    @property
    def total_training_time(self) -> float:
        """Total seconds of training this job has consumed."""
        return sum(stat.duration for stat in self.history)

    @property
    def active(self) -> bool:
        """Not yet terminated or completed."""
        return self.state in (JobState.PENDING, JobState.RUNNING, JobState.SUSPENDED)
