"""HyperDrive middleware: scheduler, managers, agents, snapshots."""

from .appstat_db import AppStatDB
from .events import (
    AppStat,
    Decision,
    IterationFinished,
    LifecycleEvent,
    LifecycleKind,
)
from .experiment import ExperimentResult, ExperimentSpec, PoolSnapshot
from .job import IllegalTransitionError, Job, JobState
from .job_manager import JobManager
from .node_agent import NodeAgent
from .resource_manager import ResourceManager
from .scheduler import FollowUp, FollowUpAction, HyperDriveScheduler
from .snapshot import (
    CRIU_COST_MODEL,
    SUPERVISED_COST_MODEL,
    Snapshot,
    SnapshotCostModel,
    cost_model_for_domain,
)
from .transport import Mailbox, Message, MessageBus

__all__ = [
    "AppStatDB",
    "AppStat",
    "Decision",
    "IterationFinished",
    "LifecycleEvent",
    "LifecycleKind",
    "ExperimentResult",
    "ExperimentSpec",
    "PoolSnapshot",
    "Job",
    "JobState",
    "IllegalTransitionError",
    "JobManager",
    "NodeAgent",
    "ResourceManager",
    "HyperDriveScheduler",
    "FollowUp",
    "FollowUpAction",
    "Snapshot",
    "SnapshotCostModel",
    "SUPERVISED_COST_MODEL",
    "CRIU_COST_MODEL",
    "cost_model_for_domain",
    "Mailbox",
    "Message",
    "MessageBus",
]
