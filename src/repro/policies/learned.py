"""Learned SAP: a frozen policy artifact driving the unchanged scheduler.

The serving half of :mod:`repro.learn`: load a frozen artifact (JSON
weights + feature schema), featurize live jobs with the exact
:func:`~repro.learn.features.feature_matrix` the agent trained on, and
turn the network's two heads into SAP decisions:

* **kill head** — at each eval-window boundary a job with positive
  kill logit (and at least one full observed window) is terminated;
  other non-running jobs that score a kill are terminated in the same
  pass (the successive-halving idiom).
* **allocation head** — jobs are ranked by allocation logit; a running
  job outside the top-``num_machines`` is suspended when idle jobs are
  waiting, and idle-queue priorities follow the scores so the best
  candidates resume first.

The policy never calls ``ctx.predict`` — its ERT/confidence inputs are
the closed-form proxies baked into the features — so decisions cost
microseconds and evaluation cells need no prediction budget.

Artifact resolution order: explicit constructor path, then the
``REPRO_LEARNED_ARTIFACT`` environment variable (which reaches the
lab's cell-worker subprocesses), then the committed pretrained
artifact (:data:`~repro.learn.artifact.PRETRAINED_PATH` — what makes
``learned-vs-pop`` runnable out of the box), then a seeded random
initialisation — the same initialisation
:class:`RandomInitLearnedPolicy` always uses, which is the control arm
of the ``learned-vs-pop`` study.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from ..framework.events import Decision, IterationFinished
from ..framework.job import JobState
from ..learn.agent import PolicyNetwork
from ..learn.artifact import ARTIFACT_ENV_VAR, PRETRAINED_PATH, load_artifact
from ..learn.features import FEATURE_NAMES, arrays_from_jobs, feature_matrix
from .base import SchedulingPolicy

__all__ = ["LearnedPolicy", "RandomInitLearnedPolicy"]


def _random_init_network(hidden: int = 16, seed: int = 0) -> PolicyNetwork:
    return PolicyNetwork(len(FEATURE_NAMES), hidden=hidden, seed=seed)


class LearnedPolicy(SchedulingPolicy):
    """SAP driven by a frozen learned-policy artifact.

    Args:
        artifact_path: frozen artifact to load; None falls back to the
            :data:`~repro.learn.artifact.ARTIFACT_ENV_VAR` environment
            variable, then the committed pretrained artifact, then
            random initialisation.
        hidden: hidden width for the random-init fallback.
        init_seed: weight seed for the random-init fallback.
    """

    name = "learned"

    def __init__(
        self,
        artifact_path: Optional[str] = None,
        hidden: int = 16,
        init_seed: int = 0,
    ) -> None:
        super().__init__()
        path = artifact_path or os.environ.get(ARTIFACT_ENV_VAR) or None
        if path is None and os.path.exists(PRETRAINED_PATH):
            path = PRETRAINED_PATH
        if path:
            artifact = load_artifact(path)
            self.net = PolicyNetwork.from_weights(artifact["weights"])
            self.artifact_path: Optional[str] = path
        else:
            self.net = _random_init_network(hidden=hidden, seed=init_seed)
            self.artifact_path = None
        self.last_decision_rationale: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------ scoring

    def _jobs_and_scores(self):
        """Active jobs with their allocation/kill logits (row-aligned)."""
        ctx = self.ctx
        jobs = ctx.job_manager.active_jobs()
        if not jobs:
            return [], np.empty(0), np.empty(0)
        state = arrays_from_jobs(
            jobs,
            domain=ctx.domain,
            elapsed=max(ctx.now(), 0.0),
            tmax=ctx.tmax,
            slots=ctx.resource_manager.num_machines,
            target=ctx.target,
        )
        alloc, kill, _ = self.net.forward(feature_matrix(state))
        return jobs, alloc, kill

    # ------------------------------------------------------------ up-calls

    def allocate_jobs(self) -> None:
        ctx = self.ctx
        jobs, alloc, _ = self._jobs_and_scores()
        scores = {
            job.job_id: float(alloc[index])
            for index, job in enumerate(jobs)
        }
        for job in ctx.job_manager.idle_jobs():
            ctx.job_manager.label_job(job.job_id, scores.get(job.job_id, 0.0))
        while True:
            job = ctx.job_manager.get_idle_job()
            if job is None:
                return
            machine_id = ctx.resource_manager.reserve_idle_machine()
            if machine_id is None:
                return
            ctx.start(job.job_id, machine_id)

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        ctx = self.ctx
        window = ctx.domain.eval_boundary
        if event.job_finished or event.epoch % window != 0:
            return Decision.CONTINUE

        jobs, alloc, kill = self._jobs_and_scores()
        rows = {job.job_id: index for index, job in enumerate(jobs)}
        row = rows.get(event.job_id)
        if row is None:
            return Decision.CONTINUE

        # Kill pass: the reporting job via the returned Decision, parked
        # jobs directly (they get no up-call of their own).
        if float(kill[row]) > 0.0:
            self._note(event, "kill", float(kill[row]))
            return Decision.TERMINATE
        for job in jobs:
            other = rows[job.job_id]
            if (
                job.job_id != event.job_id
                and float(kill[other]) > 0.0
                and job.epochs_completed >= window
                and job.state in (JobState.SUSPENDED, JobState.PENDING)
            ):
                ctx.job_manager.terminate_job(job.job_id)
                ctx.appstat_db.drop_snapshot(job.job_id)

        # Allocation pass: keep the slot only while in the top-M.
        survivors: List[int] = [
            rows[job.job_id]
            for job in ctx.job_manager.active_jobs()
            if job.job_id in rows and float(kill[rows[job.job_id]]) <= 0.0
        ]
        order = sorted(survivors, key=lambda index: -float(alloc[index]))
        top = set(order[: ctx.resource_manager.num_machines])
        for job in ctx.job_manager.idle_jobs():
            index = rows.get(job.job_id)
            if index is not None:
                ctx.job_manager.label_job(job.job_id, float(alloc[index]))
        if row not in top and ctx.job_manager.idle_jobs():
            self._note(event, "suspend", float(alloc[row]))
            return Decision.SUSPEND
        self._note(event, "continue", float(alloc[row]))
        return Decision.CONTINUE

    def _note(self, event: IterationFinished, action: str, score: float) -> None:
        # Merged into the scheduler's sap_decision audit record, which
        # already carries job_id/epoch — keep these keys disjoint.
        self.last_decision_rationale = {
            "action": action,
            "score": round(score, 6),
            "artifact": self.artifact_path or "random-init",
        }


class RandomInitLearnedPolicy(LearnedPolicy):
    """The untrained control arm: always random-init weights.

    Evaluating the trained policy against this — same architecture,
    same decision plumbing, no training — isolates what *learning*
    contributed, which is the gated comparison in ``learned-vs-pop``.
    """

    name = "learned-random"

    def __init__(self, hidden: int = 16, init_seed: int = 0) -> None:
        SchedulingPolicy.__init__(self)
        self.net = _random_init_network(hidden=hidden, seed=init_seed)
        self.artifact_path = None
        self.last_decision_rationale = None
