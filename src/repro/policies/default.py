"""Default SAP (§4.2): greedy allocation, run every job to completion.

Ignores application stats and always continues jobs — the baseline the
paper compares every smarter policy against, and the base class whose
allocation behaviour Bandit and EarlyTerm extend.
"""

from __future__ import annotations

from ..framework.events import Decision, IterationFinished
from .base import DefaultAllocationMixin, SchedulingPolicy

__all__ = ["DefaultPolicy"]


class DefaultPolicy(DefaultAllocationMixin, SchedulingPolicy):
    """Run-to-completion scheduling with greedy allocation."""

    name = "default"

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        return Decision.CONTINUE
