"""Bandit SAP: TuPAQ's action-elimination allocation strategy (§5.3).

At every evaluation boundary the policy compares the job's best
performance against the global best seen anywhere: the job survives iff

    jobBest * (1 + ε) > globalBest

with ε = 0.50 per TuPAQ.  Comparisons run on normalised metrics so the
rule is meaningful for RL's negative rewards (§6.3's min-max scaling).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..framework.events import AppStat, Decision, IterationFinished
from .base import DefaultAllocationMixin, SchedulingPolicy

__all__ = ["BanditPolicy"]


class BanditPolicy(DefaultAllocationMixin, SchedulingPolicy):
    """TuPAQ-style bandit elimination.

    Args:
        epsilon: slack factor ε (0.50 in TuPAQ and the paper).
        eval_boundary: ``b``; None uses the domain's value (10 for
            supervised; the paper reuses POP's RL boundary since TuPAQ
            offers no guidance there).
    """

    name = "bandit"

    def __init__(
        self, epsilon: float = 0.50, eval_boundary: Optional[int] = None
    ) -> None:
        super().__init__()
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon
        self._eval_boundary = eval_boundary
        self._global_best: Optional[float] = None
        self._job_best: Dict[str, float] = {}

    @property
    def eval_boundary(self) -> int:
        if self._eval_boundary is not None:
            return self._eval_boundary
        return self.ctx.domain.eval_boundary

    @property
    def global_best(self) -> Optional[float]:
        """Best normalised performance seen across all jobs."""
        return self._global_best

    def application_stat(self, stat: AppStat) -> None:
        value = self.ctx.domain.normalize(stat.metric)
        best = self._job_best.get(stat.job_id)
        if best is None or value > best:
            self._job_best[stat.job_id] = value
        if self._global_best is None or value > self._global_best:
            self._global_best = value

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        if event.epoch % self.eval_boundary != 0:
            return Decision.CONTINUE
        if self._global_best is None:
            return Decision.CONTINUE
        job_best = self._job_best.get(event.job_id, 0.0)
        if job_best * (1.0 + self.epsilon) > self._global_best:
            return Decision.CONTINUE
        return Decision.TERMINATE
