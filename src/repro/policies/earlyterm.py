"""EarlyTerm SAP: Domhan et al.'s predictive termination (§5.3).

A parallel version of the "predictive termination criterion" of [11]:
at each evaluation boundary compute

    pval = P( y(m) >= ŷ | y(1:n) )

where ``m`` is the job's maximum epoch and ``ŷ`` the global best
performance seen so far; terminate immediately when ``pval < δ``
(δ = 0.05, b = 30 for supervised learning, per the original work).
Otherwise behaves like the Default SAP — jobs run to completion.
"""

from __future__ import annotations

from typing import Optional

from ..framework.events import AppStat, Decision, IterationFinished
from .base import DefaultAllocationMixin, SchedulingPolicy

__all__ = ["EarlyTermPolicy"]


class EarlyTermPolicy(DefaultAllocationMixin, SchedulingPolicy):
    """Learning-curve-based predictive early termination.

    Args:
        delta: termination probability threshold δ.
        eval_boundary: ``b``; None resolves per domain — 30 for
            supervised learning (as in [11]) and the domain's own
            boundary for RL (the paper reuses POP's value there).
    """

    name = "earlyterm"

    def __init__(
        self, delta: float = 0.05, eval_boundary: Optional[int] = None
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        self.delta = delta
        self._eval_boundary = eval_boundary
        self._global_best: Optional[float] = None

    @property
    def eval_boundary(self) -> int:
        if self._eval_boundary is not None:
            return self._eval_boundary
        if self.ctx.domain.kind == "supervised":
            return 30
        return self.ctx.domain.eval_boundary

    @property
    def global_best(self) -> Optional[float]:
        """ŷ: best normalised performance seen across all jobs."""
        return self._global_best

    def application_stat(self, stat: AppStat) -> None:
        value = self.ctx.domain.normalize(stat.metric)
        if self._global_best is None or value > self._global_best:
            self._global_best = value

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        if event.epoch % self.eval_boundary != 0:
            return Decision.CONTINUE
        if self._global_best is None:
            return Decision.CONTINUE
        n_future = self.ctx.domain.max_epochs - event.epoch
        if n_future < 1:
            return Decision.CONTINUE
        try:
            prediction = self.ctx.predict(event.job_id, n_future)
        except ValueError:
            return Decision.CONTINUE  # history too short to predict
        pval = prediction.prob_exceeds(
            self._global_best, at_epoch=self.ctx.domain.max_epochs
        )
        if pval < self.delta:
            return Decision.TERMINATE
        return Decision.CONTINUE
