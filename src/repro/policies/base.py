"""SAP interface re-export.

The actual definitions live in :mod:`repro.framework.policy_api` (the
framework owns the up-call contract); this module keeps the natural
``repro.policies.base`` import path working.
"""

from ..framework.policy_api import (
    DefaultAllocationMixin,
    PolicyContext,
    SchedulingPolicy,
)

__all__ = ["PolicyContext", "SchedulingPolicy", "DefaultAllocationMixin"]
