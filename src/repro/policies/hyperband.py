"""Successive-halving SAP (the HyperBand bracket primitive).

Section 8 positions HyperBand as related sequential work; this policy
implements its core successive-halving bracket on top of HyperDrive's
suspend/resume machinery, demonstrating that the SAP API expresses
rounds-based schedulers too (§4.2's "barrier-like epoch scheduling").

All configurations train to the current rung budget (a barrier enforced
with suspends), the top ``1/eta`` fraction by best metric survive, the
rest are terminated, and the budget multiplies by ``eta``.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from ..framework.events import Decision, IterationFinished
from ..framework.job import JobState
from .base import SchedulingPolicy

__all__ = ["SuccessiveHalvingPolicy", "HyperBandPolicy"]


class SuccessiveHalvingPolicy(SchedulingPolicy):
    """Rounds-based successive halving.

    Args:
        eta: elimination factor (keep top 1/eta per rung).
        initial_budget: epochs every configuration gets in rung 0.
    """

    name = "successive_halving"

    def __init__(self, eta: float = 3.0, initial_budget: int = 4) -> None:
        super().__init__()
        if eta <= 1.0:
            raise ValueError("eta must exceed 1")
        if initial_budget < 1:
            raise ValueError("initial_budget must be >= 1")
        self.eta = eta
        self.initial_budget = initial_budget
        self.rung = 0
        self.rung_budget = initial_budget
        self._waiting: Set[str] = set()

    # ------------------------------------------------------------ up-calls

    def allocate_jobs(self) -> None:
        ctx = self.ctx
        while True:
            candidates = [
                job
                for job in ctx.job_manager.idle_jobs()
                if job.epochs_completed < self.rung_budget
            ]
            if not candidates:
                return
            machine_id = ctx.resource_manager.reserve_idle_machine()
            if machine_id is None:
                return
            ctx.start(candidates[0].job_id, machine_id)

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        ctx = self.ctx
        if event.epoch < self.rung_budget:
            return Decision.CONTINUE

        self._waiting.add(event.job_id)
        active = ctx.job_manager.active_jobs()
        still_training = [
            job
            for job in active
            if job.job_id not in self._waiting
            and job.epochs_completed < self.rung_budget
        ]
        if still_training:
            # Barrier: park at the rung boundary until the cohort lands.
            return Decision.SUSPEND
        return self._close_rung(event.job_id)

    # ------------------------------------------------------------ internals

    def _close_rung(self, current_job_id: str) -> Decision:
        """Rank the cohort, terminate the losers, advance the rung."""
        ctx = self.ctx
        cohort = [
            job
            for job in ctx.job_manager.active_jobs()
            if job.job_id in self._waiting
        ]
        cohort.sort(
            key=lambda job: ctx.domain.normalize(job.best_metric or 0.0),
            reverse=True,
        )
        keep = max(1, math.ceil(len(cohort) / self.eta))
        survivors = {job.job_id for job in cohort[:keep]}

        current_survives = current_job_id in survivors
        for job in cohort[keep:]:
            if job.job_id == current_job_id:
                continue  # decided via the returned Decision
            if job.state in (JobState.SUSPENDED, JobState.PENDING):
                ctx.job_manager.terminate_job(job.job_id)
                ctx.appstat_db.drop_snapshot(job.job_id)

        self.rung += 1
        self.rung_budget = min(
            int(round(self.rung_budget * self.eta)), ctx.domain.max_epochs
        )
        self._waiting.clear()
        # Survivors waiting in the idle queue are picked up by the
        # allocation round that follows the next machine release.
        return Decision.CONTINUE if current_survives else Decision.TERMINATE


class HyperBandPolicy(SchedulingPolicy):
    """Full HyperBand: several successive-halving brackets in sequence.

    HyperBand (Li et al., ICLR'17 — §8 related work) hedges the
    exploration/exploitation trade-off by running brackets with
    different aggressiveness: the first bracket starts many
    configurations on tiny budgets and halves hard; the last runs few
    configurations to (nearly) full budget.  Brackets run sequentially
    over disjoint slices of the experiment's configuration set, each
    slice scheduled with the barrier discipline of
    :class:`SuccessiveHalvingPolicy`.

    Args:
        eta: elimination factor shared by all brackets.
        max_budget: per-configuration epoch budget ``R``; None uses the
            domain's ``max_epochs``.
    """

    name = "hyperband"

    def __init__(self, eta: float = 3.0, max_budget: Optional[int] = None) -> None:
        super().__init__()
        if eta <= 1.0:
            raise ValueError("eta must exceed 1")
        self.eta = eta
        self.max_budget = max_budget
        self._brackets: Optional[list] = None  # list of (job_ids, r0)
        self._bracket_index = 0
        self.rung_budget = 1
        self._waiting: Set[str] = set()

    # ------------------------------------------------------------ brackets

    def _ensure_brackets(self) -> None:
        if self._brackets is not None:
            return
        ctx = self.ctx
        budget = self.max_budget or ctx.domain.max_epochs
        s_max = int(math.floor(math.log(budget, self.eta)))
        jobs = [job.job_id for job in ctx.job_manager.jobs()]
        # Aggressive brackets first; each takes a proportional slice of
        # the configuration set (most configs to the most aggressive).
        weights = [self.eta**s for s in range(s_max, -1, -1)]
        total = sum(weights)
        self._brackets = []
        cursor = 0
        for s, weight in zip(range(s_max, -1, -1), weights):
            count = max(1, int(round(len(jobs) * weight / total)))
            slice_ids = jobs[cursor : cursor + count]
            cursor += count
            if slice_ids:
                r0 = max(1, int(round(budget * self.eta**-s)))
                self._brackets.append((set(slice_ids), r0))
        # Any remainder joins the last bracket.
        for job_id in jobs[cursor:]:
            self._brackets[-1][0].add(job_id)
        self._enter_bracket(0)

    def _enter_bracket(self, index: int) -> None:
        self._bracket_index = index
        self._waiting.clear()
        if self._brackets is not None and index < len(self._brackets):
            self.rung_budget = self._brackets[index][1]

    def _current_bracket_ids(self) -> Set[str]:
        assert self._brackets is not None
        if self._bracket_index >= len(self._brackets):
            return set()
        return self._brackets[self._bracket_index][0]

    def _advance_if_bracket_done(self) -> None:
        """Move to the next bracket when the current one has no live
        jobs below its (final) budget."""
        ctx = self.ctx
        while self._bracket_index < len(self._brackets or []):
            bracket_ids = self._current_bracket_ids()
            live = [
                job
                for job in ctx.job_manager.active_jobs()
                if job.job_id in bracket_ids
            ]
            if live:
                return
            self._enter_bracket(self._bracket_index + 1)

    # ------------------------------------------------------------ up-calls

    def allocate_jobs(self) -> None:
        ctx = self.ctx
        self._ensure_brackets()
        self._advance_if_bracket_done()
        while True:
            bracket_ids = self._current_bracket_ids()
            candidates = [
                job
                for job in ctx.job_manager.idle_jobs()
                if job.job_id in bracket_ids
                and job.epochs_completed < self.rung_budget
            ]
            if not candidates:
                return
            machine_id = ctx.resource_manager.reserve_idle_machine()
            if machine_id is None:
                return
            ctx.start(candidates[0].job_id, machine_id)

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        ctx = self.ctx
        self._ensure_brackets()
        if event.epoch < self.rung_budget:
            return Decision.CONTINUE
        self._waiting.add(event.job_id)
        bracket_ids = self._current_bracket_ids()
        still_training = [
            job
            for job in ctx.job_manager.active_jobs()
            if job.job_id in bracket_ids
            and job.job_id not in self._waiting
            and job.epochs_completed < self.rung_budget
        ]
        if still_training:
            return Decision.SUSPEND
        return self._close_rung(event.job_id, bracket_ids)

    def _close_rung(self, current_job_id: str, bracket_ids: Set[str]) -> Decision:
        ctx = self.ctx
        cohort = [
            job
            for job in ctx.job_manager.active_jobs()
            if job.job_id in self._waiting
        ]
        cohort.sort(
            key=lambda job: ctx.domain.normalize(job.best_metric or 0.0),
            reverse=True,
        )
        keep = max(1, math.ceil(len(cohort) / self.eta))
        survivors = {job.job_id for job in cohort[:keep]}
        current_survives = current_job_id in survivors
        for job in cohort[keep:]:
            if job.job_id == current_job_id:
                continue
            if job.state in (JobState.SUSPENDED, JobState.PENDING):
                ctx.job_manager.terminate_job(job.job_id)
                ctx.appstat_db.drop_snapshot(job.job_id)
        budget = self.max_budget or ctx.domain.max_epochs
        self.rung_budget = min(int(round(self.rung_budget * self.eta)), budget)
        self._waiting.clear()
        return Decision.CONTINUE if current_survives else Decision.TERMINATE
