"""Scheduling Algorithm Policies (SAPs).

POP itself lives in :mod:`repro.core.pop` but is re-exported here so
every policy can be imported from one place.
"""

from ..core.pop import POPPolicy
from .bandit import BanditPolicy
from .base import DefaultAllocationMixin, PolicyContext, SchedulingPolicy
from .default import DefaultPolicy
from .earlyterm import EarlyTermPolicy
from .global_criterion import GlobalCriterionPolicy
from .hyperband import HyperBandPolicy, SuccessiveHalvingPolicy

__all__ = [
    "PolicyContext",
    "SchedulingPolicy",
    "DefaultAllocationMixin",
    "DefaultPolicy",
    "BanditPolicy",
    "EarlyTermPolicy",
    "POPPolicy",
    "SuccessiveHalvingPolicy",
    "HyperBandPolicy",
    "GlobalCriterionPolicy",
]
