"""Global termination criteria on top of any SAP (§9 Ongoing Work).

The paper reports "significantly reduced training times by enabling
user-defined global termination criteria through HyperDrive's SAP API"
for its LSTM-sparsity exploration: rather than waiting for the primary
metric alone, the experiment ends the moment any job satisfies a
model-owner predicate over *all* reported metrics (e.g. perplexity
good enough AND sparsity high enough).

:class:`GlobalCriterionPolicy` wraps any inner SAP, watches every
:class:`~repro.framework.events.AppStat`, and calls the scheduler's
``stop_experiment`` hook when the predicate first holds.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..framework.events import AppStat, Decision, IterationFinished
from ..framework.policy_api import PolicyContext, SchedulingPolicy

__all__ = ["GlobalCriterionPolicy"]


class GlobalCriterionPolicy(SchedulingPolicy):
    """Delegating SAP with a user-defined global stop predicate.

    Args:
        inner: the SAP doing the actual scheduling.
        criterion: predicate over incoming stats; the experiment stops
            the first time it returns True.
        name: display name; defaults to ``"<inner>+criterion"``.
    """

    def __init__(
        self,
        inner: SchedulingPolicy,
        criterion: Callable[[AppStat], bool],
        name: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.criterion = criterion
        self.name = name if name is not None else f"{inner.name}+criterion"
        self.satisfied_by: Optional[AppStat] = None

    def bind(self, context: PolicyContext) -> None:
        super().bind(context)
        self.inner.bind(context)

    def allocate_jobs(self) -> None:
        self.inner.allocate_jobs()

    def application_stat(self, stat: AppStat) -> None:
        if self.satisfied_by is None and self.criterion(stat):
            self.satisfied_by = stat
            if self.ctx.stop_experiment is not None:
                self.ctx.stop_experiment(
                    f"global criterion satisfied by {stat.job_id} "
                    f"at epoch {stat.epoch}"
                )
        self.inner.application_stat(stat)

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        return self.inner.on_iteration_finish(event)
