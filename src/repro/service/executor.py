"""Execute and resume stored experiments.

``execute`` drives one experiment from the run store through either
runtime, wiring three service concerns into the run:

* **Journal**: the run's audit trail streams into the store journal
  through a :class:`~repro.service.store.JournalExporter`; the minted
  configuration list is journaled before the first epoch.
* **Checkpoints**: every ``checkpoint_every`` epochs the scheduler's
  :meth:`~repro.framework.scheduler.HyperDriveScheduler.checkpoint_state`
  is persisted — progress for ``repro status``/``watch`` and the
  bookkeeping ``repro resume`` validates against.
* **Cancellation**: the executor polls the store's ``cancel_requested``
  flag (sim: inside the event loop's stop-check; live: a monitor
  thread that sets the runtime's cancel event) and records a partial
  result under the CANCELLED status.
* **Telemetry**: when the caller owns a
  :class:`~repro.observability.aggregator.TelemetryAggregator` (the
  daemon does), the run's registry is ingested under the experiment id
  at every checkpoint and at completion, and cluster runs ship their
  per-worker registries into the same aggregator — that is what the
  daemon's ``/telemetry`` and merged ``/metrics`` render.

``resume`` is the paper's suspend/resume story (§5.1) at experiment
granularity: an experiment whose process died is reconstructed from its
journal — the submission seeds plus the exact minted configuration
stream — and re-driven to completion.  Because both runtimes are
deterministic given those inputs, the resumed run retraces the
interrupted trajectory past the last checkpoint and finishes exactly as
an uninterrupted run would (see ``docs/service.md`` for the semantics
and their limits on the live runtime).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from ..generators.base import ExhaustedSpaceError
from ..observability import Recorder
from .store import (
    CANCELLED,
    COMPLETED,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    RunRecord,
    RunStore,
)
from .submission import Submission

__all__ = ["execute", "resume"]

CheckpointHook = Callable[[Dict[str, Any]], None]


class _BrokerControl:
    """The executor's side of the broker lease protocol.

    One instance per run: registers the experiment, blocks admission
    until at least one slot is granted, shrinks the fresh scheduler to
    the granted slots before the first job starts, and at every
    checkpoint reports POP state and follows the plan → resize →
    commit handshake.  A plan of 0 slots means the broker fully
    preempted the run: the control sets :attr:`preempted` and the
    executor stops the run and marks it INTERRUPTED — resumable by
    deterministic replay, like any other interruption.
    """

    def __init__(self, broker, store, exp_id, submission, want,
                 poll_wall_seconds) -> None:
        self.broker = broker
        self.store = store
        self.exp_id = exp_id
        self.submission = submission
        self.want = max(1, int(want))
        self.poll = max(0.01, min(poll_wall_seconds, 0.05))
        self.preempted = threading.Event()
        self.registered = False
        self.initial = self.want

    def admit(self) -> bool:
        """Register and wait until the broker grants ≥1 slot.  Returns
        False when the experiment was cancelled while waiting."""
        self.broker.register(
            self.exp_id,
            tenant=self.submission.tenant,
            priority=self.submission.priority,
            want=self.want,
            deadline_hours=self.submission.deadline_hours,
            budget_slot_hours=self.submission.budget_slot_hours,
        )
        self.registered = True
        while True:
            decision = self.broker.plan(self.exp_id)
            if decision.target >= 1:
                granted = self.broker.commit(self.exp_id)
                if granted.held >= 1:
                    self.initial = granted.held
                    return True
            if self.store.cancel_requested(self.exp_id):
                return False
            time.sleep(self.poll)

    def setup(self, scheduler) -> None:
        """Pre-``begin`` hook: shrink to the granted slot count so the
        run never trains on machines it holds no lease for."""
        target = self.initial
        fleet = getattr(scheduler, "fleet_manager", None)
        if fleet is not None:
            # An elastic cluster may have booted fewer workers than the
            # broker granted; scale only to what is actually up now and
            # let the fleet monitor grow into the rest.
            target = fleet.request_capacity(target)
        if target < scheduler.resource_manager.num_in_service:
            scheduler.resize(target)

    def sync(self, scheduler) -> None:
        """Checkpoint-time handshake: report POP state, then follow the
        broker's target — resize down *before* leases are surrendered,
        resize up only *after* new leases are granted."""
        self.broker.report(
            self.exp_id, **scheduler.job_manager.confidence_digest()
        )
        decision = self.broker.plan(self.exp_id)
        if decision.target < 1:
            self.preempted.set()
            return
        fleet = getattr(scheduler, "fleet_manager", None)
        rm = scheduler.resource_manager
        current = rm.num_in_service
        if decision.target < current:
            if fleet is not None:
                # Keep the worker fleet in step: drained processes are
                # reaped by the runtime's monitor once the leases drain.
                fleet.request_capacity(decision.target)
            scheduler.resize(decision.target)
            if rm.num_in_service <= decision.target:
                # Drain completed synchronously (idle machines): the
                # revoked leases can return to the pool right away.
                self.broker.commit(self.exp_id)
            # else: busy machines still draining toward the target;
            # their leases are surrendered at a later sync.
        else:
            granted = self.broker.commit(self.exp_id)
            target = granted.held
            if fleet is not None:
                # Grow only as fast as real worker processes boot; the
                # remainder arrives via the monitor's reconcile loop.
                target = fleet.request_capacity(granted.held)
            if target != current:
                scheduler.resize(target)

    def release(self, reason: str) -> None:
        if self.registered:
            self.broker.release(self.exp_id, reason=reason)
            self.registered = False


def execute(
    store: RunStore,
    exp_id: str,
    on_checkpoint: Optional[CheckpointHook] = None,
    poll_wall_seconds: float = 0.25,
    cluster_workers: Optional[int] = None,
    aggregator=None,
    broker=None,
    fleet=None,
    fleet_control=None,
) -> RunRecord:
    """Run one stored experiment to a terminal status.

    The experiment must be QUEUED (offline callers) or RUNNING (daemon
    workers that already claimed it).  Returns the final record; on an
    execution error the experiment is marked FAILED and the exception
    re-raised.

    Args:
        store: the run store holding the experiment.
        exp_id: experiment id.
        on_checkpoint: test/ops hook invoked with each checkpoint state
            after it is persisted.
        poll_wall_seconds: wall-clock throttle on cancellation polls.
        cluster_workers: when set, live submissions execute on the
            multi-process cluster runtime with this many worker
            processes (``repro serve --cluster-workers``).
        aggregator: optional
            :class:`~repro.observability.aggregator.TelemetryAggregator`
            receiving the run's registry (node = experiment id) and,
            on cluster runs, every worker's shipped telemetry.
        broker: optional
            :class:`~repro.broker.ResourceBroker`; when given, the run
            leases its slots from the shared pool (see
            :class:`_BrokerControl`) and may be shrunk, grown, or
            preempted mid-flight.
        fleet: optional :class:`~repro.autoscale.FleetOptions`
            template; cluster runs get a per-experiment copy (id and
            budget filled from the submission) and become elastic,
            spot-revocable, and cost-metered.
        fleet_control: optional
            :class:`~repro.autoscale.FleetControl` handle for this run
            (the daemon queues spot revocations through it).
    """
    record = store.get(exp_id)
    if record is None:
        raise KeyError(f"unknown experiment {exp_id!r}")
    if record.status == QUEUED:
        store.mark_running(exp_id)
    elif record.status != RUNNING:
        raise ValueError(
            f"experiment {exp_id} is {record.status}; only queued/running "
            "experiments can be executed"
        )
    return _run(
        store, exp_id, on_checkpoint, poll_wall_seconds, cluster_workers,
        aggregator, broker, fleet, fleet_control,
    )


def resume(
    store: RunStore,
    exp_id: str,
    on_checkpoint: Optional[CheckpointHook] = None,
    poll_wall_seconds: float = 0.25,
    cluster_workers: Optional[int] = None,
    aggregator=None,
    broker=None,
    fleet=None,
    fleet_control=None,
) -> RunRecord:
    """Resume an INTERRUPTED experiment from its journal.

    Replays the journaled configuration stream under the stored
    submission (same seeds), which on the deterministic runtimes
    retraces the interrupted run and continues it to completion.  The
    last checkpoint is journaled alongside the ``resumed`` marker so
    the recovery point is auditable.

    Accepts RUNNING as well as INTERRUPTED: a daemon worker re-running
    a broker-preempted experiment claims it (INTERRUPTED → RUNNING via
    the store's compare-and-set) *before* calling here.
    """
    record = store.get(exp_id)
    if record is None:
        raise KeyError(f"unknown experiment {exp_id!r}")
    if record.status not in (INTERRUPTED, RUNNING):
        raise ValueError(
            f"experiment {exp_id} is {record.status}; only interrupted "
            "experiments can be resumed (run recover_interrupted first)"
        )
    checkpoint = record.checkpoint or {}
    store.append_event(
        exp_id,
        "resumed",
        from_epoch=checkpoint.get("epochs_trained", 0),
        from_clock=checkpoint.get("clock", 0.0),
    )
    if record.status == INTERRUPTED:
        store.mark_running(exp_id)
    return _run(
        store, exp_id, on_checkpoint, poll_wall_seconds, cluster_workers,
        aggregator, broker, fleet, fleet_control,
    )


def _run(
    store: RunStore,
    exp_id: str,
    on_checkpoint: Optional[CheckpointHook],
    poll_wall_seconds: float,
    cluster_workers: Optional[int] = None,
    aggregator=None,
    broker=None,
    fleet=None,
    fleet_control=None,
) -> RunRecord:
    record = store.get(exp_id)
    assert record is not None
    submission = Submission.from_dict(record.submission)
    workload = submission.build_workload()
    policy = submission.build_policy()
    spec = submission.build_spec()
    if hasattr(policy, "configure_budget"):
        # Budget-aware policies (pop-budget) spend against the
        # submission's slot-hour budget; without one they fall back to
        # their own default at begin().
        policy.configure_budget(submission.budget_slot_hours)

    # Live submissions may be offloaded to the multi-process cluster
    # runtime; simulator submissions always run in-process, so the
    # daemon's worker-pool size — not --cluster-workers — bounds
    # concurrent simulated experiments.
    use_cluster = bool(cluster_workers) and submission.live

    # Replay anchor: mint once, journal, and always run from the
    # journaled list — a resumed run sees the identical stream.
    configs = store.minted_configs(exp_id)
    if configs is None:
        generator = submission.build_generator(workload)
        configs = []
        for _ in range(submission.configs):
            try:
                configs.append(generator.create_job()[1])
            except ExhaustedSpaceError:
                break
        store.record_configs(exp_id, configs)

    recorder = Recorder(exporter=store.journal_exporter(exp_id))

    control: Optional[_BrokerControl] = None
    if broker is not None:
        want = cluster_workers if use_cluster else spec.num_machines
        control = _BrokerControl(
            broker, store, exp_id, submission, want, poll_wall_seconds
        )
        if not control.admit():
            # Cancelled while queued for slots: no partial result exists.
            control.release(CANCELLED)
            store.mark_finished(exp_id, CANCELLED)
            final = store.get(exp_id)
            assert final is not None
            return final

    def publish_telemetry() -> None:
        if aggregator is not None:
            aggregator.ingest_registry(
                exp_id, recorder.metrics, meta={"status": RUNNING}
            )

    def checkpoint_hook(scheduler) -> None:
        state = scheduler.checkpoint_state()
        store.save_checkpoint(exp_id, state)
        publish_telemetry()
        if control is not None:
            control.sync(scheduler)
        if on_checkpoint is not None:
            on_checkpoint(state)

    setup_hook = control.setup if control is not None else None

    try:
        if use_cluster:
            result = _run_cluster(
                store, exp_id, submission, workload, policy, spec, configs,
                recorder, checkpoint_hook, poll_wall_seconds, cluster_workers,
                aggregator, control, setup_hook, fleet, fleet_control,
            )
        elif submission.live:
            result = _run_live(
                store, exp_id, submission, workload, policy, spec, configs,
                recorder, checkpoint_hook, poll_wall_seconds, control,
                setup_hook,
            )
        else:
            result = _run_sim(
                store, exp_id, submission, workload, policy, spec, configs,
                recorder, checkpoint_hook, poll_wall_seconds, control,
                setup_hook,
            )
    except Exception as exc:
        if control is not None:
            control.release(FAILED)
        store.mark_finished(
            exp_id, FAILED, error=f"{type(exc).__name__}: {exc}"
        )
        raise
    finally:
        publish_telemetry()
    if (
        control is not None
        and control.preempted.is_set()
        and not store.cancel_requested(exp_id)
    ):
        # Broker reclaimed every slot: park the run as INTERRUPTED.  No
        # result is recorded — deterministic replay resumes it later
        # and finishes exactly as an uninterrupted run would.
        control.release("preempted")
        store.mark_interrupted(exp_id)
        final = store.get(exp_id)
        assert final is not None
        return final
    status = CANCELLED if store.cancel_requested(exp_id) else COMPLETED
    if control is not None:
        control.release(status)
    store.mark_finished(exp_id, status, result=result.to_dict())
    final = store.get(exp_id)
    assert final is not None
    return final


def _run_sim(
    store, exp_id, submission, workload, policy, spec, configs,
    recorder, checkpoint_hook, poll_wall_seconds, control=None,
    setup_hook=None,
):
    from ..sim.runner import run_simulation

    state = {"next_poll": 0.0, "cancelled": False}

    def stop_check() -> bool:
        if control is not None and control.preempted.is_set():
            return True
        now = time.monotonic()
        if now >= state["next_poll"]:
            state["next_poll"] = now + poll_wall_seconds
            state["cancelled"] = store.cancel_requested(exp_id)
        return state["cancelled"]

    return run_simulation(
        workload,
        policy,
        configs=configs,
        spec=spec,
        recorder=recorder,
        stop_check=stop_check,
        progress_hook=checkpoint_hook,
        progress_every_epochs=submission.checkpoint_every,
        setup_hook=setup_hook,
    )


def _run_live(
    store, exp_id, submission, workload, policy, spec, configs,
    recorder, checkpoint_hook, poll_wall_seconds, control=None,
    setup_hook=None,
):
    from ..runtime.local import run_live

    cancel_event = threading.Event()
    done = threading.Event()

    def monitor() -> None:
        while not done.is_set():
            if store.cancel_requested(exp_id) or (
                control is not None and control.preempted.is_set()
            ):
                cancel_event.set()
                return
            done.wait(max(poll_wall_seconds, 0.02))

    monitor_thread = threading.Thread(
        target=monitor, name=f"cancel-monitor-{exp_id}", daemon=True
    )
    monitor_thread.start()
    try:
        return run_live(
            workload,
            policy,
            configs=configs,
            spec=spec,
            time_scale=submission.time_scale,
            recorder=recorder,
            cancel_event=cancel_event,
            progress_hook=checkpoint_hook,
            progress_every_epochs=submission.checkpoint_every,
            setup_hook=setup_hook,
        )
    finally:
        done.set()
        monitor_thread.join(timeout=5.0)


def _run_cluster(
    store, exp_id, submission, workload, policy, spec, configs,
    recorder, checkpoint_hook, poll_wall_seconds, cluster_workers,
    aggregator=None, control=None, setup_hook=None, fleet=None,
    fleet_control=None,
):
    """Execute on the multi-process cluster runtime (§4's deployed
    shape): one worker process per machine, heartbeat failure
    detection, snapshot migration.  The daemon's ``--cluster-workers``
    flag fixes the fleet size regardless of the submitted machine
    count."""
    from dataclasses import replace as replace_spec

    from ..cluster.runtime import run_cluster

    if cluster_workers < 1:
        raise ValueError("cluster_workers must be >= 1")
    spec = replace_spec(spec, num_machines=cluster_workers)

    if fleet is not None:
        # Personalise the daemon's fleet template for this run: the
        # meter charges this experiment, against its own budget.
        fleet = replace_spec(
            fleet,
            experiment_id=exp_id,
            budget_slot_hours=(
                fleet.budget_slot_hours
                if fleet.budget_slot_hours is not None
                else submission.budget_slot_hours
            ),
        )

    cancel_event = threading.Event()
    done = threading.Event()

    def monitor() -> None:
        while not done.is_set():
            if store.cancel_requested(exp_id) or (
                control is not None and control.preempted.is_set()
            ):
                cancel_event.set()
                return
            done.wait(max(poll_wall_seconds, 0.02))

    monitor_thread = threading.Thread(
        target=monitor, name=f"cancel-monitor-{exp_id}", daemon=True
    )
    monitor_thread.start()
    try:
        return run_cluster(
            workload,
            policy,
            configs=configs,
            spec=spec,
            time_scale=submission.time_scale,
            recorder=recorder,
            cancel_event=cancel_event,
            progress_hook=checkpoint_hook,
            progress_every_epochs=submission.checkpoint_every,
            aggregator=aggregator,
            setup_hook=setup_hook,
            fleet=fleet,
            fleet_control=fleet_control,
        )
    finally:
        done.set()
        monitor_thread.join(timeout=5.0)
