"""The experiment submission record.

A :class:`Submission` is what a client POSTs to the daemon (or hands to
``repro submit``): component *names* resolved through
:mod:`repro.registry` plus the experiment parameters.  It is the
durable, JSON-round-trippable description from which the executor can
rebuild the run — including after a daemon crash, which is what makes
``repro resume`` possible.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional

from .. import registry
from ..framework.experiment import ExperimentSpec
from ..generators.base import HyperparameterGenerator
from ..policies.base import SchedulingPolicy
from ..workloads.base import Workload

__all__ = ["Submission"]


@dataclass
class Submission:
    """One experiment request, as stored by the run store.

    Attributes:
        workload: registered workload name (``repro.registry.WORKLOADS``).
        policy: registered SAP name.
        generator: registered hyperparameter-generator name.
        machines: slot count; None picks the workload's paper default.
        configs: how many configurations the generator should mint.
        seed: experiment seed (training noise, snapshot costs).
        gen_seed: generator seed; None picks the published default.
        target: raw-scale target metric; None uses the domain target.
        tmax_hours: experiment horizon ``Tmax`` in hours.
        stop_on_target: end the run at first target hit.
        live: execute on the live threaded runtime instead of the
            simulator.
        time_scale: wall seconds per simulated second (live runtime).
        checkpoint_every: epochs between service checkpoints written to
            the run store (progress visibility + resume bookkeeping).
        predict_workers: prediction process-pool size (§5.2 overlap);
            1 keeps the legacy inline predictor, which is the
            deterministic default.
        tenant: broker tenant this submission bills to (quotas, rate
            limits, budget accounting).
        priority: admission priority — higher claims first; a strictly
            higher priority may preempt running lower-priority work
            when the slot pool is bounded.
        deadline_hours: soft deadline from admission; approaching it
            raises the experiment's reclaim value (deadline pressure).
        budget_slot_hours: slot-hour budget; once spent, the broker
            shrinks the experiment to its one-slot guarantee.
    """

    workload: str = "cifar10"
    policy: str = "pop"
    generator: str = "random"
    machines: Optional[int] = None
    configs: int = 100
    seed: int = 0
    gen_seed: Optional[int] = None
    target: Optional[float] = None
    tmax_hours: float = 48.0
    stop_on_target: bool = True
    live: bool = False
    time_scale: float = 1e-3
    checkpoint_every: int = 25
    predict_workers: int = 1
    tenant: str = "default"
    priority: int = 0
    deadline_hours: Optional[float] = None
    budget_slot_hours: Optional[float] = None

    def __post_init__(self) -> None:
        for kind, reg, name in (
            ("workload", registry.WORKLOADS, self.workload),
            ("policy", registry.POLICIES, self.policy),
            ("generator", registry.GENERATORS, self.generator),
        ):
            if name not in reg:
                choices = ", ".join(sorted(reg))
                raise ValueError(
                    f"unknown {kind} {name!r} (choices: {choices})"
                )
        if self.configs < 1:
            raise ValueError("configs must be >= 1")
        if self.machines is not None and self.machines < 1:
            raise ValueError("machines must be >= 1 when given")
        if self.tmax_hours <= 0:
            raise ValueError("tmax_hours must be positive")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.predict_workers < 1:
            raise ValueError("predict_workers must be >= 1")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValueError("tenant must be a non-empty string")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ValueError("priority must be an integer")
        if self.deadline_hours is not None and self.deadline_hours <= 0:
            raise ValueError("deadline_hours must be positive when given")
        if self.budget_slot_hours is not None and self.budget_slot_hours <= 0:
            raise ValueError("budget_slot_hours must be positive when given")

    # -------------------------------------------------------- serialisation

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Submission":
        """Build a validated submission from a JSON payload.

        Unknown keys are rejected so a typoed field fails the request
        instead of silently running with defaults.
        """
        if not isinstance(data, dict):
            raise ValueError("submission must be a JSON object")
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ValueError(f"unknown submission fields: {', '.join(unknown)}")
        return cls(**data)

    # ------------------------------------------------------------- builders

    @property
    def resolved_machines(self) -> int:
        if self.machines is not None:
            return self.machines
        return registry.default_machines(self.workload)

    @property
    def resolved_gen_seed(self) -> int:
        if self.gen_seed is not None:
            return self.gen_seed
        return registry.default_gen_seed(self.workload)

    def build_workload(self) -> Workload:
        return registry.build_workload(self.workload)

    def build_policy(self) -> SchedulingPolicy:
        return registry.build_policy(self.policy)

    def build_generator(self, workload: Workload) -> HyperparameterGenerator:
        return registry.build_generator(
            self.generator,
            workload,
            max_configs=self.configs,
            gen_seed=self.resolved_gen_seed,
        )

    def build_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            num_machines=self.resolved_machines,
            num_configs=self.configs,
            seed=self.seed,
            target=self.target,
            tmax=self.tmax_hours * 3600.0,
            stop_on_target=self.stop_on_target,
            predict_workers=self.predict_workers,
        )
