"""HTTP client for the experiment service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the daemon's JSON API for programmatic use
and for the ``repro submit`` / ``status`` / ``watch`` CLI verbs.  HTTP
errors surface as :class:`ServiceError` carrying the status code and
the server's error message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional

from .store import TERMINAL_STATUSES

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP API call failed.

    Attributes:
        status: HTTP status code (0 when the daemon was unreachable).
        retry_after: seconds the server asked us to wait (from a
            ``Retry-After`` header on 429/503), else None.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


#: Statuses the broker uses for backpressure; the client retries these.
_RETRYABLE_STATUSES = (429, 503)


class ServiceClient:
    """Talks to one ``repro serve`` daemon.

    Broker backpressure (429 rate-limit/quota, 503 queue-full) is
    retried transparently with bounded exponential backoff, honouring
    the server's ``Retry-After`` header; other errors surface as
    :class:`ServiceError` immediately.  ``max_retries=0`` disables
    retrying.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_retries: int = 4,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        #: Total backpressure retries performed (observability/tests).
        self.retries = 0

    # ------------------------------------------------------------- plumbing

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as err:
            body = err.read()
            message = f"HTTP {err.code}"
            try:
                message = json.loads(body).get("error", message)
            except (ValueError, AttributeError):
                pass
            retry_after = None
            raw = err.headers.get("Retry-After") if err.headers else None
            if raw is not None:
                try:
                    retry_after = float(raw)
                except ValueError:
                    pass
            raise ServiceError(err.code, message, retry_after) from None
        except urllib.error.URLError as err:
            raise ServiceError(
                0, f"cannot reach service at {self.base_url}: {err.reason}"
            ) from None

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> bytes:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceError as err:
                if (
                    err.status not in _RETRYABLE_STATUSES
                    or attempt >= self.max_retries
                ):
                    raise
                # Exponential backoff, floored at the server's ask and
                # capped so a misbehaving Retry-After cannot park us.
                delay = self.backoff_base * (2.0 ** attempt)
                if err.retry_after is not None:
                    delay = max(delay, err.retry_after)
                self._sleep(min(delay, self.backoff_cap))
                self.retries += 1
                attempt += 1

    def _request_json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        return json.loads(self._request(method, path, payload))

    # ------------------------------------------------------------ endpoints

    def health(self) -> Dict[str, Any]:
        return self._request_json("GET", "/healthz")

    def submit(self, submission: Dict[str, Any]) -> Dict[str, Any]:
        """POST a submission; returns the created experiment record."""
        return self._request_json("POST", "/experiments", submission)

    def list_experiments(self) -> List[Dict[str, Any]]:
        return self._request_json("GET", "/experiments")["experiments"]

    def get(self, exp_id: str) -> Dict[str, Any]:
        return self._request_json("GET", f"/experiments/{exp_id}")

    def events(self, exp_id: str, offset: int = 0) -> List[Dict[str, Any]]:
        """Journal events from ``offset`` (NDJSON decoded client-side)."""
        raw = self._request(
            "GET", f"/experiments/{exp_id}/events?offset={int(offset)}"
        )
        return [
            json.loads(line)
            for line in raw.decode("utf-8").splitlines()
            if line.strip()
        ]

    def cancel(self, exp_id: str) -> Dict[str, Any]:
        return self._request_json("DELETE", f"/experiments/{exp_id}")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics").decode("utf-8")

    def telemetry(self) -> Dict[str, Any]:
        """JSON telemetry aggregate: per-node latest metrics, meta,
        ring-buffer history (what ``repro top`` polls)."""
        return self._request_json("GET", "/telemetry")

    def broker_status(self) -> Dict[str, Any]:
        """Resource-broker status: slot pool, per-experiment leases and
        targets, admission config, per-tenant counts."""
        return self._request_json("GET", "/broker")

    # -------------------------------------------------------------- studies

    def submit_study(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST a sweep-lab study (``{"study": name}`` or
        ``{"spec": {...}}``); returns the created study record."""
        return self._request_json("POST", "/studies", payload)

    def list_studies(self) -> List[Dict[str, Any]]:
        return self._request_json("GET", "/studies")["studies"]

    def get_study(self, study_id: str) -> Dict[str, Any]:
        return self._request_json("GET", f"/studies/{study_id}")

    def study_report(self, study_id: str) -> str:
        """The finished study's markdown report."""
        return self._request("GET", f"/studies/{study_id}/report").decode(
            "utf-8"
        )

    def watch_study(
        self,
        study_id: str,
        poll_seconds: float = 0.5,
        timeout: Optional[float] = None,
        on_update: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Poll a study until it completes or fails."""
        deadline = None if timeout is None else time.monotonic() + timeout
        last_seen: Optional[str] = None
        while True:
            record = self.get_study(study_id)
            fingerprint = json.dumps(
                [record["status"], record["cells_done"]], sort_keys=True
            )
            if fingerprint != last_seen:
                last_seen = fingerprint
                if on_update is not None:
                    on_update(record)
            if record["status"] in ("completed", "failed"):
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"study {study_id} still {record['status']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_seconds)

    # ---------------------------------------------------------------- watch

    def watch(
        self,
        exp_id: str,
        poll_seconds: float = 0.5,
        timeout: Optional[float] = None,
        on_update: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Poll an experiment until it reaches a terminal status.

        Args:
            exp_id: experiment id.
            poll_seconds: polling interval.
            timeout: give up after this many wall seconds (None = wait
                forever).
            on_update: called with the record whenever the
                status or checkpoint changes.

        Returns:
            The terminal experiment record.

        Raises:
            TimeoutError: the experiment did not finish in time.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        last_seen: Optional[str] = None
        while True:
            record = self.get(exp_id)
            fingerprint = json.dumps(
                [record["status"], record.get("checkpoint")], sort_keys=True
            )
            if fingerprint != last_seen:
                last_seen = fingerprint
                if on_update is not None:
                    on_update(record)
            if record["status"] in TERMINAL_STATUSES or record["status"] == "interrupted":
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"experiment {exp_id} still {record['status']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_seconds)
