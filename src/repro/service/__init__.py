"""The experiment service: durable runs, a daemon, and resumable state.

HyperDrive is *middleware* (§4–§5): a long-lived system that accepts
experiments, manages jobs across machines, and survives interruption.
This package is that deployment shape for the reproduction:

* :mod:`~repro.service.store` — a durable run store: experiment specs,
  status transitions, checkpoints, and results in SQLite, paired with
  a per-experiment JSONL write-ahead event journal.
* :mod:`~repro.service.submission` — the validated submission record a
  client hands the service (workload/policy/generator names plus
  experiment parameters).
* :mod:`~repro.service.executor` — runs one stored experiment against
  either runtime, wiring cancellation polls, periodic checkpoints, and
  the audit trail into the journal; ``resume`` reconstructs an
  interrupted experiment from the journal and continues it.
* :mod:`~repro.service.daemon` — ``repro serve``: a concurrent worker
  pool draining the queue plus a JSON HTTP API on stdlib
  ``http.server`` (submit / status / events / metrics / cancel).
* :mod:`~repro.service.client` — a stdlib-``urllib`` client for the
  HTTP API, used by ``repro submit`` / ``status`` / ``watch``.

See ``docs/service.md`` for the API reference, store schema, resume
semantics, and failure modes.
"""

from .client import ServiceClient, ServiceError
from .daemon import ExperimentService
from .executor import execute, resume
from .store import (
    CANCELLED,
    COMPLETED,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATUSES,
    RunRecord,
    RunStore,
)
from .submission import Submission

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "ExperimentService",
    "FAILED",
    "INTERRUPTED",
    "QUEUED",
    "RUNNING",
    "RunRecord",
    "RunStore",
    "ServiceClient",
    "ServiceError",
    "Submission",
    "TERMINAL_STATUSES",
    "execute",
    "resume",
]
