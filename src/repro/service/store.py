"""The durable run store: SQLite index + JSONL write-ahead journal.

Two complementary persistence layers per experiment:

* **SQLite** (``store.db``) holds the queryable index: submission,
  status, timestamps, latest checkpoint, final result.  It is what the
  daemon's workers claim work from and what ``GET /experiments``
  serves.
* **A JSONL event journal** (``journal/<id>.jsonl``) is the append-only
  record of everything that happened: submission, minted
  configurations, status transitions, periodic checkpoints, the audit
  trail streamed from the run's :class:`~repro.observability.Recorder`,
  and the final result.  Payload-bearing events (configs, checkpoints,
  results) are appended *before* the SQLite row is updated, so after a
  crash the journal is never behind the index — ``repro resume`` and
  ``GET /experiments/{id}/events`` both read it directly.

The store is safe for concurrent use from the daemon's worker and HTTP
threads: SQLite connections are short-lived per call, and journal
appends go through per-experiment cached handles behind a lock, flushed
on every event so a killed process loses nothing already reported.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from ..observability.exporters import EventExporter, encode_event
from .submission import Submission

__all__ = [
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "INTERRUPTED",
    "TERMINAL_STATUSES",
    "RunRecord",
    "RunStore",
    "JournalExporter",
]

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

#: Statuses an experiment can never leave.
TERMINAL_STATUSES = frozenset({COMPLETED, FAILED, CANCELLED})

_SCHEMA = """
CREATE TABLE IF NOT EXISTS experiments (
    id               TEXT PRIMARY KEY,
    submission       TEXT NOT NULL,
    status           TEXT NOT NULL,
    created_at       REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    checkpoint       TEXT,
    result           TEXT,
    error            TEXT,
    tenant           TEXT NOT NULL DEFAULT 'default',
    priority         INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_experiments_status
    ON experiments (status, created_at);
"""

# Columns added after the v1.1 schema; applied by ALTER TABLE when an
# older store.db is opened (CREATE IF NOT EXISTS won't grow a table).
_MIGRATIONS = {
    "tenant": "ALTER TABLE experiments"
              " ADD COLUMN tenant TEXT NOT NULL DEFAULT 'default'",
    "priority": "ALTER TABLE experiments"
                " ADD COLUMN priority INTEGER NOT NULL DEFAULT 0",
}


@dataclass
class RunRecord:
    """One experiment as stored (the SQLite row, decoded)."""

    id: str
    submission: Dict[str, Any]
    status: str
    created_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancel_requested: bool = False
    checkpoint: Optional[Dict[str, Any]] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        """JSON document served by the HTTP API.

        Args:
            include_result: drop the (large) result payload for list
                views; detail views keep it.
        """
        out: Dict[str, Any] = {
            "id": self.id,
            "submission": self.submission,
            "status": self.status,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
            "checkpoint": self.checkpoint,
            "error": self.error,
        }
        if include_result:
            out["result"] = self.result
        return out


class RunStore:
    """Durable experiment state under one root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = self.root / "store.db"
        self.journal_dir = self.root / "journal"
        self.journal_dir.mkdir(exist_ok=True)
        self._lock = threading.Lock()
        self._handles: Dict[str, IO[str]] = {}
        with self._connect() as conn:
            conn.executescript(_SCHEMA)
            columns = {
                row["name"]
                for row in conn.execute("PRAGMA table_info(experiments)")
            }
            for column, statement in _MIGRATIONS.items():
                if column not in columns:
                    conn.execute(statement)

    # ------------------------------------------------------------- plumbing

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.db_path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        return conn

    @staticmethod
    def _decode(row: sqlite3.Row) -> RunRecord:
        return RunRecord(
            id=row["id"],
            submission=json.loads(row["submission"]),
            status=row["status"],
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            cancel_requested=bool(row["cancel_requested"]),
            checkpoint=(
                json.loads(row["checkpoint"]) if row["checkpoint"] else None
            ),
            result=json.loads(row["result"]) if row["result"] else None,
            error=row["error"],
        )

    def _require(self, conn: sqlite3.Connection, exp_id: str) -> sqlite3.Row:
        row = conn.execute(
            "SELECT * FROM experiments WHERE id = ?", (exp_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"unknown experiment {exp_id!r}")
        return row

    def close(self) -> None:
        """Close cached journal handles (idempotent)."""
        with self._lock:
            for handle in self._handles.values():
                handle.close()
            self._handles.clear()

    # -------------------------------------------------------------- journal

    def journal_path(self, exp_id: str) -> Path:
        return self.journal_dir / f"{exp_id}.jsonl"

    def append_event(self, exp_id: str, kind: str, **payload: Any) -> None:
        """Append one event to the experiment's journal and flush it.

        The flush-per-event discipline is what makes the journal a
        write-ahead log: anything acknowledged here survives a process
        kill, even if the SQLite mirror never happens.
        """
        event = {"kind": kind, "wall_time": time.time(), **payload}
        line = encode_event(event)
        with self._lock:
            handle = self._handles.get(exp_id)
            if handle is None:
                handle = self.journal_path(exp_id).open("a", encoding="utf-8")
                self._handles[exp_id] = handle
            handle.write(line)
            handle.write("\n")
            handle.flush()

    def read_events(self, exp_id: str, offset: int = 0) -> List[Dict[str, Any]]:
        """Decoded journal events, skipping the first ``offset`` lines."""
        path = self.journal_path(exp_id)
        if not path.exists():
            return []
        events = []
        with path.open("r", encoding="utf-8") as handle:
            for index, line in enumerate(handle):
                if index < offset:
                    continue
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events

    def journal_exporter(self, exp_id: str) -> "JournalExporter":
        """An observability exporter that streams into the journal."""
        return JournalExporter(self, exp_id)

    def _close_journal(self, exp_id: str) -> None:
        with self._lock:
            handle = self._handles.pop(exp_id, None)
        if handle is not None:
            handle.close()

    # ------------------------------------------------------------ lifecycle

    def submit(self, submission: Union[Submission, Dict[str, Any]]) -> RunRecord:
        """Persist a new experiment in the queue; returns its record."""
        if isinstance(submission, dict):
            submission = Submission.from_dict(submission)
        exp_id = f"exp-{uuid.uuid4().hex[:12]}"
        payload = submission.to_dict()
        now = time.time()
        self.append_event(exp_id, "submitted", submission=payload)
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO experiments"
                " (id, submission, status, created_at, tenant, priority)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    exp_id,
                    json.dumps(payload),
                    QUEUED,
                    now,
                    payload.get("tenant", "default"),
                    int(payload.get("priority", 0)),
                ),
            )
        return RunRecord(
            id=exp_id, submission=payload, status=QUEUED, created_at=now
        )

    def get(self, exp_id: str) -> Optional[RunRecord]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM experiments WHERE id = ?", (exp_id,)
            ).fetchone()
        return self._decode(row) if row is not None else None

    def list_experiments(self) -> List[RunRecord]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM experiments ORDER BY created_at, id"
            ).fetchall()
        return [self._decode(row) for row in rows]

    def claim_next_queued(self) -> Optional[RunRecord]:
        """Atomically move the best queued experiment to RUNNING.

        "Best" is priority DESC, then created-at FIFO — the broker's
        dispatch order.  Safe against concurrent workers: the
        compare-and-set UPDATE only wins for one claimant; losers retry
        on the next row.
        """
        with self._connect() as conn:
            while True:
                row = conn.execute(
                    "SELECT id FROM experiments WHERE status = ?"
                    " ORDER BY priority DESC, created_at, id LIMIT 1",
                    (QUEUED,),
                ).fetchone()
                if row is None:
                    return None
                cursor = conn.execute(
                    "UPDATE experiments SET status = ?, started_at = ?"
                    " WHERE id = ? AND status = ?",
                    (RUNNING, time.time(), row["id"], QUEUED),
                )
                conn.commit()
                if cursor.rowcount:
                    self.append_event(row["id"], "status", status=RUNNING)
                    return self.get(row["id"])

    def claim_specific(self, exp_id: str) -> Optional[RunRecord]:
        """Atomically claim one specific queued (or interrupted)
        experiment — the broker's admission layer picks *which* id,
        this CAS makes exactly one worker win it.  Returns None when
        someone else won or the experiment left the claimable states.
        """
        with self._connect() as conn:
            for from_status in (QUEUED, INTERRUPTED):
                cursor = conn.execute(
                    "UPDATE experiments SET status = ?, started_at = ?"
                    " WHERE id = ? AND status = ?",
                    (RUNNING, time.time(), exp_id, from_status),
                )
                conn.commit()
                if cursor.rowcount:
                    self.append_event(exp_id, "status", status=RUNNING)
                    return self.get(exp_id)
        return None

    def mark_interrupted(self, exp_id: str) -> None:
        """RUNNING -> INTERRUPTED: the run was preempted (broker
        reclaim) or otherwise stopped resumable-but-unfinished.  Not a
        terminal status — a later claim resumes it by deterministic
        replay, to the same result."""
        self.append_event(exp_id, "status", status=INTERRUPTED)
        with self._connect() as conn:
            self._require(conn, exp_id)
            conn.execute(
                "UPDATE experiments SET status = ? WHERE id = ?"
                " AND status = ?",
                (INTERRUPTED, exp_id, RUNNING),
            )
        self._close_journal(exp_id)

    def queue_entries(self) -> List[Dict[str, Any]]:
        """Queued + running rows as lightweight admission entries
        (id, tenant, priority, created_at, status, machines) in
        creation order."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT id, submission, tenant, priority, created_at,"
                " status"
                " FROM experiments WHERE status IN (?, ?, ?)"
                " ORDER BY created_at, id",
                (QUEUED, RUNNING, INTERRUPTED),
            ).fetchall()
        entries = []
        for row in rows:
            submission = json.loads(row["submission"])
            entries.append(
                {
                    "exp_id": row["id"],
                    "tenant": row["tenant"],
                    "priority": row["priority"],
                    "created_at": row["created_at"],
                    "status": row["status"],
                    "machines": Submission.from_dict(
                        submission
                    ).resolved_machines,
                }
            )
        return entries

    def mark_running(self, exp_id: str) -> None:
        """Move a queued (or resuming interrupted) experiment to RUNNING."""
        self.append_event(exp_id, "status", status=RUNNING)
        with self._connect() as conn:
            row = self._require(conn, exp_id)
            if row["status"] not in (QUEUED, INTERRUPTED):
                raise ValueError(
                    f"experiment {exp_id} is {row['status']}, not startable"
                )
            conn.execute(
                "UPDATE experiments SET status = ?, started_at = ?"
                " WHERE id = ?",
                (RUNNING, time.time(), exp_id),
            )

    def mark_finished(
        self,
        exp_id: str,
        status: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Record a terminal status (journal first, then the index)."""
        if status not in TERMINAL_STATUSES:
            raise ValueError(f"{status!r} is not a terminal status")
        self.append_event(exp_id, "status", status=status, error=error)
        if result is not None:
            self.append_event(exp_id, "result", result=result)
        with self._connect() as conn:
            self._require(conn, exp_id)
            conn.execute(
                "UPDATE experiments SET status = ?, finished_at = ?,"
                " result = ?, error = ? WHERE id = ?",
                (
                    status,
                    time.time(),
                    encode_event(result) if result is not None else None,
                    error,
                    exp_id,
                ),
            )
        self._close_journal(exp_id)

    def request_cancel(self, exp_id: str) -> RunRecord:
        """Ask a queued/running experiment to stop.

        A queued experiment is cancelled immediately (no worker will
        claim it); a running one gets ``cancel_requested`` set, which
        the executor's stop-check polls.  Raises ``KeyError`` for an
        unknown id and ``ValueError`` once the experiment is terminal.
        """
        with self._connect() as conn:
            row = self._require(conn, exp_id)
            status = row["status"]
            if status in TERMINAL_STATUSES:
                raise ValueError(f"experiment {exp_id} is already {status}")
        if status == QUEUED:
            # Not claimed yet: cancel without waiting for a worker.
            self.append_event(exp_id, "cancel_requested")
            with self._connect() as conn:
                cursor = conn.execute(
                    "UPDATE experiments SET status = ?, finished_at = ?,"
                    " cancel_requested = 1 WHERE id = ? AND status = ?",
                    (CANCELLED, time.time(), exp_id, QUEUED),
                )
                conn.commit()
            if cursor.rowcount:
                self.append_event(exp_id, "status", status=CANCELLED)
                self._close_journal(exp_id)
                record = self.get(exp_id)
                assert record is not None
                return record
            # Lost the race with a claiming worker; fall through to the
            # running-experiment path.
        self.append_event(exp_id, "cancel_requested")
        with self._connect() as conn:
            conn.execute(
                "UPDATE experiments SET cancel_requested = 1 WHERE id = ?",
                (exp_id,),
            )
        record = self.get(exp_id)
        assert record is not None
        return record

    def cancel_requested(self, exp_id: str) -> bool:
        with self._connect() as conn:
            row = self._require(conn, exp_id)
        return bool(row["cancel_requested"])

    def recover_interrupted(self) -> List[str]:
        """Mark stale RUNNING experiments as INTERRUPTED.

        Called when a store is (re)opened by a daemon or ``repro
        resume``: any experiment still marked running belonged to a
        process that died.  Returns the affected ids.
        """
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT id FROM experiments WHERE status = ?", (RUNNING,)
            ).fetchall()
        interrupted = []
        for row in rows:
            self.append_event(row["id"], "status", status=INTERRUPTED)
            with self._connect() as conn:
                conn.execute(
                    "UPDATE experiments SET status = ? WHERE id = ?"
                    " AND status = ?",
                    (INTERRUPTED, row["id"], RUNNING),
                )
            interrupted.append(row["id"])
        return interrupted

    # ------------------------------------------------------ run-time payload

    def record_configs(
        self, exp_id: str, configs: List[Dict[str, Any]]
    ) -> None:
        """Journal the full minted configuration list (once per run).

        This is the replay anchor: with the submission (seeds) and this
        exact configuration stream, a deterministic runtime reproduces
        the experiment's trajectory — the basis of ``repro resume``.
        """
        self.append_event(exp_id, "configs", configs=configs)

    def minted_configs(self, exp_id: str) -> Optional[List[Dict[str, Any]]]:
        """The journaled configuration list, or None if never minted."""
        configs = None
        for event in self.read_events(exp_id):
            if event.get("kind") == "configs":
                configs = event["configs"]
        return configs

    def save_checkpoint(self, exp_id: str, state: Dict[str, Any]) -> None:
        """Persist a progress checkpoint (journal first, then index)."""
        self.append_event(exp_id, "checkpoint", state=state)
        with self._connect() as conn:
            conn.execute(
                "UPDATE experiments SET checkpoint = ? WHERE id = ?",
                (encode_event(state), exp_id),
            )

    def latest_checkpoint(self, exp_id: str) -> Optional[Dict[str, Any]]:
        record = self.get(exp_id)
        if record is None:
            raise KeyError(f"unknown experiment {exp_id!r}")
        return record.checkpoint


class JournalExporter(EventExporter):
    """Streams a run's audit trail into its store journal.

    Each observability event (audit record or span) is wrapped as a
    journal event of kind ``audit`` so service-level events and the
    scheduler's decision trail interleave in one ordered log.
    """

    def __init__(self, store: RunStore, exp_id: str) -> None:
        self._store = store
        self._exp_id = exp_id
        self.events_written = 0

    def export(self, event) -> None:
        self._store.append_event(self._exp_id, "audit", record=dict(event))
        self.events_written += 1
