"""The multi-experiment daemon behind ``repro serve``.

An :class:`ExperimentService` owns a :class:`~repro.service.store.RunStore`,
a pool of worker threads that claim queued experiments and drive them
through :mod:`~repro.service.executor`, and a JSON HTTP API on stdlib
``http.server``:

========  ==============================  =======================================
method    path                            purpose
========  ==============================  =======================================
GET       ``/healthz``                    liveness + version
POST      ``/experiments``                submit a :class:`Submission` JSON body
                                          (broker admission gates apply: 429
                                          rate-limit/quota, 503 queue-full,
                                          both with ``Retry-After``)
GET       ``/experiments``                list all experiments (no result bodies)
GET       ``/experiments/{id}``           one experiment incl. checkpoint/result
GET       ``/experiments/{id}/events``    the event journal as NDJSON
                                          (``?offset=N`` skips the first N)
DELETE    ``/experiments/{id}``           request cancellation
GET       ``/metrics``                    Prometheus-style exposition: the
                                          service's own metrics merged with
                                          every aggregated node's registry,
                                          node-labelled
GET       ``/telemetry``                  JSON telemetry aggregate: per-node
                                          latest metrics + meta, ring-buffer
                                          history (``repro top`` reads this)
GET       ``/broker``                     resource-broker status: slot pool,
                                          per-experiment leases/targets,
                                          admission config, tenant counts
GET       ``/fleet``                      live per-experiment fleet/cost status
POST      ``/fleet/revoke``               queue a spot revocation against a
                                          live cluster fleet (elastic mode)
POST      ``/studies``                    submit a sweep-lab study
                                          (``{"study": name}`` or
                                          ``{"spec": {...}}``; docs/lab.md)
GET       ``/studies``                    list hosted studies
GET       ``/studies/{id}``               one study's status/progress
GET       ``/studies/{id}/report``        the finished report as markdown
========  ==============================  =======================================

On startup the service marks experiments a dead daemon left RUNNING as
INTERRUPTED; with ``resume_interrupted=True`` the workers replay them
(:func:`~repro.service.executor.resume`) before taking new work.
"""

from __future__ import annotations

import json
import logging
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Union
from urllib.parse import parse_qs, urlparse

from ..autoscale import (
    Autoscaler,
    CostModel,
    FleetControl,
    FleetOptions,
    PoolAutoscaler,
)
from ..broker import (
    AdmissionController,
    AdmissionError,
    QueueEntry,
    RateLimited,
    RateLimiter,
    ResourceBroker,
    SlotPool,
    TenantQuota,
    parse_quota_spec,
)
from ..observability import Recorder
from ..observability.aggregator import TelemetryAggregator
from ..observability.exporters import JsonlExporter, encode_event
from ..observability.metrics import MetricsRegistry
from . import executor
from .store import INTERRUPTED, QUEUED, RunStore
from .submission import Submission

__all__ = ["ExperimentService"]

logger = logging.getLogger(__name__)

_EXPERIMENT_ROUTE = re.compile(r"^/experiments/([A-Za-z0-9_-]+)(/events)?$")
_STUDY_ROUTE = re.compile(r"^/studies/([A-Za-z0-9_-]+)(/report)?$")


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "ExperimentService"


class ExperimentService:
    """Durable experiment daemon: worker pool + HTTP endpoint."""

    def __init__(
        self,
        root: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        resume_interrupted: bool = False,
        cluster_workers: Optional[int] = None,
        slots: Optional[int] = None,
        tenant_quotas: Optional[
            Union[str, Dict[str, TenantQuota]]
        ] = None,
        max_queue_depth: Optional[int] = None,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[int] = None,
        autoscale: Optional[tuple] = None,
        spot_fraction: float = 0.0,
        spot_rate: float = 0.3,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if cluster_workers is not None and cluster_workers < 1:
            raise ValueError("cluster_workers must be >= 1")
        if slots is not None and slots < 1:
            raise ValueError("slots must be >= 1 when given")
        if autoscale is not None:
            lo, hi = int(autoscale[0]), int(autoscale[1])
            if lo < 1 or hi < lo:
                raise ValueError("autoscale bounds must satisfy 1 <= min <= max")
            autoscale = (lo, hi)
            if cluster_workers is None:
                cluster_workers = hi
            elif cluster_workers != hi:
                raise ValueError(
                    "autoscale max must equal cluster_workers "
                    f"({hi} != {cluster_workers})"
                )
            if slots is None:
                # An elastic pool starts at the fleet minimum; the pool
                # autoscaler grows it under pressure.
                slots = lo
        if not 0.0 <= spot_fraction <= 1.0:
            raise ValueError("spot_fraction must be in [0, 1]")
        # When set, *live* submissions execute on the multi-process
        # cluster runtime with this many worker processes per
        # experiment (see docs/cluster.md).  Simulator submissions
        # always run in-process, so `workers` — not this — bounds how
        # many simulated experiments run concurrently.
        self.cluster_workers = cluster_workers
        self.store = RunStore(root)
        self.metrics = MetricsRegistry()
        # The multi-tenant resource broker (docs/service.md): one slot
        # pool shared by every concurrent experiment.  `slots=None`
        # keeps the pool unlimited — every run gets the machines it
        # asked for, pre-broker behaviour.  Admission/lease decisions
        # are audit-journaled to <root>/broker.jsonl and counted into
        # the service registry as broker_* series.
        quotas = tenant_quotas
        if isinstance(quotas, str):
            quotas = parse_quota_spec(quotas)
        quotas = dict(quotas or {})
        default_quota = quotas.pop("*", None)
        self._broker_recorder = Recorder(
            metrics=self.metrics,
            exporter=JsonlExporter(self.store.root / "broker.jsonl"),
        )
        self.broker = ResourceBroker(
            pool=SlotPool(
                total_slots=slots, recorder=self._broker_recorder
            ),
            admission=AdmissionController(
                quotas=quotas,
                default_quota=default_quota,
                max_queue_depth=max_queue_depth,
                rate_limiter=RateLimiter(
                    rate_per_minute=rate_limit, burst=rate_burst
                ),
            ),
            recorder=self._broker_recorder,
        )
        # Elastic, cost-aware fleets (docs/cluster.md "Elasticity and
        # cost"): one FleetOptions template stamped per cluster run,
        # one shared cost.jsonl trail, one FleetControl handle per live
        # run (POST /fleet/revoke), and a PoolAutoscaler steering the
        # broker's slot pool from admission-queue pressure.
        self.autoscale = autoscale
        self.spot_fraction = spot_fraction
        self._fleet_template: Optional[FleetOptions] = None
        self._cost_exporter: Optional[JsonlExporter] = None
        self._pool_autoscaler: Optional[PoolAutoscaler] = None
        if autoscale is not None or spot_fraction > 0.0:
            self._cost_exporter = JsonlExporter(
                self.store.root / "cost.jsonl"
            )
            self._fleet_template = FleetOptions(
                autoscale=autoscale,
                spot_fraction=spot_fraction,
                cost_model=CostModel(spot_rate=spot_rate),
                cost_exporter=self._cost_exporter,
            )
        if autoscale is not None:
            self._pool_autoscaler = PoolAutoscaler(
                self.broker.pool,
                Autoscaler(autoscale[0], autoscale[1],
                           cooldown_seconds=0.5),
                queue_depth=self._admission_queue_depth,
                interval=0.25,
                recorder=self._broker_recorder,
            )
        self._fleets: Dict[str, FleetControl] = {}
        self._fleets_lock = threading.Lock()
        # Experiment ids the broker fully preempted: their rows sit at
        # INTERRUPTED, and only ids in this set are re-claimed by the
        # worker loop (other interrupted rows need `repro resume` or
        # --resume-interrupted, as before).
        self._requeue: set = set()
        self._requeue_lock = threading.Lock()
        # Telemetry plane: executors ingest each run's registry here
        # (node = experiment id) and cluster runs additionally ship
        # per-worker registries into it; /telemetry and the merged
        # /metrics render from it.
        self.aggregator = TelemetryAggregator()
        self._m_submitted = self.metrics.counter(
            "service_experiments_submitted_total",
            help="Experiments accepted by the service",
        )
        self._m_finished = self.metrics.counter(
            "service_experiments_finished_total",
            help="Experiments that reached a terminal status, by status",
        )
        self._m_running = self.metrics.gauge(
            "service_experiments_running",
            help="Experiments currently executing on a worker",
        )
        self._m_epochs = self.metrics.counter(
            "service_epochs_trained_total",
            help="Epochs trained across all completed experiments",
        )
        self._m_http = self.metrics.counter(
            "service_http_requests_total",
            help="HTTP API requests, by method and status code",
        )
        self._m_studies_submitted = self.metrics.counter(
            "service_studies_submitted_total",
            help="Sweep-lab studies accepted by the service",
        )
        self._m_studies_finished = self.metrics.counter(
            "service_studies_finished_total",
            help="Studies that reached a terminal status, by status",
        )
        # Hosted sweep-lab studies (see docs/lab.md).  Status lives in
        # memory; the cell store under <root>/studies/<id>/ is durable,
        # so a study a dead daemon left behind finishes offline with
        # `repro sweep resume --out <root>/studies/<id>`.
        self._studies: Dict[str, Dict[str, Any]] = {}
        self._studies_lock = threading.Lock()
        self._workers = workers
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._resume_lock = threading.Lock()
        interrupted = self.store.recover_interrupted()
        self._resume_queue: List[str] = interrupted if resume_interrupted else []
        if interrupted:
            logger.info(
                "found %d interrupted experiment(s): %s%s",
                len(interrupted),
                ", ".join(interrupted),
                " (will resume)" if resume_interrupted else "",
            )
        self._server = _ServiceHTTPServer((host, port), _Handler)
        self._server.service = self

    # ------------------------------------------------------------ addresses

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the HTTP listener and the worker pool (non-blocking)."""
        http_thread = threading.Thread(
            target=self._server.serve_forever,
            name="service-http",
            daemon=True,
        )
        http_thread.start()
        self._threads.append(http_thread)
        if self._pool_autoscaler is not None:
            self._pool_autoscaler.start()
        for index in range(self._workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"service-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)

    def stop(self, timeout: float = 10.0) -> None:
        """Shut down the listener and wait for workers to finish the
        experiment they are on (idempotent)."""
        self._stop.set()
        if self._pool_autoscaler is not None:
            self._pool_autoscaler.stop()
        self._server.shutdown()
        self._server.server_close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self._broker_recorder.close()
        if self._cost_exporter is not None:
            self._cost_exporter.close()
        self.store.close()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM into the graceful-stop path.

        SIGTERM matters: shells without job control start ``&``
        background jobs with SIGINT *ignored*, so ``kill -INT`` from a
        CI script never reaches us — ``kill -TERM`` is the reliable
        way to ask a scripted daemon to flush and exit.  Call this as
        soon as the service is up (the CLI does, before it prints the
        banner) so there is no window where TERM still hard-kills.
        """
        signal.signal(signal.SIGTERM, lambda *_: self._stop.set())

    def serve_until_interrupted(self) -> None:
        """Block until SIGTERM/SIGINT, then stop gracefully."""
        try:
            self.install_signal_handlers()
        except ValueError:
            pass  # not the main thread (embedded use); rely on stop()
        try:
            while not self._stop.wait(0.5):
                pass
            logger.info("termination requested; shutting down")
        except KeyboardInterrupt:
            logger.info("interrupt received; shutting down")
        finally:
            self.stop()

    # -------------------------------------------------------------- workers

    def _next_resume(self) -> Optional[str]:
        with self._resume_lock:
            return self._resume_queue.pop(0) if self._resume_queue else None

    def queue_entries(self) -> List[QueueEntry]:
        """The store's queue snapshot as admission entries.

        Broker-preempted experiments (rows parked at INTERRUPTED whose
        ids sit in the requeue set) re-enter as *queued* so the broker
        can re-dispatch them; other interrupted rows are invisible here.
        """
        with self._requeue_lock:
            requeue = set(self._requeue)
        entries: List[QueueEntry] = []
        for row in self.store.queue_entries():
            status = row["status"]
            if status == INTERRUPTED:
                if row["exp_id"] not in requeue:
                    continue
                status = QUEUED
            entries.append(
                QueueEntry(
                    exp_id=row["exp_id"],
                    tenant=row["tenant"],
                    priority=int(row["priority"]),
                    created_at=float(row["created_at"]),
                    status=status,
                    machines=int(row.get("machines", 1)),
                )
            )
        return entries

    def _claim_next(self) -> Optional[tuple]:
        """One worker's claim attempt: the broker picks the id
        (priority, quota, and pool-capacity aware), the store's
        compare-and-set decides which worker wins it.  Returns
        ``(exp_id, resuming)`` or None."""
        exp_id = self.broker.claim_next(self.queue_entries())
        if exp_id is None:
            return None
        record = self.store.claim_specific(exp_id)
        if record is None:
            return None  # another worker won the CAS; retry next tick
        with self._requeue_lock:
            resuming = exp_id in self._requeue
            self._requeue.discard(exp_id)
        return exp_id, resuming

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            resume_id = self._next_resume()
            if resume_id is not None:
                self._execute(resume_id, resuming=True)
                continue
            claimed = self._claim_next()
            if claimed is None:
                self._stop.wait(0.05)
                continue
            exp_id, resuming = claimed
            self._execute(exp_id, resuming=resuming)

    def _execute(self, exp_id: str, resuming: bool) -> None:
        self._m_running.inc()
        fleet_control: Optional[FleetControl] = None
        if self._fleet_template is not None and self.cluster_workers:
            fleet_control = FleetControl()
            with self._fleets_lock:
                self._fleets[exp_id] = fleet_control
        try:
            run = executor.resume if resuming else executor.execute
            final = run(
                self.store, exp_id, cluster_workers=self.cluster_workers,
                aggregator=self.aggregator, broker=self.broker,
                fleet=self._fleet_template, fleet_control=fleet_control,
            )
        except Exception:
            logger.exception("experiment %s failed", exp_id)
            self._m_finished.inc(status="failed")
        else:
            if final.status == INTERRUPTED:
                # Broker preemption: park the id for automatic
                # re-dispatch once admission lets it back in.
                with self._requeue_lock:
                    self._requeue.add(exp_id)
            else:
                self._m_finished.inc(status=final.status)
                if final.result is not None:
                    self._m_epochs.inc(final.result.get("epochs_trained", 0))
        finally:
            if fleet_control is not None:
                with self._fleets_lock:
                    self._fleets.pop(exp_id, None)
            self._m_running.dec()

    # ------------------------------------------------------------- HTTP API

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        submission = Submission.from_dict(payload)
        try:
            self.broker.admission.admit(
                submission.tenant, self.queue_entries()
            )
        except AdmissionError as exc:
            self.broker.record_rejection(type(exc).__name__)
            raise
        record = self.store.submit(submission)
        self._m_submitted.inc()
        return record.to_dict()

    def broker_status(self) -> Dict[str, Any]:
        """The ``GET /broker`` document: pool, per-experiment lease
        state, admission config, and per-tenant counts."""
        status = self.broker.status()
        status["tenants"] = self.broker.admission.tenant_counts(
            self.queue_entries()
        )
        fleets = self.fleet_status()
        if fleets:
            status["fleets"] = fleets
        return status

    # --------------------------------------------------------------- fleets

    def _admission_queue_depth(self) -> int:
        """Unmet slot demand — the signal the pool autoscaler scales
        on.  Denominated in *slots*, not experiments: a queued run
        wants its full machine count, a running one wants whatever the
        pool has not granted it yet.  (An experiment-count signal
        starves multi-machine runs: the pool never grows past the
        number of experiments, and two 4-machine runs on a 2-slot pool
        preempt each other forever.)"""
        demand = 0
        for entry in self.queue_entries():
            if entry.status == QUEUED:
                demand += entry.machines
            else:
                demand += max(
                    0, entry.machines - self.broker.pool.held(entry.exp_id)
                )
        return demand

    def fleet_status(self) -> Dict[str, Dict[str, Any]]:
        """Per-experiment fleet/cost status published by live runs."""
        with self._fleets_lock:
            controls = dict(self._fleets)
        return {
            exp_id: control.status() for exp_id, control in controls.items()
        }

    def revoke_spot(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Queue one spot revocation against a live cluster run
        (``POST /fleet/revoke``).  The body may name an ``experiment``
        (required when several fleets are live), a ``machine_id``
        (otherwise the runtime picks an up spot worker), and a
        ``grace`` window in experiment seconds."""
        if not isinstance(payload, dict):
            raise ValueError("revocation body must be a JSON object")
        exp_id = payload.get("experiment")
        with self._fleets_lock:
            if exp_id is None:
                if len(self._fleets) != 1:
                    raise ValueError(
                        "specify 'experiment': "
                        f"{len(self._fleets)} fleet(s) live"
                    )
                exp_id, control = next(iter(self._fleets.items()))
            else:
                control = self._fleets.get(exp_id)
                if control is None:
                    raise KeyError(f"no live fleet for experiment {exp_id!r}")
        grace = payload.get("grace")
        machine_id = payload.get("machine_id")
        control.request_revocation(
            machine_id=machine_id,
            grace=None if grace is None else float(grace),
        )
        return {
            "experiment": exp_id,
            "machine_id": machine_id,
            "grace": grace,
            "queued": True,
        }

    def refresh_service_telemetry(self) -> None:
        """Refresh per-tenant broker gauges and mirror the service's
        own registry into the telemetry plane as node ``service`` so
        ``repro top`` (which reads ``/telemetry``) sees broker_* series
        alongside per-experiment nodes."""
        self.broker.export_tenant_gauges(self.queue_entries())
        self.aggregator.ingest_registry(
            "service", self.metrics, meta={"role": "service"}
        )

    # ------------------------------------------------------------- studies

    def submit_study(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Accept a sweep-lab study and run it on a background thread.

        The body names either a built-in study (``{"study": "..."}``)
        or carries a full spec (``{"spec": {...}}``), plus an optional
        ``max_workers`` for the cell fan-out.
        """
        import uuid

        from ..lab import StudySpec, builtin_study

        if not isinstance(payload, dict):
            raise ValueError("study submission must be a JSON object")
        if ("study" in payload) == ("spec" in payload):
            raise ValueError("provide exactly one of 'study' or 'spec'")
        if "study" in payload:
            spec = builtin_study(payload["study"])
        else:
            if not isinstance(payload["spec"], dict):
                raise ValueError("'spec' must be a JSON object")
            spec = StudySpec.from_dict(payload["spec"])
        max_workers = payload.get("max_workers")
        if max_workers is not None and (
            not isinstance(max_workers, int) or max_workers < 1
        ):
            raise ValueError("max_workers must be a positive integer")
        # Studies run in-process (not on the slot pool), but their
        # submissions still pass the tenant's rate-limit gate.
        tenant = getattr(spec, "tenant", "default")
        granted, retry_after = \
            self.broker.admission.rate_limiter.check(tenant)
        if not granted:
            self.broker.record_rejection("RateLimited")
            raise RateLimited(tenant, retry_after)
        study_id = f"study-{uuid.uuid4().hex[:8]}"
        out_dir = self.store.root / "studies" / study_id
        record = {
            "id": study_id,
            "name": spec.name,
            "tenant": tenant,
            "status": "queued",
            "cells_total": len(spec.cells()),
            "cells_done": 0,
            "out_dir": str(out_dir),
            "winner": None,
            "error": None,
        }
        with self._studies_lock:
            self._studies[study_id] = record
        self._m_studies_submitted.inc()
        thread = threading.Thread(
            target=self._run_study,
            args=(study_id, spec, out_dir, max_workers),
            name=study_id,
            daemon=True,
        )
        thread.start()
        return dict(record)

    def list_studies(self) -> List[Dict[str, Any]]:
        with self._studies_lock:
            return [dict(record) for record in self._studies.values()]

    def get_study(self, study_id: str) -> Optional[Dict[str, Any]]:
        with self._studies_lock:
            record = self._studies.get(study_id)
            return None if record is None else dict(record)

    def _set_study(self, study_id: str, **updates: Any) -> None:
        with self._studies_lock:
            self._studies[study_id].update(updates)

    def _run_study(
        self,
        study_id: str,
        spec: Any,
        out_dir: Path,
        max_workers: Optional[int],
    ) -> None:
        from ..lab import CellStore, StudyRunner, analyze, render_json
        from ..lab import render_markdown as lab_render_markdown
        from ..observability import Recorder

        # Share the service registry so lab_cells_done / lab_cell_
        # seconds stream onto GET /metrics while the sweep runs.
        recorder = Recorder(metrics=self.metrics)
        try:
            store = CellStore(out_dir)
            runner = StudyRunner(
                spec, store, recorder=recorder, max_workers=max_workers
            )
            self._set_study(study_id, status="running")

            def on_cell(progress) -> None:
                self._set_study(study_id, cells_done=progress.done)

            runner.run(on_cell=on_cell)
            analysis = analyze(spec, store)
            store.write_report(
                lab_render_markdown(analysis), render_json(analysis)
            )
            self._set_study(
                study_id,
                status="completed",
                winner=analysis.overall_winner,
            )
            self._m_studies_finished.inc(status="completed")
        except Exception as exc:
            logger.exception("study %s failed", study_id)
            self._set_study(
                study_id,
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
            )
            self._m_studies_finished.inc(status="failed")


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`ExperimentService`."""

    server: _ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing

    @property
    def service(self) -> ExperimentService:
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.service._m_http.inc(method=self.command, code=str(code))

    def _send_json(
        self,
        code: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send(
            code,
            (encode_event(payload) + "\n").encode("utf-8"),
            "application/json",
            headers=headers,
        )

    def _send_error_json(
        self,
        code: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_json(code, {"error": message}, headers=headers)

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw)

    def _dispatch(self, method: str) -> None:
        try:
            self._route(method)
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:
            logger.exception("unhandled error serving %s %s", method, self.path)
            try:
                self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _route(self, method: str) -> None:
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            from .. import __version__

            self._send_json(200, {"status": "ok", "version": __version__})
            return
        if method == "GET" and path == "/metrics":
            self.service.refresh_service_telemetry()
            body = self.service.aggregator.render_text(
                base=self.service.metrics
            ).encode("utf-8")
            self._send(200, body, "text/plain; version=0.0.4")
            return
        if method == "GET" and path == "/telemetry":
            self.service.refresh_service_telemetry()
            self._send_json(200, self.service.aggregator.to_dict())
            return
        if method == "GET" and path == "/broker":
            self._send_json(200, self.service.broker_status())
            return
        if method == "GET" and path == "/fleet":
            self._send_json(200, {"fleets": self.service.fleet_status()})
            return
        if method == "POST" and path == "/fleet/revoke":
            self._post_fleet_revoke()
            return
        if path == "/experiments":
            if method == "POST":
                self._post_experiment()
                return
            if method == "GET":
                records = self.service.store.list_experiments()
                self._send_json(
                    200,
                    {
                        "experiments": [
                            record.to_dict(include_result=False)
                            for record in records
                        ]
                    },
                )
                return
        if path == "/studies":
            if method == "POST":
                self._post_study()
                return
            if method == "GET":
                self._send_json(200, {"studies": self.service.list_studies()})
                return
        match = _STUDY_ROUTE.match(path)
        if match is not None and method == "GET":
            study_id, report = match.group(1), match.group(2)
            record = self.service.get_study(study_id)
            if record is None:
                self._send_error_json(404, f"unknown study {study_id!r}")
                return
            if not report:
                self._send_json(200, record)
                return
            report_path = Path(record["out_dir"]) / "report.md"
            if record["status"] != "completed" or not report_path.exists():
                self._send_error_json(
                    409,
                    f"study {study_id!r} has no report yet "
                    f"(status: {record['status']})",
                )
                return
            self._send(
                200, report_path.read_bytes(), "text/markdown; charset=utf-8"
            )
            return
        match = _EXPERIMENT_ROUTE.match(path)
        if match is not None:
            exp_id, events = match.group(1), match.group(2)
            if events and method == "GET":
                self._get_events(exp_id, parsed.query)
                return
            if not events and method == "GET":
                self._get_experiment(exp_id)
                return
            if not events and method == "DELETE":
                self._delete_experiment(exp_id)
                return
        self._send_error_json(404, f"no route for {method} {path}")

    def _post_experiment(self) -> None:
        try:
            payload = self._read_json_body()
            record = self.service.submit(payload)
        except AdmissionError as exc:
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = str(int(round(exc.retry_after)))
            self._send_error_json(exc.http_status, str(exc), headers=headers)
            return
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(201, record)

    def _post_study(self) -> None:
        try:
            payload = self._read_json_body()
            record = self.service.submit_study(payload)
        except AdmissionError as exc:
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = str(int(round(exc.retry_after)))
            self._send_error_json(exc.http_status, str(exc), headers=headers)
            return
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(201, record)

    def _post_fleet_revoke(self) -> None:
        try:
            payload = self._read_json_body()
            record = self.service.revoke_spot(payload)
        except KeyError as exc:
            self._send_error_json(404, str(exc.args[0]))
            return
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(202, record)

    def _get_experiment(self, exp_id: str) -> None:
        record = self.service.store.get(exp_id)
        if record is None:
            self._send_error_json(404, f"unknown experiment {exp_id!r}")
            return
        self._send_json(200, record.to_dict())

    def _get_events(self, exp_id: str, query: str) -> None:
        if self.service.store.get(exp_id) is None:
            self._send_error_json(404, f"unknown experiment {exp_id!r}")
            return
        try:
            offset = int(parse_qs(query).get("offset", ["0"])[0])
        except ValueError:
            self._send_error_json(400, "offset must be an integer")
            return
        events = self.service.store.read_events(exp_id, offset=max(offset, 0))
        body = "".join(encode_event(event) + "\n" for event in events)
        self._send(200, body.encode("utf-8"), "application/x-ndjson")

    def _delete_experiment(self, exp_id: str) -> None:
        try:
            record = self.service.store.request_cancel(exp_id)
        except KeyError:
            self._send_error_json(404, f"unknown experiment {exp_id!r}")
            return
        except ValueError as exc:
            self._send_error_json(409, str(exc))
            return
        self._send_json(202, record.to_dict(include_result=False))
