"""Span tracing on the experiment clock.

A span wraps one hot operation — an MCMC/least-squares curve fit, a
``process_epoch`` call, a snapshot capture — and records *two* time
axes:

* ``start``/``end`` on the **experiment clock** (simulated seconds in
  the sim backend, scaled wall seconds in the live runtime), so span
  placement lines up with the scheduler's own timeline and §5.2's
  overlap-of-prediction behaviour is directly measurable; and
* ``wall_seconds``, measured with ``time.perf_counter``, the genuine
  compute cost of the operation (the simulated clock does not advance
  during a Python call).

The tracer keeps a bounded in-memory list of finished spans and offers
a per-name :meth:`SpanTracer.summary`.  An optional ``on_span`` hook
fires for every finished span (the :class:`~repro.observability.recorder.Recorder`
uses it to stream spans to the event exporter).

Trace propagation
-----------------

Every span belongs to a **trace**: opening a span while another is
active (same thread) inherits the parent's ``trace_id`` and records the
parent's ``span_id`` as ``parent_id``; opening one with no active
parent mints a fresh trace id.  The active context is thread-local, so
concurrent driver threads each carry their own trace.

Crossing a process boundary is explicit: the sender captures
:func:`current_trace` and ships its ``to_dict()`` inside the message
envelope; the receiver re-activates it with :func:`trace_context`
around the handler, and every span opened inside joins the sender's
trace.  The cluster runtime uses exactly this to stitch
head-scheduler → worker-epoch → head-settlement spans into one trace
per epoch (see ``docs/observability.md``).
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "current_trace",
    "trace_context",
    "new_trace_id",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char id (half a uuid4 — plenty for one run)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The active trace position: which trace, which enclosing span."""

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        """Wire form for message envelopes."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, wire: Optional[Dict[str, Any]]) -> Optional["TraceContext"]:
        """Rebuild from an envelope field; None if absent/empty."""
        if not wire or not wire.get("trace_id"):
            return None
        return cls(
            trace_id=str(wire["trace_id"]),
            span_id=str(wire.get("span_id") or ""),
        )


_ACTIVE = threading.local()


def current_trace() -> Optional[TraceContext]:
    """The calling thread's active trace context (None outside spans)."""
    return getattr(_ACTIVE, "context", None)


@contextmanager
def trace_context(context: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Activate ``context`` for the calling thread (message receivers
    wrap their handler in this so local spans join the sender's trace)."""
    previous = current_trace()
    _ACTIVE.context = context
    try:
        yield context
    finally:
        _ACTIVE.context = previous


@dataclass
class Span:
    """One finished (or in-flight) traced operation."""

    name: str
    start: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    end: Optional[float] = None
    wall_seconds: float = 0.0
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def set(self, **attributes: Any) -> None:
        """Attach attributes mid-span (e.g. a result size)."""
        self.attributes.update(attributes)

    @property
    def duration(self) -> float:
        """Experiment-clock duration (0 for instantaneous sim spans)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "wall_seconds": self.wall_seconds,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": dict(self.attributes),
        }


class _ActiveSpan:
    """Context manager driving one span's lifetime."""

    __slots__ = ("_tracer", "span", "_wall_start", "_previous")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._wall_start = 0.0
        self._previous: Optional[TraceContext] = None

    def set(self, **attributes: Any) -> None:
        self.span.set(**attributes)

    def __enter__(self) -> "_ActiveSpan":
        self._wall_start = time.perf_counter()
        span = self.span
        parent = current_trace()
        self._previous = parent
        if span.trace_id is None:
            if parent is not None:
                span.trace_id = parent.trace_id
                span.parent_id = parent.span_id or None
            else:
                span.trace_id = new_trace_id()
        span.span_id = new_trace_id()
        _ACTIVE.context = TraceContext(span.trace_id, span.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.wall_seconds = time.perf_counter() - self._wall_start
        span.end = self._tracer._now()
        if exc_type is not None:
            span.attributes["error"] = exc_type.__name__
        _ACTIVE.context = self._previous
        self._tracer._finish(span)
        return False


class SpanTracer:
    """Records spans against an injected experiment clock."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        keep_spans: bool = True,
        max_spans: int = 200_000,
        on_span: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self._clock = clock
        self.keep_spans = keep_spans
        self.max_spans = max_spans
        self.on_span = on_span
        self.spans: List[Span] = []
        self._summary: Dict[str, Dict[str, float]] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Late clock injection (the scheduler owns the clock)."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(
            self, Span(name=name, start=self._now(), attributes=attributes)
        )

    def _finish(self, span: Span) -> None:
        stats = self._summary.get(span.name)
        if stats is None:
            stats = self._summary[span.name] = {
                "count": 0.0,
                "wall_seconds": 0.0,
                "experiment_seconds": 0.0,
            }
        stats["count"] += 1
        stats["wall_seconds"] += span.wall_seconds
        stats["experiment_seconds"] += span.duration
        if self.keep_spans and len(self.spans) < self.max_spans:
            self.spans.append(span)
        if self.on_span is not None:
            self.on_span(span)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: count, wall seconds, experiment seconds."""
        return {
            name: dict(stats) for name, stats in sorted(self._summary.items())
        }


class _NullSpan:
    """Do-nothing span; shared singleton so disabled tracing costs one
    attribute lookup and two no-op method calls."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer used when observability is disabled."""

    enabled = False
    spans: List[Span] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {}


NULL_TRACER = NullTracer()
