"""Head-side telemetry aggregation across processes.

The cluster runtime is multi-process: workers, daemon executors, and
lab cells each own a private :class:`~repro.observability.metrics.MetricsRegistry`
that used to die with its process.  The aggregator is the head-side
sink those registries ship into:

* :meth:`TelemetryAggregator.ingest` accepts one TELEMETRY batch from a
  node — a full metrics snapshot (``MetricsRegistry.to_dict`` form,
  latest-wins and therefore idempotent) plus *deltas* of finished spans
  and audit records since the node's previous batch.
* Every ingest appends one bounded ring-buffer sample per node — a flat
  ``name -> value`` roll-up (counter totals, gauge sums, summary
  ``_count``/``_sum``) — giving ``GET /telemetry`` a short time-series
  history without a real TSDB.
* :meth:`TelemetryAggregator.render_text` renders every node's snapshot
  as one merged Prometheus text exposition, each sample tagged with a
  ``node`` label, deduplicating family headers and counting (not
  crashing on) cross-node kind collisions.
* Shipped spans/audit events are re-emitted through the optional
  :attr:`on_event` callback (the cluster runtime forwards them, tagged
  with their node, into the head's JSONL journal so post-hoc tools like
  ``repro diagnose`` see the whole cluster).

Everything is guarded by one lock; ingest happens on monitor threads
while HTTP handlers render concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

from .metrics import format_value, render_label_set

__all__ = ["TelemetryAggregator"]

#: Ring-buffer samples kept per node.
DEFAULT_HISTORY_SAMPLES = 512


class _NodeTelemetry:
    """Latest shipped state of one node."""

    __slots__ = ("node", "seq", "last_ingest", "metrics", "meta",
                 "spans_received", "audit_received")

    def __init__(self, node: str) -> None:
        self.node = node
        self.seq = -1
        self.last_ingest = 0.0
        self.metrics: Dict[str, Any] = {}
        self.meta: Dict[str, Any] = {}
        self.spans_received = 0
        self.audit_received = 0


def _flatten(metrics: Mapping[str, Any]) -> Dict[str, float]:
    """Roll one metrics snapshot up to flat scalars for history samples."""
    flat: Dict[str, float] = {}
    for name, family in metrics.items():
        kind = family.get("kind")
        samples = family.get("samples", [])
        if kind in ("counter", "gauge"):
            flat[name] = float(sum(s.get("value", 0.0) for s in samples))
        elif kind == "summary":
            flat[name + "_count"] = float(
                sum(s.get("count", 0) for s in samples)
            )
            flat[name + "_sum"] = float(
                sum(s.get("sum", 0.0) for s in samples)
            )
    return flat


class TelemetryAggregator:
    """Merges per-node telemetry under a ``node`` label with history.

    Args:
        history_samples: ring-buffer length (total across nodes).
        clock: wall-clock source for ingest timestamps (injectable for
            tests).
    """

    def __init__(
        self,
        history_samples: int = DEFAULT_HISTORY_SAMPLES,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._nodes: Dict[str, _NodeTelemetry] = {}
        self._history: Deque[Dict[str, Any]] = deque(maxlen=history_samples)
        self._kind_conflicts: Dict[str, int] = {}
        #: Called outside the lock as ``on_event(node, event_dict)`` for
        #: every shipped span/audit event (wire-dict form).
        self.on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None

    # --------------------------------------------------------------- ingest

    def ingest(self, node: str, batch: Optional[Mapping[str, Any]]) -> None:
        """Absorb one TELEMETRY batch from ``node``.

        The batch is the wire payload shipped by
        :class:`~repro.cluster.worker.TelemetryShipper`::

            {"seq": 3, "metrics": {...to_dict...},
             "spans": [span dicts...], "audit": [audit dicts...],
             "meta": {...}}

        ``metrics`` replaces the node's previous snapshot (latest
        wins); ``spans``/``audit`` are deltas and are forwarded to
        :attr:`on_event`.  Unknown keys are ignored, missing ones are
        fine — a bare ``{"metrics": ...}`` is a valid batch.
        """
        if not batch:
            return
        spans = list(batch.get("spans") or ())
        audit = list(batch.get("audit") or ())
        metrics = batch.get("metrics")
        with self._lock:
            record = self._nodes.get(node)
            if record is None:
                record = self._nodes[node] = _NodeTelemetry(node)
            record.last_ingest = self._clock()
            record.seq = int(batch.get("seq", record.seq + 1))
            if metrics is not None:
                record.metrics = dict(metrics)
                self._history.append(
                    {
                        "t": record.last_ingest,
                        "node": node,
                        "values": _flatten(record.metrics),
                    }
                )
            if batch.get("meta"):
                record.meta.update(batch["meta"])
            record.spans_received += len(spans)
            record.audit_received += len(audit)
            callback = self.on_event
        if callback is not None:
            for event in spans:
                callback(node, event)
            for event in audit:
                callback(node, event)

    def ingest_registry(self, node: str, registry: Any,
                        meta: Optional[Dict[str, Any]] = None) -> None:
        """Shortcut for in-process registries (the head's own recorder,
        a daemon executor's run registry)."""
        batch: Dict[str, Any] = {"metrics": registry.to_dict()}
        if meta:
            batch["meta"] = meta
        self.ingest(node, batch)

    # -------------------------------------------------------------- queries

    @property
    def node_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._nodes)

    def node(self, node: str) -> Optional[Dict[str, Any]]:
        """One node's latest state (dict form), or None."""
        with self._lock:
            record = self._nodes.get(node)
            if record is None:
                return None
            return self._node_dict(record)

    def _node_dict(self, record: _NodeTelemetry) -> Dict[str, Any]:
        return {
            "seq": record.seq,
            "last_ingest": record.last_ingest,
            "age_seconds": max(0.0, self._clock() - record.last_ingest),
            "spans_received": record.spans_received,
            "audit_received": record.audit_received,
            "meta": dict(record.meta),
            "metrics": record.metrics,
        }

    def history(self) -> List[Dict[str, Any]]:
        """Ring-buffer samples, oldest first."""
        with self._lock:
            return list(self._history)

    def to_dict(self) -> Dict[str, Any]:
        """The ``GET /telemetry`` document."""
        with self._lock:
            return {
                "nodes": {
                    node: self._node_dict(record)
                    for node, record in sorted(self._nodes.items())
                },
                "history": list(self._history),
                "kind_conflicts": dict(self._kind_conflicts),
            }

    # ------------------------------------------------------------ rendering

    def render_text(self, base: Any = None) -> str:
        """One merged Prometheus text exposition.

        Every per-node sample gets a ``node="<id>"`` label; ``base`` (a
        registry, e.g. the daemon's own service metrics) renders first,
        unlabelled.  A family shipped with conflicting kinds keeps the
        first kind seen (base, then sorted node order); mismatched
        shippers are skipped and counted in
        ``telemetry_kind_conflicts_total``.
        """
        sources: List[tuple] = []
        if base is not None:
            sources.append((None, base.to_dict()))
        with self._lock:
            for node in sorted(self._nodes):
                sources.append((node, self._nodes[node].metrics))
            conflicts = dict(self._kind_conflicts)

        families: Dict[str, Dict[str, Any]] = {}
        for node, metrics in sources:
            for name, family in metrics.items():
                kind = family.get("kind", "untyped")
                merged = families.get(name)
                if merged is None:
                    merged = families[name] = {
                        "kind": kind, "help": family.get("help", ""),
                        "sources": [],
                    }
                elif merged["kind"] != kind:
                    conflicts[name] = conflicts.get(name, 0) + 1
                    continue
                merged["sources"].append((node, family))
        with self._lock:
            self._kind_conflicts = dict(conflicts)

        lines: List[str] = []
        for name in sorted(families):
            family = families[name]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for node, source in family["sources"]:
                extra = () if node is None else (("node", node),)
                for sample in source.get("samples", []):
                    labels = tuple(sorted(sample.get("labels", {}).items()))
                    if family["kind"] == "summary":
                        for q, value in sample.get("quantiles", {}).items():
                            qlabels = render_label_set(
                                labels + (("quantile", str(q)),) + extra
                            )
                            lines.append(
                                f"{name}{qlabels} "
                                f"{format_value(float(value))}"
                            )
                        plain = render_label_set(labels + extra)
                        lines.append(
                            f"{name}_count{plain} {int(sample.get('count', 0))}"
                        )
                        lines.append(
                            f"{name}_sum{plain} "
                            f"{format_value(float(sample.get('sum', 0.0)))}"
                        )
                    else:
                        plain = render_label_set(labels + extra)
                        lines.append(
                            f"{name}{plain} "
                            f"{format_value(float(sample.get('value', 0.0)))}"
                        )
        if conflicts:
            lines.append("# TYPE telemetry_kind_conflicts_total counter")
            for name in sorted(conflicts):
                labels = render_label_set((("metric", name),))
                lines.append(
                    f"telemetry_kind_conflicts_total{labels} "
                    f"{conflicts[name]}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
