"""The scheduler decision audit trail.

Every consequential scheduling event — a SAP decision
(CONTINUE/SUSPEND/TERMINATE) with the inputs that produced it
(confidence ``p``, ERT, the dynamic threshold ``p*``, promising-slot
count), a POP pool reclassification round, a lifecycle transition, a
pool-timeline sample — is recorded as one :class:`AuditRecord` and, if
an exporter is attached, streamed out as a JSONL document immediately.

Record kinds emitted by the instrumented framework:

``sap_decision``
    One per ``on_iteration_finish`` up-call; ``data`` carries the
    decision, epoch, metric, confidence, ERT, threshold, pool sizes,
    and the policy's own rationale (``reason`` plus reason-specific
    inputs such as the kill bound that fired).
``pop_classification``
    One per POP reclassification round: the dynamic threshold, slot
    allocation, and the per-job category map.
``lifecycle``
    Mirror of the scheduler's lifecycle log (started / suspended /
    resumed / terminated / completed / machine events).
``pool_snapshot``
    The promising/opportunistic split sampled after every epoch.
``prediction``
    One per curve prediction consumed by POP: confidence and ERT
    before smoothing, horizon, and prediction accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .exporters import EventExporter

__all__ = ["AuditRecord", "AuditTrail", "NullAuditTrail", "NULL_AUDIT"]


@dataclass(frozen=True)
class AuditRecord:
    """One timestamped, structured audit event."""

    kind: str
    timestamp: float
    job_id: Optional[str] = None
    machine_id: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "timestamp": self.timestamp,
            "job_id": self.job_id,
            "machine_id": self.machine_id,
            "data": dict(self.data),
        }


class AuditTrail:
    """Ordered audit log on the experiment clock."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        exporter: Optional[EventExporter] = None,
    ) -> None:
        self._clock = clock
        self._exporter = exporter
        self.records: List[AuditRecord] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def record(
        self,
        kind: str,
        job_id: Optional[str] = None,
        machine_id: Optional[str] = None,
        **data: Any,
    ) -> AuditRecord:
        """Append one record and stream it to the exporter (if any)."""
        record = AuditRecord(
            kind=kind,
            timestamp=self._clock() if self._clock is not None else 0.0,
            job_id=job_id,
            machine_id=machine_id,
            data=data,
        )
        self.records.append(record)
        if self._exporter is not None:
            self._exporter.export(record.to_dict())
        return record

    def query(
        self,
        kind: Optional[str] = None,
        job_id: Optional[str] = None,
        **data_filters: Any,
    ) -> List[AuditRecord]:
        """Records matching ``kind``, ``job_id``, and data equality."""
        out = []
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if job_id is not None and record.job_id != job_id:
                continue
            if any(
                record.data.get(key) != value
                for key, value in data_filters.items()
            ):
                continue
            out.append(record)
        return out


class NullAuditTrail:
    """Audit sink used when observability is disabled."""

    enabled = False
    records: List[AuditRecord] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def record(
        self,
        kind: str,
        job_id: Optional[str] = None,
        machine_id: Optional[str] = None,
        **data: Any,
    ) -> None:
        pass

    def query(self, *args: Any, **kwargs: Any) -> List[AuditRecord]:
        return []


NULL_AUDIT = NullAuditTrail()
