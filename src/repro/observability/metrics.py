"""In-process metrics: counters, gauges, and quantile histograms.

A zero-dependency metrics registry modelled on the Prometheus client
data model, scoped to one experiment run.  Three instrument kinds:

* :class:`Counter` — monotonically increasing totals, optionally split
  by labels (``scheduler_kills_total{reason="domain_poor"}``).
* :class:`Gauge` — a value that goes up and down (the promising-slot
  ratio, idle-queue depth).
* :class:`Histogram` — observation streams summarised by count, sum,
  and interpolated quantiles (epoch durations, predictor fit times).

The registry renders a Prometheus-style text exposition
(:meth:`MetricsRegistry.render_text`) and a JSON-serialisable dict
(:meth:`MetricsRegistry.to_dict`).  Instrument handles are cheap to
call and safe to cache; all state lives in plain dicts and lists, so
the cost of an ``inc``/``observe`` is one dict lookup and an append.

Metric names accept dots as namespace separators (``scheduler.kills_total``)
and normalise them to underscores for exposition.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "render_label_set",
    "format_value",
]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Quantiles exposed by default for every histogram.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

LabelKey = Tuple[Tuple[str, str], ...]


def normalize_name(name: str) -> str:
    """Map a dotted metric name onto the exposition charset."""
    normalized = name.replace(".", "_").replace("-", "_")
    if not _NAME_RE.match(normalized):
        raise ValueError(f"invalid metric name {name!r}")
    return normalized


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and newline must be backslash-escaped."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_label_set(items: Tuple[Tuple[str, str], ...]) -> str:
    """Render ``{k="v",...}`` with values escaped ('' for no labels)."""
    if not items:
        return ""
    body = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    return render_label_set(key + extra)


def format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


_format_value = format_value


class _Instrument:
    """Shared plumbing for one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = normalize_name(name)
        self.help = help

    def render(self) -> List[str]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Instrument):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        return [(dict(key), value) for key, value in self._values.items()]

    def render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(self._values[key])}"
            )
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class Gauge(_Instrument):
    """A value that can rise and fall."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(self._values[key])}"
            )
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class Histogram(_Instrument):
    """An observation stream with quantile summaries.

    Observations are retained per label set (experiments are bounded,
    so memory stays proportional to epochs trained); quantiles are
    computed on demand by linear interpolation over the sorted sample,
    the same estimator ``numpy.quantile`` defaults to.
    """

    kind = "summary"

    def __init__(
        self,
        name: str,
        help: str = "",
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        super().__init__(name, help)
        for q in quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile {q} outside [0, 1]")
        # Exposition order must be ascending regardless of caller order
        # (scrapers treat the quantile series like histogram buckets).
        self.quantiles = tuple(sorted(dict.fromkeys(quantiles)))
        self._observations: Dict[LabelKey, List[float]] = {}
        self._sorted: Dict[LabelKey, bool] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        bucket = self._observations.get(key)
        if bucket is None:
            bucket = self._observations[key] = []
        bucket.append(float(value))
        self._sorted[key] = False

    def _sorted_bucket(self, key: LabelKey) -> List[float]:
        bucket = self._observations.get(key, [])
        if not self._sorted.get(key, True):
            bucket.sort()
            self._sorted[key] = True
        return bucket

    def count(self, **labels: Any) -> int:
        return len(self._observations.get(_label_key(labels), []))

    def sum(self, **labels: Any) -> float:
        return float(sum(self._observations.get(_label_key(labels), [])))

    def quantile(self, q: float, **labels: Any) -> float:
        """Interpolated ``q``-quantile of the observations (NaN if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        bucket = self._sorted_bucket(_label_key(labels))
        if not bucket:
            return float("nan")
        if len(bucket) == 1:
            return bucket[0]
        position = q * (len(bucket) - 1)
        low = int(math.floor(position))
        high = min(low + 1, len(bucket) - 1)
        fraction = position - low
        return bucket[low] * (1.0 - fraction) + bucket[high] * fraction

    def render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._observations):
            bucket = self._sorted_bucket(key)
            for q in self.quantiles:
                extra = (("quantile", _format_value(q)),)
                lines.append(
                    f"{self.name}{_render_labels(key, extra)} "
                    f"{_format_value(self.quantile(q, **dict(key)))}"
                )
            lines.append(
                f"{self.name}_count{_render_labels(key)} {len(bucket)}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(float(sum(bucket)))}"
            )
        if not self._observations:
            lines.append(f"{self.name}_count 0")
            lines.append(f"{self.name}_sum 0")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "samples": [
                {
                    "labels": dict(key),
                    "count": len(bucket),
                    "sum": float(sum(bucket)),
                    "quantiles": {
                        _format_value(q): self.quantile(q, **dict(key))
                        for q in self.quantiles
                    },
                }
                for key, bucket in sorted(self._observations.items())
            ],
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Re-requesting a name returns the existing instrument; asking for it
    as a different kind raises — one name, one meaning, for the whole
    experiment.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        normalized = normalize_name(name)
        existing = self._instruments.get(normalized)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {normalized!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        instrument = cls(normalized, help=help, **kwargs)
        self._instruments[normalized] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, quantiles=quantiles)

    def instruments(self) -> Iterable[_Instrument]:
        return self._instruments.values()

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(normalize_name(name))

    def render_text(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            lines.extend(self._instruments[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable export of every instrument."""
        return {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }
