"""Pluggable event exporters (JSONL to disk, in-memory for tests).

Every audit record, span, and lifecycle mirror flows through one
:class:`EventExporter`.  The contract is a single ``export(event)``
call per event with a JSON-serialisable mapping, plus ``close``.
Exporters must tolerate numpy scalars in event payloads — scheduler
inputs (confidences, durations) frequently arrive as ``np.float64``.
"""

from __future__ import annotations

import abc
import json
import threading
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Mapping, Optional, Union

__all__ = [
    "EventExporter",
    "JsonlExporter",
    "InMemoryExporter",
    "iter_jsonl",
]


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars (and other number-likes) for json.dumps."""
    for caster in (float, int):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return str(value)


def encode_event(event: Mapping[str, Any]) -> str:
    """One event as a compact single-line JSON document."""
    return json.dumps(event, separators=(",", ":"), default=_json_default)


class EventExporter(abc.ABC):
    """Sink for observability events."""

    @abc.abstractmethod
    def export(self, event: Mapping[str, Any]) -> None:
        """Deliver one event (must not mutate it)."""

    def close(self) -> None:
        """Flush and release any resources; idempotent."""

    def __enter__(self) -> "EventExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class JsonlExporter(EventExporter):
    """Streams events to a JSON-lines file, one document per line.

    The file is opened lazily on the first event so constructing the
    exporter (e.g. from CLI flags) has no side effects when a run emits
    nothing.  Writes are serialised by a lock: one journal is fed by
    many threads at once (driver threads finishing spans, the audit
    trail, the cluster monitor re-exporting worker-shipped telemetry),
    and interleaved buffered writes would corrupt lines.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file: Optional[IO[str]] = None
        self._lock = threading.Lock()
        self.events_written = 0

    def export(self, event: Mapping[str, Any]) -> None:
        line = encode_event(event)
        with self._lock:
            if self._file is None:
                self._file = self.path.open("w", encoding="utf-8")
            self._file.write(line + "\n")
            self.events_written += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class InMemoryExporter(EventExporter):
    """Collects events in a list (tests, result attachment)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def export(self, event: Mapping[str, Any]) -> None:
        self.events.append(dict(event))


def iter_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield decoded events from a JSONL file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
