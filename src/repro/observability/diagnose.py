"""``repro diagnose``: post-hoc analysis of observability journals.

The JSONL journals written by ``--emit-events`` (and by the service
store) interleave two event shapes:

* **spans** — ``{"kind": "span", "name", "start", "end",
  "wall_seconds", "trace_id", "span_id", "parent_id", "attributes"}``,
  on the experiment clock.  Spans shipped from cluster workers carry a
  ``node`` key added when the head re-exports them.
* **audit records** — ``{"kind": "<event>", "timestamp", "job_id",
  "machine_id", "data"}`` (SAP decisions, lifecycle, membership
  transitions, migrations, ...).

``diagnose`` merges any number of journals (each treated as one
experiment, named after its file) into:

* a **phase breakdown** per experiment — experiment-clock seconds
  spent in *predict* (``*.predict`` spans), *train*
  (``*train_epoch`` spans, falling back to ``cluster.epoch`` when a
  journal predates worker shipping), *migrate* (exactly the
  ``resume_latency`` charged by each ``cluster_migration`` audit
  record, so the phase reconciles with the audit trail), and *idle*
  (machine-seconds not covered by the above, derived from the
  journal's clock extent and its set of machines);
* a **timeline** — the first/last clock stamp, epoch count, and the
  notable audit events (migrations, node transitions, retry-budget
  exhaustions);
* a **critical path** — per shared ``trace_id``, the longest
  root-to-leaf chain by wall seconds; the report shows the slowest
  trace's chain (typically head epoch → worker train → settlement)
  and aggregate trace stats.

Nested spans of the same phase (``agent.predict`` wrapping
``predictor.predict``) are counted once: a span whose parent is in the
same phase is skipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = [
    "load_journals",
    "classify_phase",
    "phase_breakdown",
    "critical_path",
    "diagnose",
    "render_markdown",
]

#: Audit kinds surfaced verbatim on the timeline.
NOTABLE_AUDIT = (
    "cluster_migration",
    "cluster_node_down",
    "cluster_node_up",
    "cluster_retry_budget_exhausted",
    "resumed",
)

PHASES = ("predict", "train", "migrate", "idle")


def load_journals(
    paths: Sequence[Union[str, Path]]
) -> Dict[str, List[Dict[str, Any]]]:
    """Events per experiment; one journal file = one experiment.

    Journals from crashed runs can end mid-line (or carry a line
    mangled before the exporter grew its write lock); a post-mortem
    tool must not choke on them, so undecodable lines are skipped.
    """
    journals: Dict[str, List[Dict[str, Any]]] = {}
    for path in paths:
        path = Path(path)
        events: List[Dict[str, Any]] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict):
                    events.append(event)
        journals[path.stem] = events
    return journals


def classify_phase(span: Mapping[str, Any]) -> Optional[str]:
    """Phase of one span, or None when it is outside the breakdown."""
    name = span.get("name", "")
    if "predict" in name:
        return "predict"
    if "train_epoch" in name:
        return "train"
    return None


def _span_events(events: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    return [dict(e) for e in events if e.get("kind") == "span"]


def _audit_events(events: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    return [
        dict(e)
        for e in events
        if e.get("kind") and e.get("kind") != "span"
    ]


def _duration(span: Mapping[str, Any]) -> float:
    start = span.get("start")
    end = span.get("end")
    if start is None or end is None:
        return 0.0
    return max(0.0, float(end) - float(start))


def phase_breakdown(events: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Experiment-clock seconds per phase for one journal's events."""
    spans = _span_events(events)
    audit = _audit_events(events)
    by_id = {s["span_id"]: s for s in spans if s.get("span_id")}

    # When worker-side train spans were shipped, use them; otherwise
    # fall back to the head's per-epoch envelope span.
    has_train = any("train_epoch" in (s.get("name") or "") for s in spans)

    seconds = {phase: 0.0 for phase in PHASES}
    wall = {phase: 0.0 for phase in PHASES}
    counts = {phase: 0 for phase in PHASES}
    for span in spans:
        phase = classify_phase(span)
        if phase is None and not has_train and span.get("name") == "cluster.epoch":
            phase = "train"
        if phase is None:
            continue
        parent = by_id.get(span.get("parent_id"))
        if parent is not None and classify_phase(parent) == phase:
            continue  # nested same-phase span (agent.predict -> predictor.predict)
        seconds[phase] += _duration(span)
        wall[phase] += float(span.get("wall_seconds") or 0.0)
        counts[phase] += 1

    # Migration cost is charged through the audit trail (the snapshot's
    # suspend latency billed to the landing machine), not a span.
    for record in audit:
        if record.get("kind") == "cluster_migration":
            seconds["migrate"] += float(
                (record.get("data") or {}).get("resume_latency", 0.0)
            )
            counts["migrate"] += 1

    stamps = [float(r["timestamp"]) for r in audit if "timestamp" in r]
    stamps += [float(s["start"]) for s in spans if s.get("start") is not None]
    stamps += [float(s["end"]) for s in spans if s.get("end") is not None]
    extent = (max(stamps) - min(stamps)) if stamps else 0.0
    machines = {
        s.get("attributes", {}).get("machine_id")
        for s in spans
        if s.get("attributes", {}).get("machine_id")
    }
    machines |= {
        r.get("machine_id") for r in audit if r.get("machine_id")
    }
    capacity = extent * max(1, len(machines))
    busy = seconds["predict"] + seconds["train"] + seconds["migrate"]
    seconds["idle"] = max(0.0, capacity - busy)
    return {
        "seconds": seconds,
        "wall_seconds": wall,
        "counts": counts,
        "extent_seconds": extent,
        "machines": sorted(machines),
    }


def critical_path(events: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Longest root-to-leaf wall-seconds chain per trace; slowest first."""
    spans = _span_events(events)
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id:
            traces.setdefault(trace_id, []).append(span)

    def longest(trace: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        ids = {s["span_id"] for s in trace if s.get("span_id")}
        children: Dict[Optional[str], List[Dict[str, Any]]] = {}
        roots = []
        for span in trace:
            parent = span.get("parent_id")
            if parent in ids:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)

        def walk(span: Dict[str, Any]) -> List[Dict[str, Any]]:
            best: List[Dict[str, Any]] = []
            for child in children.get(span.get("span_id"), []):
                path = walk(child)
                if _path_wall(path) > _path_wall(best):
                    best = path
            return [span] + best

        def _path_wall(path: List[Dict[str, Any]]) -> float:
            return sum(float(s.get("wall_seconds") or 0.0) for s in path)

        best: List[Dict[str, Any]] = []
        for root in roots:
            path = walk(root)
            if _path_wall(path) > _path_wall(best):
                best = path
        return best

    summaries = []
    for trace_id, trace in traces.items():
        path = longest(trace)
        summaries.append(
            {
                "trace_id": trace_id,
                "spans": len(trace),
                "wall_seconds": sum(
                    float(s.get("wall_seconds") or 0.0) for s in path
                ),
                "path": [
                    {
                        "name": s.get("name"),
                        "node": s.get("node", "head"),
                        "wall_seconds": float(s.get("wall_seconds") or 0.0),
                    }
                    for s in path
                ],
            }
        )
    summaries.sort(key=lambda s: s["wall_seconds"], reverse=True)
    multi_span = [s for s in summaries if s["spans"] > 1]
    return {
        "traces": len(summaries),
        "multi_span_traces": len(multi_span),
        "slowest": summaries[0] if summaries else None,
    }


def diagnose(
    journals: Mapping[str, Sequence[Mapping[str, Any]]]
) -> Dict[str, Any]:
    """The full report dict over ``{experiment: events}``."""
    experiments = {}
    for name in sorted(journals):
        events = journals[name]
        audit = _audit_events(events)
        notable = [
            record
            for record in audit
            if record.get("kind") in NOTABLE_AUDIT
        ]
        experiments[name] = {
            "events": len(events),
            "spans": len(_span_events(events)),
            "audit": len(audit),
            "phases": phase_breakdown(events),
            "critical_path": critical_path(events),
            "notable": notable,
        }
    return {"experiments": experiments}


def render_markdown(report: Mapping[str, Any]) -> str:
    """The report dict as a markdown document."""
    lines: List[str] = ["# repro diagnose", ""]
    for name, exp in report["experiments"].items():
        phases = exp["phases"]
        lines.append(f"## {name}")
        lines.append("")
        lines.append(
            f"{exp['events']} events ({exp['spans']} spans, "
            f"{exp['audit']} audit records), clock extent "
            f"{phases['extent_seconds']:.1f}s, "
            f"{len(phases['machines'])} machine(s)"
        )
        lines.append("")
        lines.append("| phase | seconds | share | events | wall s |")
        lines.append("|---|---|---|---|---|")
        total = sum(phases["seconds"].values()) or 1.0
        for phase in PHASES:
            seconds = phases["seconds"][phase]
            lines.append(
                f"| {phase} | {seconds:.2f} | {seconds / total * 100:.1f}% "
                f"| {phases['counts'][phase]} "
                f"| {phases['wall_seconds'][phase]:.3f} |"
            )
        lines.append("")
        path = exp["critical_path"]
        lines.append(
            f"Traces: {path['traces']} "
            f"({path['multi_span_traces']} spanning multiple spans)."
        )
        slowest = path["slowest"]
        if slowest is not None:
            chain = " -> ".join(
                f"{step['name']}@{step['node']}"
                f" ({step['wall_seconds'] * 1e3:.1f}ms)"
                for step in slowest["path"]
            )
            lines.append(
                f"Slowest trace `{slowest['trace_id']}` "
                f"({slowest['wall_seconds'] * 1e3:.1f}ms wall): {chain}"
            )
        lines.append("")
        if exp["notable"]:
            lines.append("Notable events:")
            lines.append("")
            for record in exp["notable"]:
                data = record.get("data") or {}
                detail = ", ".join(
                    f"{key}={value}" for key, value in sorted(data.items())
                )
                subject = record.get("job_id") or record.get("machine_id") or ""
                lines.append(
                    f"- t={record.get('timestamp', 0.0):.1f}s "
                    f"**{record['kind']}** {subject} {detail}".rstrip()
                )
            lines.append("")
    return "\n".join(lines)
