"""Observability: metrics, span tracing, and the decision audit trail.

The paper's contribution is a *decision process* — POP classification,
ERT, dynamic confidence thresholds (§3), prediction overlapped with
training (§5.2) — and this package makes those decisions inspectable:

* :mod:`~repro.observability.metrics` — an in-process metrics registry
  (counters, gauges, quantile histograms) with Prometheus-style text
  exposition and JSON export.
* :mod:`~repro.observability.tracing` — spans on the experiment clock
  wrapping hot operations (curve fits, ``process_epoch``,
  suspend/resume), with genuine wall-time costs alongside.
* :mod:`~repro.observability.audit` — the decision audit trail: every
  SAP decision and POP classification, with the inputs that produced
  it, streamed as JSONL through a pluggable exporter.
* :mod:`~repro.observability.recorder` — the facade the framework
  threads through; the :data:`NULL_RECORDER` default makes all of it
  free when unused.

See ``docs/observability.md`` for the metric catalogue and event
schema.
"""

from .audit import AuditRecord, AuditTrail, NullAuditTrail, NULL_AUDIT
from .exporters import (
    EventExporter,
    InMemoryExporter,
    JsonlExporter,
    iter_jsonl,
)
from .aggregator import TelemetryAggregator
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import NULL_RECORDER, NullRecorder, Recorder
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    TraceContext,
    current_trace,
    new_trace_id,
    trace_context,
)

__all__ = [
    "AuditRecord",
    "AuditTrail",
    "Counter",
    "EventExporter",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_AUDIT",
    "NULL_RECORDER",
    "NULL_TRACER",
    "NullAuditTrail",
    "NullRecorder",
    "NullTracer",
    "Recorder",
    "Span",
    "SpanTracer",
    "TelemetryAggregator",
    "TraceContext",
    "current_trace",
    "iter_jsonl",
    "new_trace_id",
    "trace_context",
]
