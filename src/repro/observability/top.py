"""``repro top``: a live terminal dashboard over ``GET /telemetry``.

The daemon's :class:`~repro.observability.aggregator.TelemetryAggregator`
exposes one JSON document — per-node latest metric snapshots plus meta
(heartbeat membership, run status) and a short ring-buffer history.
This module turns that document into a fixed-width text dashboard:

* a **nodes** table — every node the aggregator has heard from (the
  cluster head, each ``machine-NN`` worker, each daemon-executed
  experiment), with batch seq, staleness, and shipped span/audit
  counts;
* **cluster health** — ``cluster_nodes_up``, per-machine heartbeat
  state and mean RTT (from the head's
  ``cluster_heartbeat_rtt_seconds`` summary and the heartbeat snapshot
  shipped in the head's meta);
* **experiments** — per-experiment best metric
  (``experiment_best_metric``), lowest ERT (``pop_best_ert_seconds``),
  epochs trained, and predictor cache hit rate;
* **tenants** — the resource broker's per-tenant view from the daemon's
  self-ingested ``service`` node: queued/running experiments, slots
  held, budget spent/remaining, tightest deadline countdown (the
  ``broker_tenant_*`` gauges), headed by pool occupancy;
* **fleet/cost** — elastic-fleet economics from the ``cost_*`` gauges:
  workers up by machine class (on-demand vs spot) and per-experiment
  dollars spent against ``budget_slot_hours``;
* **training** — one line per node training a learned policy
  (``repro train-policy``): episodes completed, best and latest
  episode reward, and policy entropy from the ``learn_*`` gauges.

Everything here is a pure function of the telemetry dict so tests (and
``repro diagnose``-style tooling) can render without a daemon; the CLI
loop in :mod:`repro.cli` does the polling.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["render_top", "node_row", "cache_hit_rate"]


def _metric_total(metrics: Mapping[str, Any], name: str) -> Optional[float]:
    """Sum of a counter/gauge family's samples, or None if absent."""
    family = metrics.get(name)
    if not family:
        return None
    return float(
        sum(s.get("value", 0.0) for s in family.get("samples", []))
    )


def _summary_mean(
    metrics: Mapping[str, Any], name: str
) -> Dict[Tuple[Tuple[str, str], ...], float]:
    """Per-label-set mean of a summary family (sum / count)."""
    family = metrics.get(name)
    out: Dict[Tuple[Tuple[str, str], ...], float] = {}
    if not family:
        return out
    for sample in family.get("samples", []):
        count = sample.get("count", 0)
        if count:
            key = tuple(sorted(sample.get("labels", {}).items()))
            out[key] = float(sample.get("sum", 0.0)) / float(count)
    return out


def _labelled_values(
    metrics: Mapping[str, Any], name: str, label: str
) -> Dict[str, float]:
    """A gauge family's samples keyed by one label's value."""
    family = metrics.get(name)
    out: Dict[str, float] = {}
    if not family:
        return out
    for sample in family.get("samples", []):
        key = sample.get("labels", {}).get(label)
        if key is not None:
            out[str(key)] = float(sample.get("value", 0.0))
    return out


def cache_hit_rate(metrics: Mapping[str, Any]) -> Optional[float]:
    """Predictor prefix-fit cache hit rate from one node's snapshot."""
    hits = _metric_total(metrics, "prediction_cache_hits_total")
    misses = _metric_total(metrics, "prediction_cache_misses_total")
    if hits is None and misses is None:
        return None
    total = (hits or 0.0) + (misses or 0.0)
    if total == 0:
        return 0.0
    return (hits or 0.0) / total


def _fmt(value: Optional[float], spec: str = ".3f", na: str = "-") -> str:
    return na if value is None else format(value, spec)


def node_row(node: str, record: Mapping[str, Any]) -> Dict[str, Any]:
    """One node's dashboard line as structured data."""
    metrics = record.get("metrics", {})
    return {
        "node": node,
        "seq": record.get("seq", -1),
        "age_seconds": record.get("age_seconds", 0.0),
        "spans": record.get("spans_received", 0),
        "audit": record.get("audit_received", 0),
        "epochs": _metric_total(metrics, "scheduler_epochs_total"),
        "best_metric": _metric_total(metrics, "experiment_best_metric"),
        "best_ert": _metric_total(metrics, "pop_best_ert_seconds"),
        "cache_hit_rate": cache_hit_rate(metrics),
    }


def _nodes_table(nodes: Mapping[str, Mapping[str, Any]]) -> List[str]:
    lines = [
        f"{'NODE':<14} {'SEQ':>5} {'AGE':>7} {'SPANS':>7} {'AUDIT':>7}"
    ]
    for node in sorted(nodes):
        row = node_row(node, nodes[node])
        lines.append(
            f"{row['node']:<14} {row['seq']:>5} "
            f"{row['age_seconds']:>6.1f}s {row['spans']:>7} "
            f"{row['audit']:>7}"
        )
    return lines


def _cluster_section(nodes: Mapping[str, Mapping[str, Any]]) -> List[str]:
    head = nodes.get("head")
    if head is None:
        return []
    metrics = head.get("metrics", {})
    lines: List[str] = []
    nodes_up = _metric_total(metrics, "cluster_nodes_up")
    migrations = _metric_total(metrics, "cluster_migrations_total")
    lines.append(
        f"cluster: nodes_up={_fmt(nodes_up, '.0f')} "
        f"migrations={_fmt(migrations, '.0f')}"
    )
    rtt = _summary_mean(metrics, "cluster_heartbeat_rtt_seconds")
    membership = head.get("meta", {}).get("heartbeat", {})
    machine_ids = sorted(
        set(membership)
        | {dict(key).get("machine_id", "?") for key in rtt}
    )
    for machine_id in machine_ids:
        health = membership.get(machine_id, {})
        mean_rtt = None
        for key, value in rtt.items():
            if dict(key).get("machine_id") == machine_id:
                mean_rtt = value
        state = health.get("state", "?")
        misses = health.get("misses", "-")
        rtt_text = "-" if mean_rtt is None else f"{mean_rtt * 1e3:.1f}ms"
        lines.append(
            f"  {machine_id:<14} {state:<5} misses={misses:<3} "
            f"rtt={rtt_text}"
        )
    return lines


def _experiment_section(
    nodes: Mapping[str, Mapping[str, Any]]
) -> List[str]:
    rows = []
    for node in sorted(nodes):
        row = node_row(node, nodes[node])
        if row["epochs"] is None and row["best_metric"] is None:
            continue  # a shipper with no scheduler (bare worker)
        rows.append(row)
    if not rows:
        return []
    lines = [
        f"{'EXPERIMENT':<14} {'EPOCHS':>7} {'BEST':>8} {'ERT':>9} "
        f"{'CACHE':>6}"
    ]
    for row in rows:
        ert = row["best_ert"]
        ert_text = "-" if not ert else f"{ert / 60:.1f}min"
        rate = row["cache_hit_rate"]
        rate_text = "-" if rate is None else f"{rate * 100:.0f}%"
        lines.append(
            f"{row['node']:<14} {_fmt(row['epochs'], '.0f'):>7} "
            f"{_fmt(row['best_metric'], '.4f'):>8} {ert_text:>9} "
            f"{rate_text:>6}"
        )
    return lines


def _tenant_section(nodes: Mapping[str, Mapping[str, Any]]) -> List[str]:
    service = nodes.get("service")
    if service is None:
        return []
    metrics = service.get("metrics", {})
    queued = _labelled_values(metrics, "broker_tenant_queued", "tenant")
    running = _labelled_values(metrics, "broker_tenant_running", "tenant")
    held = _labelled_values(metrics, "broker_tenant_slots_held", "tenant")
    spent = _labelled_values(
        metrics, "broker_tenant_budget_spent_slot_hours", "tenant"
    )
    left = _labelled_values(
        metrics, "broker_tenant_budget_remaining_slot_hours", "tenant"
    )
    deadline = _labelled_values(
        metrics, "broker_tenant_deadline_seconds", "tenant"
    )
    tenants = sorted(
        set(queued) | set(running) | set(held) | set(spent)
    )
    if not tenants:
        return []
    total = _metric_total(metrics, "broker_slots_total")
    allocated = _metric_total(metrics, "broker_slots_allocated")
    total_text = (
        "unlimited" if not total else f"{_fmt(allocated, '.0f')}/{total:.0f}"
    )
    lines = [f"broker: slots {total_text}"]
    lines.append(
        f"{'TENANT':<14} {'QUEUED':>6} {'RUN':>4} {'SLOTS':>5} "
        f"{'SPENT':>8} {'BUDGET':>8} {'DEADLINE':>9}"
    )
    for tenant in tenants:
        left_text = (
            "-" if tenant not in left else f"{left[tenant]:.2f}sh"
        )
        deadline_text = (
            "-" if tenant not in deadline
            else f"{deadline[tenant]:.0f}s"
        )
        lines.append(
            f"{tenant:<14} {queued.get(tenant, 0):>6.0f} "
            f"{running.get(tenant, 0):>4.0f} {held.get(tenant, 0):>5.0f} "
            f"{spent.get(tenant, 0.0):>6.2f}sh {left_text:>8} "
            f"{deadline_text:>9}"
        )
    return lines


def _fleet_section(nodes: Mapping[str, Mapping[str, Any]]) -> List[str]:
    """Cost/fleet panel: workers up by machine class and per-experiment
    dollars spent against budget, from the ``cost_*`` gauges the
    cluster runtime's meter exports."""
    workers: Dict[str, float] = {}
    spent: Dict[str, float] = {}
    budget: Dict[str, float] = {}
    remaining: Dict[str, float] = {}
    for record in nodes.values():
        metrics = record.get("metrics", {})
        for cls, value in _labelled_values(
            metrics, "cost_workers_up", "class"
        ).items():
            workers[cls] = workers.get(cls, 0.0) + value
        spent.update(
            _labelled_values(metrics, "cost_spent_dollars", "experiment")
        )
        budget.update(
            _labelled_values(metrics, "cost_budget_dollars", "experiment")
        )
        remaining.update(
            _labelled_values(
                metrics, "cost_budget_remaining_dollars", "experiment"
            )
        )
    if not workers and not spent:
        return []
    fleet_text = " ".join(
        f"{cls}={workers[cls]:.0f}" for cls in sorted(workers)
    )
    lines = [f"fleet: workers up {fleet_text or '-'}"]
    experiments = sorted(set(spent) | set(budget))
    if experiments:
        lines.append(
            f"{'EXPERIMENT':<14} {'SPENT':>9} {'BUDGET':>9} {'LEFT':>9}"
        )
        for experiment in experiments:
            budget_text = (
                "-" if experiment not in budget
                else f"${budget[experiment]:.2f}"
            )
            left_text = (
                "-" if experiment not in remaining
                else f"${remaining[experiment]:.2f}"
            )
            spent_text = f"${spent.get(experiment, 0.0):.2f}"
            lines.append(
                f"{experiment:<14} {spent_text:>9} "
                f"{budget_text:>9} {left_text:>9}"
            )
    return lines


def _training_section(nodes: Mapping[str, Mapping[str, Any]]) -> List[str]:
    """One line per node running policy training, from the ``learn_*``
    instruments ``repro train-policy`` publishes: episodes completed,
    best episode reward, latest mean reward, allocation entropy."""
    lines: List[str] = []
    for node in sorted(nodes):
        metrics = nodes[node].get("metrics", {})
        episodes = _metric_total(metrics, "learn_episodes_total")
        if episodes is None:
            continue
        best = _metric_total(metrics, "learn_best_reward")
        reward = _metric_total(metrics, "learn_episode_reward")
        entropy = _metric_total(metrics, "learn_policy_entropy")
        lines.append(
            f"training[{node}]: episodes={episodes:.0f} "
            f"best={_fmt(best)} reward={_fmt(reward)} "
            f"entropy={_fmt(entropy, '.2f')}"
        )
    return lines


def render_top(telemetry: Mapping[str, Any], url: str = "") -> str:
    """The whole dashboard as one text block."""
    nodes = telemetry.get("nodes", {})
    header = "repro top"
    if url:
        header += f" — {url}"
    header += f" — {len(nodes)} node(s)"
    sections: List[List[str]] = [[header]]
    if nodes:
        sections.append(_nodes_table(nodes))
        cluster = _cluster_section(nodes)
        if cluster:
            sections.append(cluster)
        experiments = _experiment_section(nodes)
        if experiments:
            sections.append(experiments)
        tenants = _tenant_section(nodes)
        if tenants:
            sections.append(tenants)
        fleet = _fleet_section(nodes)
        if fleet:
            sections.append(fleet)
        training = _training_section(nodes)
        if training:
            sections.append(training)
    else:
        sections.append(["no telemetry yet"])
    conflicts = telemetry.get("kind_conflicts") or {}
    if conflicts:
        names = ", ".join(sorted(conflicts))
        sections.append([f"warning: metric kind conflicts: {names}"])
    return "\n\n".join("\n".join(section) for section in sections) + "\n"
