"""The Recorder facade: metrics + tracing + audit behind one handle.

Framework components take an optional ``recorder``; when none is given
they fall back to the shared :data:`NULL_RECORDER`, whose instruments
are all no-ops — an ``inc``/``observe``/``record``/``span`` on the
null recorder costs one attribute lookup and an empty method call, so
uninstrumented runs pay nothing measurable.  Call sites that would
*build* payloads (dicts of decision inputs) guard on
``recorder.enabled`` instead, so the disabled path skips even the
argument construction.

Typical wiring::

    exporter = JsonlExporter("events.jsonl")
    recorder = Recorder(exporter=exporter, trace=True)
    result = run_simulation(workload, policy, generator=g, spec=spec,
                            recorder=recorder)
    Path("metrics.txt").write_text(recorder.metrics.render_text())
    recorder.close()

The scheduler binds its experiment clock into the recorder at
construction time, so sim runs timestamp on simulated seconds and live
runs on scaled wall seconds without the caller doing anything.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .audit import NULL_AUDIT, AuditTrail, NullAuditTrail
from .exporters import EventExporter
from .metrics import MetricsRegistry
from .tracing import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = ["Recorder", "NullRecorder", "NULL_RECORDER"]


class Recorder:
    """Live observability context for one experiment run."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        exporter: Optional[EventExporter] = None,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        # An injected registry lets a host (e.g. the service daemon)
        # surface this run's instruments on its own /metrics endpoint.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = SpanTracer(clock=clock, keep_spans=trace)
        self.audit = AuditTrail(clock=clock, exporter=exporter)
        self.exporter = exporter
        if trace and exporter is not None:
            self.tracer.on_span = self._export_span

    def _export_span(self, span: Span) -> None:
        assert self.exporter is not None
        self.exporter.export(span.to_dict())

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the experiment clock (sim time or scaled wall time)."""
        self.tracer.bind_clock(clock)
        self.audit.bind_clock(clock)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serialisable digest for ``ExperimentResult`` attachment."""
        kills = self.metrics.get("scheduler_kills_total")
        kills_by_reason: Dict[str, float] = {}
        if kills is not None:
            for labels, value in kills.samples():  # type: ignore[union-attr]
                kills_by_reason[labels.get("reason", "unknown")] = value
        return {
            "metrics": self.metrics.to_dict(),
            "spans": self.tracer.summary(),
            "audit_events": len(self.audit.records),
            "kills_by_reason": kills_by_reason,
        }

    def close(self) -> None:
        """Flush the exporter (idempotent)."""
        if self.exporter is not None:
            self.exporter.close()


class _NullInstrument:
    """Stands in for Counter, Gauge, and Histogram when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetricsRegistry:
    """Hands out shared no-op instruments."""

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", **kwargs: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def render_text(self) -> str:
        return ""

    def to_dict(self) -> Dict[str, Any]:
        return {}


class NullRecorder:
    """Observability disabled: every operation is a cheap no-op."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = _NullMetricsRegistry()
        self.tracer: NullTracer = NULL_TRACER
        self.audit: NullAuditTrail = NULL_AUDIT
        self.exporter = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        pass


#: Shared default recorder: observability off.
NULL_RECORDER = NullRecorder()
