"""Analysis helpers: standard setups and per-figure data extraction."""

from .experiments import (
    NUM_CONFIGS,
    RL_GENERATOR_SEED,
    RL_NUM_MACHINES,
    SL_GENERATOR_SEED,
    SL_NUM_MACHINES,
    repeat_experiment,
    run_standard_experiment,
    standard_configs,
    standard_rl_workload,
    standard_sl_workload,
    standard_spec,
)
from .render import histogram, line_chart, sparkline
from .report import render_report, report_from_json
from .figures import (
    InstrumentedPOPPolicy,
    SuspendStats,
    config_curves,
    final_metric_cdf,
    find_overtake_pair,
    job_duration_cdf,
    prediction_with_confidence,
    promising_ratio_timeline,
    suspend_overhead_stats,
    time_to_target_stats,
)

__all__ = [
    "NUM_CONFIGS",
    "RL_GENERATOR_SEED",
    "RL_NUM_MACHINES",
    "SL_GENERATOR_SEED",
    "SL_NUM_MACHINES",
    "repeat_experiment",
    "run_standard_experiment",
    "standard_configs",
    "standard_rl_workload",
    "standard_sl_workload",
    "standard_spec",
    "InstrumentedPOPPolicy",
    "SuspendStats",
    "config_curves",
    "final_metric_cdf",
    "find_overtake_pair",
    "job_duration_cdf",
    "prediction_with_confidence",
    "promising_ratio_timeline",
    "suspend_overhead_stats",
    "time_to_target_stats",
    "sparkline",
    "line_chart",
    "histogram",
    "render_report",
    "report_from_json",
]
