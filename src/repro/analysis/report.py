"""Markdown experiment reports.

Turns an :class:`~repro.framework.experiment.ExperimentResult` (or its
archived JSON form) into a human-readable report: headline numbers, the
best configuration, per-job outcome counts, learning-curve sparklines,
suspend-overhead summary, and the promising-pool timeline.  Exposed on
the CLI as ``python -m repro report --result result.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from ..framework.experiment import ExperimentResult
from .render import sparkline

__all__ = ["render_report", "report_from_json"]


def _headline(record: Dict[str, Any]) -> List[str]:
    lines = [
        f"# Experiment report — policy `{record['policy']}`",
        "",
        f"* machines: {record['spec']['num_machines']}, "
        f"configurations: {len(record['jobs'])}",
        f"* reached target: **{record['reached_target']}**"
        + (
            f" after {record['time_to_target'] / 60:.1f} min"
            if record["time_to_target"] is not None
            else ""
        ),
        f"* best metric: {record['best_metric']:.4f} "
        f"(job `{record['best_job_id']}`)"
        if record["best_metric"] is not None
        else "* best metric: n/a",
        f"* epochs trained: {record['epochs_trained']}, "
        f"predictions: {record['predictions_made']}, "
        f"suspends: {len(record['suspends'])}",
    ]
    if record.get("machine_failures"):
        lines.append(
            f"* machine failures: {record['machine_failures']} "
            f"({record['epochs_lost_to_failures']} epochs lost)"
        )
    return lines


def _outcomes(record: Dict[str, Any]) -> List[str]:
    counts: Dict[str, int] = {}
    for job in record["jobs"]:
        counts[job["state"]] = counts.get(job["state"], 0) + 1
    lines = ["", "## Job outcomes", ""]
    for state, count in sorted(counts.items()):
        lines.append(f"* {state}: {count}")
    return lines


def _top_jobs(record: Dict[str, Any], top: int = 5) -> List[str]:
    scored = [
        job for job in record["jobs"] if job["metrics"]
    ]
    scored.sort(key=lambda job: max(job["metrics"]), reverse=True)
    lines = ["", f"## Top {min(top, len(scored))} configurations", ""]
    for job in scored[:top]:
        best = max(job["metrics"])
        curve = sparkline(job["metrics"], width=40)
        lines.append(
            f"* `{job['job_id']}` best={best:.4f} "
            f"epochs={len(job['metrics'])} `{curve}`"
        )
    return lines


def _suspend_summary(record: Dict[str, Any]) -> List[str]:
    suspends = record["suspends"]
    if not suspends:
        return []
    latencies = np.array([s["latency"] for s in suspends])
    sizes = np.array([s["size_bytes"] for s in suspends])
    return [
        "",
        "## Suspend/resume overhead",
        "",
        f"* {len(suspends)} suspends; latency mean "
        f"{latencies.mean()*1000:.0f} ms (max {latencies.max():.2f} s)",
        f"* snapshot size mean {sizes.mean()/1e3:.0f} KB "
        f"(max {sizes.max()/1e6:.2f} MB)",
    ]


def _pool_timeline(record: Dict[str, Any]) -> List[str]:
    timeline = record["pool_timeline"]
    if not timeline:
        return []
    ratios = [
        snapshot["promising"] / snapshot["active"]
        for snapshot in timeline
        if snapshot["active"] > 0
    ]
    if not ratios:
        return []
    return [
        "",
        "## Promising/active ratio over time",
        "",
        f"`{sparkline(ratios, width=60)}`",
        f"(starts {ratios[0]:.2f}, ends {ratios[-1]:.2f})",
    ]


def render_report(
    result: Union[ExperimentResult, Dict[str, Any]]
) -> str:
    """Render a result (live object or archived dict) as markdown."""
    record = result.to_dict() if isinstance(result, ExperimentResult) else result
    lines: List[str] = []
    lines += _headline(record)
    lines += _outcomes(record)
    lines += _top_jobs(record)
    lines += _suspend_summary(record)
    lines += _pool_timeline(record)
    return "\n".join(lines) + "\n"


def report_from_json(path: Union[str, Path]) -> str:
    """Render a report from an archived result JSON file."""
    return render_report(json.loads(Path(path).read_text()))
